//! `hpcc-fuseproto`: a FUSE-style operation protocol over the simulated VFS.
//!
//! The build pipeline's [`hpcc_vfs::Filesystem`] was historically reachable
//! only through path-string methods that each thread a borrowed kernel
//! `Actor` by hand — an API a mount, a remote shell, or a network backend
//! cannot speak. This crate defines the **operation-level protocol** those
//! consumers need, shaped like a FUSE session:
//!
//! * typed requests and replies ([`op`]) addressing files by **inode** and
//!   **open handle**, carrying per-request credentials ([`FsCreds`]:
//!   uid/gid/groups, as a FUSE request header does) instead of a borrowed
//!   `Actor`;
//! * errno-coded failures ([`Errno`]) mapped bidirectionally from the
//!   simulated kernel's error type — raw POSIX numbers on the wire;
//! * a backend contract ([`FsOps`]) with two implementations: [`MemFs`]
//!   over the in-memory CoW filesystem, and the overlay-backed read-only
//!   variant ([`ReadOnly`]);
//! * a [`Session`] owning the open-handle table (flags, sequential offsets,
//!   readdir cursors), and the one [`Dispatch`] trait it shares with the
//!   read-only [`ReaderSession`], so anything that pumps requests — a queue,
//!   a wire server — is written once for both;
//! * the **wire layer**: [`wire`] encodes requests and replies as
//!   FUSE-kernel-ABI-shaped byte frames (opcodes, unique ids, negated
//!   errnos), [`transport`] moves those frames over an in-memory channel,
//!   any `Read + Write` pair, or a Unix socketpair, and [`server`] pumps any
//!   transport into any dispatcher ([`Server`]) with a matching [`Client`]
//!   for the far end;
//! * the **fault layer**: [`fault`] wraps any transport in a deterministic,
//!   seed-replayable fault schedule (drops, corruption, reordering, hard
//!   disconnects), [`retry`] gives the client a per-call deadline with
//!   backoff and idempotent retransmission, and the server's reply cache
//!   plus overload shedding ([`ServeConfig`]) keep at-least-once delivery
//!   exactly-once execution — the chaos suite in `tests/chaos_serve.rs`
//!   holds those invariants over thousands of randomized schedules.
//!
//! Reads are zero-copy end to end: `read` replies window the file's shared
//! copy-on-write [`hpcc_vfs::FileBytes`] handle, so serving a built image
//! never duplicates its content (a wire reply copies the windowed bytes
//! once, into the output frame). `hpcc-runtime`'s `Container::mount`
//! returns a `Session` serving the container's root filesystem,
//! `Container::serve`/`serve_readonly` wrap one in a wire [`Server`], and
//! `examples/fuse_mount.rs` / `examples/fuse_serve.rs` drive builds through
//! the typed and wire surfaces respectively.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dispatch;
pub mod errno;
pub mod fault;
mod lock;
pub mod memfs;
pub mod op;
pub mod ops;
pub mod retry;
pub mod server;
pub mod session;
pub mod shared;
pub mod transport;
pub mod wire;

pub use dispatch::Dispatch;
pub use errno::{Errno, OpResult};
pub use fault::{Fault, FaultCounters, FaultPlan, FaultTransport};
pub use memfs::{MemFs, ReadOnly};
pub use op::{
    Attr, DirEntry, Entry, FsCreds, OpenFlags, Opened, Operation, ReadReply, Reply, ReplyKind,
    Request, StatfsReply, Written,
};
pub use ops::FsOps;
pub use retry::{CallError, RetryPolicy};
pub use server::{Client, ClientError, ServeConfig, ServeSummary, Server, ServerEvent, Shutdown};
pub use session::Session;
pub use shared::{ReaderSession, SharedImage};
pub use transport::{ChannelTransport, RecvOutcome, StreamTransport, Transport, TransportError};
pub use wire::{Incoming, WireError, FUSE_ROOT_ID};

#[cfg(unix)]
pub use transport::unix_pair;

// Re-exported so protocol clients can build `Setattr` requests without
// depending on hpcc-vfs directly.
pub use hpcc_vfs::Setattr;

// The property-based suite runs against the offline `proptest` drop-in in
// crates/proptest-shim (a path dev-dependency): `cargo test --features
// proptest` executes it everywhere, and CI runs that as a matrix leg.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use hpcc_kernel::{Credentials, Gid, Uid, UserNamespace};
    use hpcc_vfs::{Actor, Filesystem, Mode};
    use proptest::prelude::*;

    /// The fixed path pool random ops draw from (same shape as the VFS
    /// resolve-cache suite): parents and children so mkdir/rmdir/rename hit
    /// both empty and populated directories.
    const POOL: [&str; 10] = [
        "/a", "/a/b", "/a/b/f1", "/a/b/f2", "/c", "/c/d", "/c/d/f3", "/f4", "/a/link", "/c/d/e",
    ];

    /// Splits a pool path into (parent path, final name).
    fn split(path: &str) -> (&str, &str) {
        let idx = path.rfind('/').unwrap();
        (if idx == 0 { "/" } else { &path[..idx] }, &path[idx + 1..])
    }

    /// Applies one logical operation through the session (resolving parents
    /// via lookup ops) and the *same* operation through direct path-based
    /// `Filesystem` calls, returning both outcomes as errno codes.
    fn apply(
        session: &mut Session<MemFs>,
        direct: &mut Filesystem,
        actor: &Actor,
        cred: &FsCreds,
        op: u8,
        p1: &str,
        p2: &str,
    ) -> (Option<i32>, Option<i32>) {
        let (parent1, name1) = split(p1);
        let (parent2, name2) = split(p2);
        // Resolve a parent directory the way `resolve_parent` does: a
        // non-directory parent is ENOTDIR at resolution time.
        let sess_parent = |s: &Session<MemFs>, parent: &str| -> OpResult<hpcc_vfs::Ino> {
            let e = s.resolve_path(cred, parent, true)?;
            if e.attr.file_type != hpcc_vfs::FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            Ok(e.ino)
        };
        match op % 6 {
            0 => {
                // Whole-file write: open-or-create + write through a handle
                // (always released) vs direct `write_file`.
                let s_res: OpResult<()> = (|| {
                    let parent = sess_parent(session, parent1)?;
                    let fh = match session.lookup(cred, parent, name1) {
                        Ok(e) => {
                            session
                                .open(cred, e.ino, OpenFlags::WRONLY | OpenFlags::TRUNC)?
                                .fh
                        }
                        Err(e) if e == Errno::ENOENT => {
                            session
                                .create(cred, parent, name1, Mode::FILE_644, OpenFlags::WRONLY)?
                                .1
                                .fh
                        }
                        Err(e) => return Err(e),
                    };
                    let r = session.write(cred, fh, 0, b"x").map(|_| ());
                    session.release(fh).expect("release the handle just opened");
                    r
                })();
                let d_res = direct
                    .write_file(actor, p1, b"x".to_vec(), Mode::FILE_644)
                    .map(|_| ());
                (s_res.err().map(|e| e.code()), d_res.err().map(|e| e.code()))
            }
            1 => {
                let s_res = sess_parent(session, parent1)
                    .and_then(|p| session.mkdir(cred, p, name1, Mode::DIR_755).map(|_| ()));
                let d_res = direct.mkdir(actor, p1, Mode::DIR_755).map(|_| ());
                (s_res.err().map(|e| e.code()), d_res.err().map(|e| e.code()))
            }
            2 => {
                let s_res =
                    sess_parent(session, parent1).and_then(|p| session.unlink(cred, p, name1));
                let d_res = direct.unlink(actor, p1);
                (s_res.err().map(|e| e.code()), d_res.err().map(|e| e.code()))
            }
            3 => {
                let s_res =
                    sess_parent(session, parent1).and_then(|p| session.rmdir(cred, p, name1));
                let d_res = direct.rmdir(actor, p1);
                (s_res.err().map(|e| e.code()), d_res.err().map(|e| e.code()))
            }
            4 => {
                let s_res = sess_parent(session, parent1).and_then(|p| {
                    let np = sess_parent(session, parent2)?;
                    session.rename(cred, p, name1, np, name2)
                });
                let d_res = direct.rename(actor, p1, p2);
                (s_res.err().map(|e| e.code()), d_res.err().map(|e| e.code()))
            }
            _ => {
                let mode = Mode::new(if op % 2 == 0 { 0o700 } else { 0o755 });
                let s_res = session.resolve_path(cred, p1, true).and_then(|e| {
                    session
                        .setattr(cred, e.ino, &Setattr::none().with_mode(mode))
                        .map(|_| ())
                });
                let d_res = direct.chmod(actor, p1, mode);
                (s_res.err().map(|e| e.code()), d_res.err().map(|e| e.code()))
            }
        }
    }

    proptest! {
        /// Random op sequences through a `Session` stay in lockstep with the
        /// same logical operations made directly against a `Filesystem`:
        /// every pool path shows the same existence / type / mode / content,
        /// and every handle opened along the way was released (no leaks).
        #[test]
        fn session_matches_direct_filesystem(
            ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40)) {
            let ns = UserNamespace::initial();
            let root_creds = Credentials::host_root();
            let actor = Actor::new(&root_creds, &ns);
            let cred = FsCreds::root();
            let mut direct = Filesystem::new_local();
            let mut session = Session::new(MemFs::new(Filesystem::new_local(), ns.clone()));
            for (op, i, j) in ops {
                let p1 = POOL[i as usize % POOL.len()];
                let p2 = POOL[j as usize % POOL.len()];
                let (s_err, d_err) = apply(&mut session, &mut direct, &actor, &cred, op, p1, p2);
                prop_assert_eq!(s_err, d_err, "op {} on {} / {} diverged", op % 6, p1, p2);
            }
            prop_assert_eq!(session.open_handles(), 0, "handle leak");
            // Same visible state on every pool path.
            for p in POOL {
                let via_ops = session.resolve_path(&cred, p, false).ok();
                let direct_st = direct.lstat(&actor, p).ok();
                match (via_ops, direct_st) {
                    (None, None) => {}
                    (Some(e), Some(st)) => {
                        prop_assert_eq!(e.attr.file_type, st.file_type, "type of {}", p);
                        prop_assert_eq!(e.attr.mode, st.mode, "mode of {}", p);
                        prop_assert_eq!(e.attr.size, st.size, "size of {}", p);
                    }
                    (a, b) => prop_assert!(false, "{} diverged: ops={:?} direct={:?}", p, a.is_some(), b.is_some()),
                }
            }
        }

        /// Open/release pairs never leak, whatever interleaving happens in
        /// between, and a released handle is dead (`EBADF`).
        #[test]
        fn release_always_returns_handles(paths in proptest::collection::vec(0usize..3, 1..24)) {
            const FILES: [&str; 3] = ["/x", "/y", "/z"];
            let ns = UserNamespace::initial();
            let mut fs = Filesystem::new_local();
            for f in FILES {
                fs.install_file(f, b"data".to_vec(), Uid(0), Gid(0), Mode::FILE_644).unwrap();
            }
            let cred = FsCreds::root();
            let mut session = Session::new(MemFs::new(fs, ns));
            let mut open: Vec<u64> = Vec::new();
            for p in paths {
                let entry = session.resolve_path(&cred, FILES[p], true).unwrap();
                let fh = session.open(&cred, entry.ino, OpenFlags::RDONLY).unwrap().fh;
                prop_assert!(!session.read(&cred, fh, 0, 4).unwrap().is_empty());
                open.push(fh);
                // Occasionally release the oldest handle early.
                if open.len() > 2 {
                    let fh = open.remove(0);
                    prop_assert!(session.release(fh).is_ok());
                    prop_assert_eq!(session.release(fh).unwrap_err(), Errno::EBADF);
                }
            }
            prop_assert_eq!(session.open_handles(), open.len());
            for fh in open {
                prop_assert!(session.release(fh).is_ok());
            }
            prop_assert_eq!(session.open_handles(), 0);
        }
    }
}
