//! Deterministic fault injection for wire transports.
//!
//! [`FaultTransport`] wraps any [`Transport`] and perturbs traffic according
//! to a [`FaultPlan`]: a map from frame index (per direction, counted from
//! zero) to the [`Fault`] applied there. Plans are plain data — built by
//! hand for scripted tests, or derived from a seed with [`FaultPlan::random`]
//! so a chaos run that fails can be replayed exactly by printing one `u64`.
//! No wall clock is involved anywhere: "delay" is reordering (the frame is
//! held back until later frames pass it), so every schedule is deterministic
//! under any scheduler.
//!
//! The wrapper is built for frame-preserving transports
//! ([`ChannelTransport`](crate::ChannelTransport)): a truncated or corrupted
//! frame still travels as one frame, and the receiver's decoder — not the
//! framing — detects the damage, which is exactly the failure shape the
//! checksum trailer in [`wire`](crate::wire) exists to type. Over a raw byte
//! stream, truncation would instead desynchronize the length-prefix framing
//! for the rest of the connection.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::transport::{RecvOutcome, Transport, TransportError};

/// One injected perturbation, applied to the frame at a chosen index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The frame silently vanishes.
    Drop,
    /// The frame is cut short: the value, taken modulo the frame length,
    /// is how many leading bytes survive (always strictly fewer than all).
    Truncate(u16),
    /// One bit flips; the value (modulo the frame's bit count) picks which.
    Corrupt(u16),
    /// The frame arrives twice.
    Duplicate,
    /// The frame is held back until this many later frames have passed it
    /// (reordering, not wall-clock delay). If the connection ends first,
    /// the held frame degrades to a drop.
    Delay(u8),
    /// The connection is severed: the underlying transport is dropped, so
    /// the peer observes a close and every later call here fails
    /// [`TransportError::Closed`].
    Disconnect,
}

/// Counts of faults actually injected, by kind.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames silently discarded.
    pub dropped: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Frames with a flipped bit.
    pub corrupted: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back and reordered.
    pub delayed: u64,
    /// Hard disconnects.
    pub disconnects: u64,
}

impl FaultCounters {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.truncated
            + self.corrupted
            + self.duplicated
            + self.delayed
            + self.disconnects
    }
}

/// xorshift64* — the repo's stock offline PRNG (also seeds the retry
/// policy's deterministic jitter).
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Which faults land on which frames, per direction.
///
/// Indices count frames as they pass through the wrapper: the `n`th call to
/// `send` is send-index `n`, the `n`th frame pulled off the inner transport
/// is recv-index `n` (re-deliveries of held frames don't consume indices).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    send: BTreeMap<u64, Fault>,
    recv: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan: the wrapper becomes a transparent pass-through.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` on the `index`th outgoing frame.
    pub fn on_send(mut self, index: u64, fault: Fault) -> FaultPlan {
        self.send.insert(index, fault);
        self
    }

    /// Schedules `fault` on the `index`th incoming frame.
    pub fn on_recv(mut self, index: u64, fault: Fault) -> FaultPlan {
        self.recv.insert(index, fault);
        self
    }

    /// Faults scheduled in the plan (collisions during random generation
    /// overwrite, so this may be less than the count requested).
    pub fn len(&self) -> usize {
        self.send.len() + self.recv.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.send.is_empty() && self.recv.is_empty()
    }

    /// Derives a schedule of `faults` random faults over the first `horizon`
    /// frame indices of both directions from `seed` — same seed, same plan,
    /// forever. With `allow_disconnect`, one extra hard [`Fault::Disconnect`]
    /// is placed at a random point, turning the schedule into a
    /// connection-killing one (for leak tests rather than equivalence tests).
    pub fn random(seed: u64, faults: usize, horizon: u64, allow_disconnect: bool) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let mut plan = FaultPlan::new();
        let horizon = horizon.max(1);
        for _ in 0..faults {
            let index = rng.next() % horizon;
            let fault = match rng.next() % 5 {
                0 => Fault::Drop,
                1 => Fault::Truncate(rng.next() as u16),
                2 => Fault::Corrupt(rng.next() as u16),
                3 => Fault::Duplicate,
                _ => Fault::Delay(1 + (rng.next() % 3) as u8),
            };
            if rng.next().is_multiple_of(2) {
                plan.send.insert(index, fault);
            } else {
                plan.recv.insert(index, fault);
            }
        }
        if allow_disconnect {
            let index = rng.next() % horizon;
            if rng.next().is_multiple_of(2) {
                plan.send.insert(index, Fault::Disconnect);
            } else {
                plan.recv.insert(index, Fault::Disconnect);
            }
        }
        plan
    }
}

/// A [`Transport`] wrapper that injects the faults a [`FaultPlan`] schedules,
/// counting every injection.
///
/// After a [`Fault::Disconnect`] the inner transport is dropped (so the peer
/// observes a real close) and every later operation fails with
/// [`TransportError::Closed`].
pub struct FaultTransport<T> {
    inner: Option<T>,
    plan: FaultPlan,
    sent: u64,
    rcvd: u64,
    /// Outgoing frames held by [`Fault::Delay`], due once `sent` passes the
    /// stored index.
    held_send: Vec<(u64, Vec<u8>)>,
    /// Incoming frames held by [`Fault::Delay`] or queued by
    /// [`Fault::Duplicate`], due once `rcvd` passes the stored index.
    held_recv: Vec<(u64, Vec<u8>)>,
    counters: FaultCounters,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, applying `plan` to the traffic that crosses it.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultTransport {
            inner: Some(inner),
            plan,
            sent: 0,
            rcvd: 0,
            held_send: Vec::new(),
            held_recv: Vec::new(),
            counters: FaultCounters::default(),
        }
    }

    /// Counts of faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    fn sever(&mut self) -> TransportError {
        self.counters.disconnects += 1;
        // Dropping the inner transport is the injection: the peer sees the
        // close exactly as if the process died.
        self.inner = None;
        TransportError::Closed
    }

    /// Sends held outgoing frames whose due index has passed.
    fn flush_due_sends(&mut self) -> Result<(), TransportError> {
        while let Some(i) = self.held_send.iter().position(|(due, _)| *due <= self.sent) {
            let (_, frame) = self.held_send.remove(i);
            let inner = self.inner.as_mut().ok_or(TransportError::Closed)?;
            inner.send(&frame)?;
        }
        Ok(())
    }

    fn recv_inner(
        &mut self,
        buf: &mut Vec<u8>,
        timeout: Option<Duration>,
    ) -> Result<RecvOutcome, TransportError> {
        loop {
            // Held frames whose turn has come are delivered before anything
            // new is pulled off the wire.
            if let Some(i) = self.held_recv.iter().position(|(due, _)| *due <= self.rcvd) {
                let (_, frame) = self.held_recv.remove(i);
                buf.clear();
                buf.extend_from_slice(&frame);
                return Ok(RecvOutcome::Frame);
            }
            let inner = self.inner.as_mut().ok_or(TransportError::Closed)?;
            let outcome = match timeout {
                Some(t) => inner.recv_timeout(buf, t)?,
                None => {
                    if inner.recv(buf)? {
                        RecvOutcome::Frame
                    } else {
                        RecvOutcome::Closed
                    }
                }
            };
            match outcome {
                RecvOutcome::Frame => {}
                other => return Ok(other),
            }
            let index = self.rcvd;
            self.rcvd += 1;
            match self.plan.recv.remove(&index) {
                None => return Ok(RecvOutcome::Frame),
                Some(Fault::Drop) => {
                    self.counters.dropped += 1;
                }
                Some(Fault::Truncate(n)) => {
                    self.counters.truncated += 1;
                    truncate(buf, n);
                    return Ok(RecvOutcome::Frame);
                }
                Some(Fault::Corrupt(n)) => {
                    self.counters.corrupted += 1;
                    corrupt(buf, n);
                    return Ok(RecvOutcome::Frame);
                }
                Some(Fault::Duplicate) => {
                    self.counters.duplicated += 1;
                    // Due immediately: the copy arrives on the next receive.
                    self.held_recv.push((self.rcvd, buf.clone()));
                    return Ok(RecvOutcome::Frame);
                }
                Some(Fault::Delay(k)) => {
                    self.counters.delayed += 1;
                    self.held_recv.push((self.rcvd + u64::from(k), buf.clone()));
                }
                Some(Fault::Disconnect) => return Err(self.sever()),
            }
        }
    }
}

/// Keeps `n % len` leading bytes — always strictly shrinking the frame.
fn truncate(buf: &mut Vec<u8>, n: u16) {
    if !buf.is_empty() {
        let keep = n as usize % buf.len();
        buf.truncate(keep);
    }
}

/// Flips bit `n % (len * 8)`.
fn corrupt(buf: &mut [u8], n: u16) {
    if !buf.is_empty() {
        let bit = n as usize % (buf.len() * 8);
        if let Some(byte) = buf.get_mut(bit / 8) {
            *byte ^= 1 << (bit % 8);
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if self.inner.is_none() {
            return Err(TransportError::Closed);
        }
        let index = self.sent;
        self.sent += 1;
        match self.plan.send.remove(&index) {
            None => {
                let inner = self.inner.as_mut().ok_or(TransportError::Closed)?;
                inner.send(frame)?;
            }
            Some(Fault::Drop) => {
                self.counters.dropped += 1;
            }
            Some(Fault::Truncate(n)) => {
                self.counters.truncated += 1;
                let mut cut = frame.to_vec();
                truncate(&mut cut, n);
                self.inner
                    .as_mut()
                    .ok_or(TransportError::Closed)?
                    .send(&cut)?;
            }
            Some(Fault::Corrupt(n)) => {
                self.counters.corrupted += 1;
                let mut bad = frame.to_vec();
                corrupt(&mut bad, n);
                self.inner
                    .as_mut()
                    .ok_or(TransportError::Closed)?
                    .send(&bad)?;
            }
            Some(Fault::Duplicate) => {
                self.counters.duplicated += 1;
                let inner = self.inner.as_mut().ok_or(TransportError::Closed)?;
                inner.send(frame)?;
                inner.send(frame)?;
            }
            Some(Fault::Delay(k)) => {
                self.counters.delayed += 1;
                // `self.sent` is already past this frame's index, so the due
                // point is "after k more frames", mirroring the recv side.
                self.held_send
                    .push((self.sent + u64::from(k), frame.to_vec()));
            }
            Some(Fault::Disconnect) => return Err(self.sever()),
        }
        self.flush_due_sends()
    }

    fn recv(&mut self, buf: &mut Vec<u8>) -> Result<bool, TransportError> {
        match self.recv_inner(buf, None)? {
            RecvOutcome::Frame => Ok(true),
            RecvOutcome::Closed => Ok(false),
            RecvOutcome::TimedOut => {
                // hpcc-lint: allow(panic) — recv_inner(None) blocks indefinitely and never reports TimedOut
                unreachable!("blocking recv cannot time out")
            }
        }
    }

    fn recv_timeout(
        &mut self,
        buf: &mut Vec<u8>,
        timeout: Duration,
    ) -> Result<RecvOutcome, TransportError> {
        self.recv_inner(buf, Some(timeout))
    }

    fn backlog(&self) -> Option<usize> {
        self.inner.as_ref().and_then(|t| t.backlog())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;

    fn pair_with(plan: FaultPlan) -> (FaultTransport<ChannelTransport>, ChannelTransport) {
        let (a, b) = ChannelTransport::pair();
        (FaultTransport::new(a, plan), b)
    }

    #[test]
    fn empty_plan_is_a_transparent_pass_through() {
        let (mut a, mut b) = pair_with(FaultPlan::new());
        a.send(&[1, 2, 3]).unwrap();
        b.send(&[4, 5]).unwrap();
        let mut buf = Vec::new();
        assert!(b.recv(&mut buf).unwrap());
        assert_eq!(buf, [1, 2, 3]);
        assert!(a.recv(&mut buf).unwrap());
        assert_eq!(buf, [4, 5]);
        assert_eq!(a.counters().total(), 0);
    }

    #[test]
    fn send_faults_drop_truncate_corrupt_duplicate() {
        let plan = FaultPlan::new()
            .on_send(0, Fault::Drop)
            .on_send(1, Fault::Truncate(2))
            .on_send(2, Fault::Corrupt(0))
            .on_send(3, Fault::Duplicate);
        let (mut a, mut b) = pair_with(plan);
        a.send(&[10, 11, 12, 13]).unwrap(); // dropped
        a.send(&[20, 21, 22, 23]).unwrap(); // truncated to 2 bytes
        a.send(&[0x30, 0x31]).unwrap(); // bit 0 flipped
        a.send(&[40]).unwrap(); // doubled
        let mut buf = Vec::new();
        assert!(b.recv(&mut buf).unwrap());
        assert_eq!(buf, [20, 21], "truncation keeps n leading bytes");
        assert!(b.recv(&mut buf).unwrap());
        assert_eq!(buf, [0x31, 0x31], "bit 0 of byte 0 flipped");
        assert!(b.recv(&mut buf).unwrap());
        assert_eq!(buf, [40]);
        assert!(b.recv(&mut buf).unwrap());
        assert_eq!(buf, [40], "duplicate arrives as a second frame");
        let c = a.counters();
        assert_eq!(
            (c.dropped, c.truncated, c.corrupted, c.duplicated),
            (1, 1, 1, 1)
        );
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn delayed_sends_are_reordered_not_lost() {
        let plan = FaultPlan::new().on_send(0, Fault::Delay(2));
        let (mut a, mut b) = pair_with(plan);
        a.send(&[1]).unwrap(); // held until index 2 passes
        a.send(&[2]).unwrap();
        a.send(&[3]).unwrap(); // frame index 2: the held frame flushes after
        let mut buf = Vec::new();
        let mut order = Vec::new();
        for _ in 0..3 {
            assert!(b.recv(&mut buf).unwrap());
            order.push(buf[0]);
        }
        assert_eq!(order, [2, 3, 1], "held frame passes behind two others");
        assert_eq!(a.counters().delayed, 1);
    }

    #[test]
    fn recv_faults_mirror_send_faults() {
        let plan = FaultPlan::new()
            .on_recv(0, Fault::Drop)
            .on_recv(1, Fault::Duplicate)
            .on_recv(2, Fault::Delay(1));
        let (mut a, mut b) = pair_with(plan);
        b.send(&[1]).unwrap(); // dropped on receive
        b.send(&[2]).unwrap(); // duplicated
        b.send(&[3]).unwrap(); // delayed past the next frame
        b.send(&[4]).unwrap();
        let mut buf = Vec::new();
        let mut order = Vec::new();
        for _ in 0..4 {
            assert!(a.recv(&mut buf).unwrap());
            order.push(buf[0]);
        }
        assert_eq!(order, [2, 2, 4, 3]);
        let c = a.counters();
        assert_eq!((c.dropped, c.duplicated, c.delayed), (1, 1, 1));
    }

    #[test]
    fn disconnect_severs_both_sides() {
        let plan = FaultPlan::new().on_send(1, Fault::Disconnect);
        let (mut a, mut b) = pair_with(plan);
        a.send(&[1]).unwrap();
        assert!(matches!(a.send(&[2]), Err(TransportError::Closed)));
        // Every later operation on the wrapper stays dead.
        let mut buf = Vec::new();
        assert!(matches!(a.recv(&mut buf), Err(TransportError::Closed)));
        assert!(matches!(a.send(&[3]), Err(TransportError::Closed)));
        // The peer drains what was delivered, then sees a real close.
        assert!(b.recv(&mut buf).unwrap());
        assert_eq!(buf, [1]);
        assert!(!b.recv(&mut buf).unwrap(), "peer observes the close");
        assert_eq!(a.counters().disconnects, 1);
    }

    #[test]
    fn random_plans_replay_exactly_from_their_seed() {
        let p1 = FaultPlan::random(0xDECAF, 6, 40, true);
        let p2 = FaultPlan::random(0xDECAF, 6, 40, true);
        assert_eq!(p1, p2, "same seed, same plan");
        assert!(!p1.is_empty());
        let p3 = FaultPlan::random(0xDECAF + 1, 6, 40, true);
        assert_ne!(p1, p3, "different seed, different plan");
        // Disconnect appears exactly when asked for.
        let no_dc = FaultPlan::random(7, 8, 40, false);
        assert!(!no_dc
            .send
            .values()
            .chain(no_dc.recv.values())
            .any(|f| *f == Fault::Disconnect));
        let with_dc = FaultPlan::random(7, 0, 40, true);
        assert_eq!(
            with_dc
                .send
                .values()
                .chain(with_dc.recv.values())
                .filter(|f| **f == Fault::Disconnect)
                .count(),
            1
        );
    }
}
