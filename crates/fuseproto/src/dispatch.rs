//! The unified dispatch surface: one trait both session flavors implement.
//!
//! PR 5's [`Session`] dispatched queued requests through an inherent
//! `&mut self` method while PR 6's [`ReaderSession`] exposed only `&self`
//! typed ops — two incompatible surfaces, so a serving loop would have had
//! to be written twice. [`Dispatch`] is the one contract a
//! [`Server`](crate::Server) pumps requests into:
//!
//! * [`Session<B>`] routes each [`Request`] to its typed implementation,
//!   exactly as the old `Session::dispatch` did;
//! * [`ReaderSession`] routes read ops to its lock-free `&self`
//!   implementations and answers every mutation with `EROFS`. A reader
//!   authenticates **once** (like a mount), so requests carrying different
//!   credentials than the session's are refused with `EACCES` rather than
//!   silently re-authenticated;
//! * `&ReaderSession` implements it too (all reader ops are `&self`), so a
//!   server can serve a reader it merely borrows while other threads use the
//!   same session directly;
//! * `&mut D` forwards, so a server can borrow any dispatcher.

use hpcc_vfs::Ino;

use crate::errno::{Errno, OpResult};
use crate::op::{Operation, Reply, Request};
use crate::ops::FsOps;
use crate::session::Session;
use crate::shared::ReaderSession;

/// A request dispatcher: anything a [`Server`](crate::Server) can serve.
///
/// `handle` takes `&mut self` because a read-write [`Session`] mutates its
/// handle table; read-only dispatchers (`ReaderSession`, `&ReaderSession`)
/// simply don't use the exclusivity.
pub trait Dispatch {
    /// Dispatches one request, encoding the result as a [`Reply`].
    fn handle(&mut self, req: Request) -> Reply;

    /// The root inode resolution starts from (`FUSE_ROOT_ID` on the wire).
    fn root_ino(&self) -> Ino;

    /// Number of currently open handles (files + directories).
    fn open_handles(&self) -> usize;

    /// The client is gone: drop every open handle, as a FUSE daemon does on
    /// unmount. Called by the server on transport close and shutdown.
    fn disconnect(&mut self);

    /// Dispatches a queue of requests in order, one reply per request.
    fn handle_all(&mut self, reqs: impl IntoIterator<Item = Request>) -> Vec<Reply>
    where
        Self: Sized,
    {
        reqs.into_iter().map(|r| self.handle(r)).collect()
    }
}

fn reply(r: OpResult<Reply>) -> Reply {
    r.unwrap_or_else(Reply::Err)
}

impl<B: FsOps> Dispatch for Session<B> {
    fn handle(&mut self, req: Request) -> Reply {
        let cred = req.cred;
        match req.op {
            Operation::Lookup { parent, name } => {
                reply(self.lookup(&cred, parent, &name).map(Reply::Entry))
            }
            Operation::Getattr { ino } => reply(self.getattr(&cred, ino).map(Reply::Attr)),
            Operation::Setattr { ino, changes } => {
                reply(self.setattr(&cred, ino, &changes).map(Reply::Attr))
            }
            Operation::Readlink { ino } => reply(self.readlink(&cred, ino).map(Reply::Link)),
            Operation::Open { ino, flags } => {
                reply(self.open(&cred, ino, flags).map(Reply::Opened))
            }
            Operation::Create {
                parent,
                name,
                mode,
                flags,
            } => reply(
                self.create(&cred, parent, &name, mode, flags)
                    .map(|(_, opened)| Reply::Opened(opened)),
            ),
            Operation::Read { fh, offset, size } => {
                reply(self.read(&cred, fh, offset, size).map(Reply::Data))
            }
            Operation::Write { fh, offset, data } => {
                reply(self.write(&cred, fh, offset, &data).map(Reply::Written))
            }
            Operation::Release { fh } => reply(self.release(fh).map(|()| Reply::Unit)),
            Operation::Opendir { ino } => reply(self.opendir(&cred, ino).map(Reply::Opened)),
            Operation::Readdir { fh, offset, max } => {
                reply(self.readdir(&cred, fh, offset, max).map(Reply::Dir))
            }
            Operation::Releasedir { fh } => reply(self.releasedir(fh).map(|()| Reply::Unit)),
            Operation::Mkdir { parent, name, mode } => {
                reply(self.mkdir(&cred, parent, &name, mode).map(Reply::Entry))
            }
            Operation::Unlink { parent, name } => {
                reply(self.unlink(&cred, parent, &name).map(|()| Reply::Unit))
            }
            Operation::Rmdir { parent, name } => {
                reply(self.rmdir(&cred, parent, &name).map(|()| Reply::Unit))
            }
            Operation::Rename {
                parent,
                name,
                new_parent,
                new_name,
            } => reply(
                self.rename(&cred, parent, &name, new_parent, &new_name)
                    .map(|()| Reply::Unit),
            ),
            Operation::Symlink {
                parent,
                name,
                target,
            } => reply(
                self.symlink(&cred, parent, &name, &target)
                    .map(Reply::Entry),
            ),
            Operation::Statfs => reply(self.statfs(&cred).map(Reply::Statfs)),
            Operation::Getxattr { ino, name } => {
                reply(self.getxattr(&cred, ino, &name).map(Reply::Xattr))
            }
            Operation::Setxattr { ino, name, value } => reply(
                self.setxattr(&cred, ino, &name, &value)
                    .map(|()| Reply::Unit),
            ),
            Operation::Listxattr { ino } => reply(self.listxattr(&cred, ino).map(Reply::Names)),
        }
    }

    fn root_ino(&self) -> Ino {
        Session::root_ino(self)
    }

    fn open_handles(&self) -> usize {
        Session::open_handles(self)
    }

    fn disconnect(&mut self) {
        self.release_all();
    }
}

impl Dispatch for ReaderSession {
    fn handle(&mut self, req: Request) -> Reply {
        let mut borrowed: &ReaderSession = self;
        Dispatch::handle(&mut borrowed, req)
    }

    fn root_ino(&self) -> Ino {
        ReaderSession::root_ino(self)
    }

    fn open_handles(&self) -> usize {
        ReaderSession::open_handles(self)
    }

    fn disconnect(&mut self) {
        self.release_all();
    }
}

/// Every reader op is `&self`, so a *borrowed* reader dispatches too — a
/// server can serve a `ReaderSession` other threads are using directly.
impl Dispatch for &ReaderSession {
    fn handle(&mut self, req: Request) -> Reply {
        let s: &ReaderSession = self;
        // A reader authenticates once, at session creation; a request
        // claiming different credentials is refused, not re-authenticated.
        if req.cred != *s.cred() {
            return Reply::Err(Errno::EACCES);
        }
        match req.op {
            Operation::Lookup { parent, name } => reply(s.lookup(parent, &name).map(Reply::Entry)),
            Operation::Getattr { ino } => reply(s.getattr(ino).map(Reply::Attr)),
            Operation::Setattr { ino, changes } => reply(s.setattr(ino, &changes).map(Reply::Attr)),
            Operation::Readlink { ino } => reply(s.readlink(ino).map(Reply::Link)),
            Operation::Open { ino, flags } => reply(s.open(ino, flags).map(Reply::Opened)),
            // Always EROFS on a shared image; the mapped reply variants are
            // unreachable but keep each arm honest about its success shape.
            Operation::Create {
                parent,
                name,
                mode,
                flags: _,
            } => reply(s.create(parent, &name, mode).map(|_| Reply::Unit)),
            Operation::Read { fh, offset, size } => {
                reply(s.read(fh, offset, size).map(Reply::Data))
            }
            Operation::Write { fh, offset, data } => reply(
                s.write(fh, offset, &data)
                    .map(|size| Reply::Written(crate::op::Written { size })),
            ),
            Operation::Release { fh } => reply(s.release(fh).map(|()| Reply::Unit)),
            Operation::Opendir { ino } => reply(s.opendir(ino).map(Reply::Opened)),
            Operation::Readdir { fh, offset, max } => {
                reply(s.readdir(fh, offset, max).map(Reply::Dir))
            }
            Operation::Releasedir { fh } => reply(s.releasedir(fh).map(|()| Reply::Unit)),
            Operation::Mkdir { parent, name, mode } => {
                reply(s.mkdir(parent, &name, mode).map(Reply::Entry))
            }
            Operation::Unlink { parent, name } => {
                reply(s.unlink(parent, &name).map(|()| Reply::Unit))
            }
            Operation::Rmdir { parent, name } => {
                reply(s.rmdir(parent, &name).map(|()| Reply::Unit))
            }
            Operation::Rename {
                parent,
                name,
                new_parent,
                new_name,
            } => reply(
                s.rename(parent, &name, new_parent, &new_name)
                    .map(|()| Reply::Unit),
            ),
            Operation::Symlink {
                parent,
                name,
                target,
            } => reply(s.symlink(parent, &name, &target).map(Reply::Entry)),
            Operation::Statfs => reply(s.statfs().map(Reply::Statfs)),
            Operation::Getxattr { ino, name } => reply(s.getxattr(ino, &name).map(Reply::Xattr)),
            Operation::Setxattr { ino, name, value } => {
                reply(s.setxattr(ino, &name, &value).map(|()| Reply::Unit))
            }
            Operation::Listxattr { ino } => reply(s.listxattr(ino).map(Reply::Names)),
        }
    }

    fn root_ino(&self) -> Ino {
        ReaderSession::root_ino(self)
    }

    fn open_handles(&self) -> usize {
        ReaderSession::open_handles(self)
    }

    fn disconnect(&mut self) {
        self.release_all();
    }
}

/// Forwarding impl: a server may borrow its dispatcher instead of owning it.
impl<D: Dispatch> Dispatch for &mut D {
    fn handle(&mut self, req: Request) -> Reply {
        (**self).handle(req)
    }

    fn root_ino(&self) -> Ino {
        (**self).root_ino()
    }

    fn open_handles(&self) -> usize {
        (**self).open_handles()
    }

    fn disconnect(&mut self) {
        (**self).disconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;
    use crate::op::{FsCreds, OpenFlags};
    use crate::shared::SharedImage;
    use hpcc_kernel::{Gid, Uid, UserNamespace};
    use hpcc_vfs::{Filesystem, Mode};

    fn fs() -> Filesystem {
        let mut fs = Filesystem::new_local();
        fs.install_file(
            "/etc/hostname",
            b"astra".to_vec(),
            Uid(0),
            Gid(0),
            Mode::FILE_644,
        )
        .unwrap();
        fs
    }

    /// The same request script produces the same replies through a
    /// read-write `Session` and a read-only `ReaderSession` — the API the
    /// generic server builds on.
    #[test]
    fn one_script_runs_through_both_dispatchers() {
        let root = FsCreds::root();
        let script = |root_ino: hpcc_vfs::Ino| {
            [
                Request::new(
                    root.clone(),
                    Operation::Lookup {
                        parent: root_ino,
                        name: "etc".into(),
                    },
                ),
                Request::new(root.clone(), Operation::Statfs),
            ]
        };

        let mut session = Session::new(MemFs::new(fs(), UserNamespace::initial()));
        let a = session.handle_all(script(Dispatch::root_ino(&session)));

        let mut reader = SharedImage::new(fs(), UserNamespace::initial()).reader(root.clone());
        let b = reader.handle_all(script(Dispatch::root_ino(&reader)));

        match (&a[0], &b[0]) {
            (Reply::Entry(x), Reply::Entry(y)) => assert_eq!(x.ino, y.ino),
            other => panic!("{other:?}"),
        }
        assert!(matches!(a[1], Reply::Statfs(_)));
        assert!(matches!(b[1], Reply::Statfs(st) if st.readonly));
    }

    #[test]
    fn reader_dispatch_rejects_foreign_credentials() {
        let img = SharedImage::new(fs(), UserNamespace::initial());
        let mut reader = img.reader(FsCreds::root());
        let alice = FsCreds::new(Uid(1000), Gid(1000), vec![Gid(1000)]);
        let r = reader.handle(Request::new(
            alice,
            Operation::Getattr {
                ino: Dispatch::root_ino(&reader),
            },
        ));
        assert_eq!(r.err(), Some(Errno::EACCES));
        // The session's own credentials still work.
        let r = reader.handle(Request::new(
            FsCreds::root(),
            Operation::Getattr {
                ino: Dispatch::root_ino(&reader),
            },
        ));
        assert!(r.is_ok());
    }

    #[test]
    fn disconnect_releases_every_handle_on_both_flavors() {
        let root = FsCreds::root();
        let mut session = Session::new(MemFs::new(fs(), UserNamespace::initial()));
        let host = session.resolve_path(&root, "/etc/hostname", true).unwrap();
        session.open(&root, host.ino, OpenFlags::RDONLY).unwrap();
        let etc = session.resolve_path(&root, "/etc", true).unwrap();
        session.opendir(&root, etc.ino).unwrap();
        assert_eq!(Dispatch::open_handles(&session), 2);
        session.disconnect();
        assert_eq!(Dispatch::open_handles(&session), 0);

        let mut reader = SharedImage::new(fs(), UserNamespace::initial()).reader(root);
        let host = reader.resolve_path("/etc/hostname", true).unwrap();
        reader.open(host.ino, OpenFlags::RDONLY).unwrap();
        let etc = reader.resolve_path("/etc", true).unwrap();
        reader.opendir(etc.ino).unwrap();
        assert_eq!(Dispatch::open_handles(&reader), 2);
        reader.disconnect();
        assert_eq!(Dispatch::open_handles(&reader), 0);
    }

    /// A borrowed reader dispatches while the owner keeps using it directly.
    #[test]
    fn borrowed_reader_dispatches() {
        let img = SharedImage::new(fs(), UserNamespace::initial());
        let reader = img.reader(FsCreds::root());
        let mut borrowed = &reader;
        let r = borrowed.handle(Request::new(
            FsCreds::root(),
            Operation::Lookup {
                parent: reader.root_ino(),
                name: "etc".into(),
            },
        ));
        assert!(r.is_ok());
        // Owner still has full access.
        assert!(reader.resolve_path("/etc/hostname", true).is_ok());
    }
}
