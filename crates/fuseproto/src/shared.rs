//! Concurrent multi-reader serving: one shared immutable image, many cheap
//! per-client reader sessions, no global lock on the read path.
//!
//! A [`Session`](crate::Session) is single-owner: every op takes `&mut self`
//! and its handle table is a plain `HashMap`, so N clients serving one image
//! either serialize behind one session or pay a full CoW snapshot each
//! (`Container::mount_readonly` used to do the latter). This module is the
//! paper's end state instead — an unprivileged image on shared storage read
//! by many jobs at once:
//!
//! * [`SharedImage`] holds **one** `Arc`-shared frozen filesystem (the
//!   structural-sharing inode table and every file's copy-on-write
//!   [`FileBytes`](hpcc_vfs::FileBytes) buffer exist once, however many
//!   clients mount it) plus a pre-warmed lock-free
//!   [`FrozenResolver`] index over every path.
//! * [`SharedImage::reader`] hands out a [`ReaderSession`] per client:
//!   an `Arc` bump, the client's credentials derived once, and an empty
//!   handle table. Every op takes `&self`, so one `ReaderSession` may even
//!   be driven from several threads.
//!
//! The hot read path acquires no global `Mutex` anywhere: path resolution
//! probes the frozen index (immutable `HashMap`, re-running per-client
//! EXECUTE checks on each hit), inode and byte access are lock-free reads of
//! the persistent trie, and the handle table is sharded `RwLock`s keyed by
//! handle id with a wrapping-safe atomic allocator — concurrent opens and
//! reads touch different shards and proceed in parallel. Mutating ops
//! return `EROFS` unconditionally.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use hpcc_kernel::{Credentials, UserNamespace};
use hpcc_vfs::{Actor, Filesystem, FrozenResolver, Ino, Mode, OverlayFs, Setattr};

use crate::errno::{Errno, OpResult};
use crate::lock::{read_recover, write_recover};
use crate::memfs::{derive_credentials, wire};
use crate::op::{Attr, DirEntry, Entry, FsCreds, OpenFlags, Opened, ReadReply, StatfsReply};

/// Handle-table shard count. Handle ids are allocated sequentially, so
/// consecutive opens land on different shards and concurrent clients rarely
/// contend even on the same `ReaderSession`.
const HANDLE_SHARDS: usize = 8;

/// One immutable image served to any number of concurrent readers.
///
/// Construction freezes the filesystem (marks it read-only and pre-warms the
/// lock-free path index); cloning is an `Arc` bump. See the module docs for
/// the concurrency story.
#[derive(Debug, Clone)]
pub struct SharedImage {
    inner: Arc<ImageInner>,
}

#[derive(Debug)]
struct ImageInner {
    fs: Filesystem,
    userns: UserNamespace,
    resolver: FrozenResolver,
}

impl SharedImage {
    /// Freezes `fs` for concurrent serving in `userns`: marks it read-only,
    /// warms the frozen resolver over every path, and wraps the lot in one
    /// `Arc`. O(tree size) once; every reader afterwards is O(1).
    pub fn new(mut fs: Filesystem, userns: UserNamespace) -> Self {
        fs.readonly = true;
        let resolver = FrozenResolver::warm(&fs);
        SharedImage {
            inner: Arc::new(ImageInner {
                fs,
                userns,
                resolver,
            }),
        }
    }

    /// Freezes an overlay's merged view: the squash is a CoW materialization
    /// (tree metadata only — file bytes stay shared with the layers), taken
    /// **once** for all future readers rather than per client as
    /// [`ReadOnly::from_overlay`](crate::ReadOnly::from_overlay) does.
    pub fn from_overlay(overlay: &OverlayFs, userns: UserNamespace) -> Self {
        SharedImage::new(overlay.squash(), userns)
    }

    /// The served filesystem.
    pub fn filesystem(&self) -> &Filesystem {
        &self.inner.fs
    }

    /// The mount's user namespace.
    pub fn userns(&self) -> &UserNamespace {
        &self.inner.userns
    }

    /// The root inode.
    pub fn root_ino(&self) -> Ino {
        self.inner.fs.root_ino()
    }

    /// Number of paths in the frozen resolve index.
    pub fn indexed_paths(&self) -> usize {
        self.inner.resolver.len()
    }

    /// True if both handles serve the *same* image (one `Arc`, not a copy).
    pub fn ptr_eq(&self, other: &SharedImage) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Opens a per-client reader session: an `Arc` bump plus a one-time
    /// credential derivation — no filesystem copy of any kind. The session's
    /// every op re-checks permissions as `cred`.
    pub fn reader(&self, cred: FsCreds) -> ReaderSession {
        let creds = derive_credentials(&self.inner.userns, &cred);
        ReaderSession {
            image: self.clone(),
            cred,
            creds,
            handles: HandleTable::new(),
            ops_dispatched: AtomicU64::new(0),
        }
    }
}

/// State of one open read handle.
#[derive(Debug)]
enum ReadHandle {
    /// A regular-file handle (always `O_RDONLY` here). The sequential-read
    /// position is atomic so `read` can advance it under the shard's *read*
    /// lock.
    File {
        /// The file's inode.
        ino: Ino,
        /// Sequential-read position.
        offset: AtomicU64,
    },
    /// A directory handle with its entry snapshot (the readdir cursor).
    Dir {
        /// Entries snapshotted at `opendir`.
        entries: Vec<DirEntry>,
    },
}

/// The sharded concurrent handle table: `HANDLE_SHARDS` independent
/// `RwLock<HashMap>`s keyed by `fh % HANDLE_SHARDS`, with a wrapping-safe
/// atomic id allocator that skips 0 and any id still open.
#[derive(Debug)]
struct HandleTable {
    shards: [RwLock<HashMap<u64, ReadHandle>>; HANDLE_SHARDS],
    next_fh: AtomicU64,
}

impl HandleTable {
    fn new() -> Self {
        HandleTable {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            next_fh: AtomicU64::new(1),
        }
    }

    fn shard(&self, fh: u64) -> &RwLock<HashMap<u64, ReadHandle>> {
        // hpcc-lint: allow(panic) — index is `fh % HANDLE_SHARDS`, always in bounds
        &self.shards[(fh % HANDLE_SHARDS as u64) as usize]
    }

    fn read_shard(&self, fh: u64) -> RwLockReadGuard<'_, HashMap<u64, ReadHandle>> {
        read_recover(self.shard(fh))
    }

    fn write_shard(&self, fh: u64) -> RwLockWriteGuard<'_, HashMap<u64, ReadHandle>> {
        write_recover(self.shard(fh))
    }

    /// Allocates an id and inserts the handle. Wraparound-safe and
    /// reuse-free: 0 is never handed out, and an id still held by an open
    /// handle is skipped rather than aliased.
    fn insert(&self, handle: ReadHandle) -> u64 {
        let mut handle = Some(handle);
        loop {
            let fh = self.next_fh.fetch_add(1, Ordering::Relaxed);
            if fh == 0 {
                continue;
            }
            let mut shard = self.write_shard(fh);
            if let std::collections::hash_map::Entry::Vacant(slot) = shard.entry(fh) {
                if let Some(h) = handle.take() {
                    slot.insert(h);
                    return fh;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| read_recover(s).len()).sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            write_recover(shard).clear();
        }
    }
}

/// One client's view of a [`SharedImage`]: fixed credentials, a private
/// sharded handle table, and read-only ops that all take `&self` — the
/// session is `Sync` and may itself be shared across threads.
///
/// The op set mirrors [`Session`](crate::Session) minus credentials
/// parameters (a reader authenticates once, like a mount) and minus
/// mutation: every write-side op returns `EROFS`.
#[derive(Debug)]
pub struct ReaderSession {
    image: SharedImage,
    cred: FsCreds,
    /// Kernel credentials derived from `cred` once at session creation —
    /// per-op derivation would clone the groups vector on the hot path.
    creds: Credentials,
    handles: HandleTable,
    ops_dispatched: AtomicU64,
}

impl ReaderSession {
    /// The image this session reads.
    pub fn image(&self) -> &SharedImage {
        &self.image
    }

    /// The wire credentials this session authenticated with.
    pub fn cred(&self) -> &FsCreds {
        &self.cred
    }

    /// The root inode.
    pub fn root_ino(&self) -> Ino {
        self.image.root_ino()
    }

    /// Number of currently open handles (files + directories).
    pub fn open_handles(&self) -> usize {
        self.handles.len()
    }

    /// Total operations dispatched through this session.
    pub fn ops_dispatched(&self) -> u64 {
        self.ops_dispatched.load(Ordering::Relaxed)
    }

    fn count(&self) {
        self.ops_dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every open handle, as a FUSE daemon does when its client
    /// disconnects without releasing. Used by
    /// [`Dispatch::disconnect`](crate::Dispatch::disconnect).
    pub fn release_all(&self) {
        self.handles.clear();
    }

    fn actor(&self) -> Actor<'_> {
        Actor::new(&self.creds, self.image.userns())
    }

    fn fs(&self) -> &Filesystem {
        self.image.filesystem()
    }

    // ------------------------------------------------------------ resolution

    /// Resolves an absolute path via the frozen index (O(1) for every
    /// symlink-free path in the image, no lock), falling back to an uncached
    /// walk for symlinks and unindexed paths. `follow_final` selects
    /// stat/lstat semantics.
    pub fn resolve_path(&self, path: &str, follow_final: bool) -> OpResult<Entry> {
        self.count();
        let actor = self.actor();
        let resolver = &self.image.inner.resolver;
        let ino = if follow_final {
            resolver.resolve(self.fs(), &actor, path)
        } else {
            resolver.resolve_no_follow(self.fs(), &actor, path)
        }
        .map_err(wire)?;
        Ok(Entry {
            ino,
            attr: Attr::from(self.fs().stat_ino(&actor, ino).map_err(wire)?),
        })
    }

    // ------------------------------------------------------------- typed ops

    /// `lookup`: one component under a parent directory.
    pub fn lookup(&self, parent: Ino, name: &str) -> OpResult<Entry> {
        self.count();
        let actor = self.actor();
        let ino = self.fs().lookup_at(&actor, parent, name).map_err(wire)?;
        Ok(Entry {
            ino,
            attr: Attr::from(self.fs().stat_ino(&actor, ino).map_err(wire)?),
        })
    }

    /// `getattr`.
    pub fn getattr(&self, ino: Ino) -> OpResult<Attr> {
        self.count();
        let actor = self.actor();
        Ok(Attr::from(self.fs().stat_ino(&actor, ino).map_err(wire)?))
    }

    /// `readlink`.
    pub fn readlink(&self, ino: Ino) -> OpResult<String> {
        self.count();
        let actor = self.actor();
        self.fs().readlink_ino(&actor, ino).map_err(wire)
    }

    /// `open`: read-only opens check access once (per POSIX) and allocate a
    /// handle; any writable or truncating flag is `EROFS`.
    pub fn open(&self, ino: Ino, flags: OpenFlags) -> OpResult<Opened> {
        self.count();
        if flags.writable() || flags.truncates() {
            return Err(Errno::EROFS);
        }
        let actor = self.actor();
        let inode = self.fs().inode(ino).map_err(wire)?;
        if inode.is_dir() {
            return Err(Errno::EISDIR);
        }
        if !inode.is_file() {
            return Err(Errno::EINVAL);
        }
        self.fs()
            .check_access_ino(&actor, ino, hpcc_vfs::Access::READ)
            .map_err(wire)?;
        let fh = self.handles.insert(ReadHandle::File {
            ino,
            offset: AtomicU64::new(0),
        });
        Ok(Opened { fh, flags })
    }

    /// `read` at an explicit offset. Zero-copy — the reply windows the
    /// file's shared bytes — and lock-free on the image side; only the
    /// handle's shard is read-locked. Advances the sequential position.
    pub fn read(&self, fh: u64, offset: u64, size: u32) -> OpResult<ReadReply> {
        self.count();
        let shard = self.handles.read_shard(fh);
        let (ino, pos) = match shard.get(&fh) {
            Some(ReadHandle::File { ino, offset }) => (*ino, offset),
            Some(ReadHandle::Dir { .. }) => return Err(Errno::EISDIR),
            None => return Err(Errno::EBADF),
        };
        let actor = self.actor();
        let bytes = self.fs().file_bytes_ino(&actor, ino).map_err(wire)?;
        let reply = ReadReply::new(bytes, offset, size);
        pos.store(offset + reply.len() as u64, Ordering::Relaxed);
        Ok(reply)
    }

    /// Sequential `read`: continues from the handle's current position.
    /// Two threads streaming through the *same* handle race on the cursor
    /// exactly as two processes sharing a file description do.
    pub fn read_next(&self, fh: u64, size: u32) -> OpResult<ReadReply> {
        let offset = {
            let shard = self.handles.read_shard(fh);
            match shard.get(&fh) {
                Some(ReadHandle::File { offset, .. }) => offset.load(Ordering::Relaxed),
                Some(ReadHandle::Dir { .. }) => return Err(Errno::EISDIR),
                None => return Err(Errno::EBADF),
            }
        };
        self.read(fh, offset, size)
    }

    /// `release`: closes a file handle.
    pub fn release(&self, fh: u64) -> OpResult<()> {
        self.count();
        let mut shard = self.handles.write_shard(fh);
        match shard.get(&fh) {
            Some(ReadHandle::File { .. }) => {
                shard.remove(&fh);
                Ok(())
            }
            Some(ReadHandle::Dir { .. }) | None => Err(Errno::EBADF),
        }
    }

    /// `opendir`: snapshots the directory's entries into a cursor handle.
    pub fn opendir(&self, ino: Ino) -> OpResult<Opened> {
        self.count();
        let actor = self.actor();
        let fs = self.fs();
        let entries = fs
            .readdir_ino(&actor, ino)
            .map_err(wire)?
            .into_iter()
            .map(|(name, child)| {
                let file_type = fs
                    .inode(child)
                    .map(|i| i.file_type())
                    .unwrap_or(hpcc_vfs::FileType::Regular);
                DirEntry {
                    name,
                    ino: child,
                    file_type,
                }
            })
            .collect();
        let fh = self.handles.insert(ReadHandle::Dir { entries });
        Ok(Opened {
            fh,
            flags: OpenFlags::RDONLY,
        })
    }

    /// `readdir`: up to `max` entries starting at cursor `offset`. An empty
    /// reply means end of stream.
    pub fn readdir(&self, fh: u64, offset: usize, max: usize) -> OpResult<Vec<DirEntry>> {
        self.count();
        let shard = self.handles.read_shard(fh);
        match shard.get(&fh) {
            Some(ReadHandle::Dir { entries }) => {
                let start = offset.min(entries.len());
                let end = start.saturating_add(max).min(entries.len());
                Ok(entries.get(start..end).unwrap_or(&[]).to_vec())
            }
            Some(ReadHandle::File { .. }) => Err(Errno::ENOTDIR),
            None => Err(Errno::EBADF),
        }
    }

    /// `releasedir`: closes a directory handle.
    pub fn releasedir(&self, fh: u64) -> OpResult<()> {
        self.count();
        let mut shard = self.handles.write_shard(fh);
        match shard.get(&fh) {
            Some(ReadHandle::Dir { .. }) => {
                shard.remove(&fh);
                Ok(())
            }
            Some(ReadHandle::File { .. }) | None => Err(Errno::EBADF),
        }
    }

    /// `statfs`. Always reports read-only.
    pub fn statfs(&self) -> OpResult<StatfsReply> {
        self.count();
        let fs = self.fs();
        Ok(StatfsReply {
            inodes: fs.inode_count() as u64,
            bytes: fs.total_file_bytes(),
            readonly: true,
        })
    }

    /// `getxattr`.
    pub fn getxattr(&self, ino: Ino, name: &str) -> OpResult<Vec<u8>> {
        self.count();
        let actor = self.actor();
        self.fs().get_xattr_ino(&actor, ino, name).map_err(wire)
    }

    /// `listxattr`.
    pub fn listxattr(&self, ino: Ino) -> OpResult<Vec<String>> {
        self.count();
        let actor = self.actor();
        self.fs().list_xattrs_ino(&actor, ino).map_err(wire)
    }

    // ---------------------------------------------------------- mutation: no

    /// `setattr` on a shared image: `EROFS`.
    pub fn setattr(&self, _ino: Ino, _changes: &Setattr) -> OpResult<Attr> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `write` on a shared image: `EROFS`.
    pub fn write(&self, _fh: u64, _offset: u64, _data: &[u8]) -> OpResult<u32> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `create` on a shared image: `EROFS`.
    pub fn create(&self, _parent: Ino, _name: &str, _mode: Mode) -> OpResult<Entry> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `mkdir` on a shared image: `EROFS`.
    pub fn mkdir(&self, _parent: Ino, _name: &str, _mode: Mode) -> OpResult<Entry> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `unlink` on a shared image: `EROFS`.
    pub fn unlink(&self, _parent: Ino, _name: &str) -> OpResult<()> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `rmdir` on a shared image: `EROFS`.
    pub fn rmdir(&self, _parent: Ino, _name: &str) -> OpResult<()> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `rename` on a shared image: `EROFS`.
    pub fn rename(
        &self,
        _parent: Ino,
        _name: &str,
        _new_parent: Ino,
        _new_name: &str,
    ) -> OpResult<()> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `symlink` on a shared image: `EROFS`.
    pub fn symlink(&self, _parent: Ino, _name: &str, _target: &str) -> OpResult<Entry> {
        self.count();
        Err(Errno::EROFS)
    }

    /// `setxattr` on a shared image: `EROFS`.
    pub fn setxattr(&self, _ino: Ino, _name: &str, _value: &[u8]) -> OpResult<()> {
        self.count();
        Err(Errno::EROFS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_kernel::{Gid, Uid};

    /// The whole stack must be shareable across threads by construction.
    #[test]
    fn shared_types_are_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<SharedImage>();
        check::<ReaderSession>();
    }

    fn image() -> SharedImage {
        let mut fs = Filesystem::new_local();
        fs.install_file(
            "/etc/hostname",
            b"astra".to_vec(),
            Uid(0),
            Gid(0),
            Mode::FILE_644,
        )
        .unwrap();
        fs.install_file(
            "/etc/secret",
            b"k".to_vec(),
            Uid(0),
            Gid(0),
            Mode::new(0o600),
        )
        .unwrap();
        fs.install_symlink("/etc/alias", "hostname", Uid(0), Gid(0))
            .unwrap();
        SharedImage::new(fs, UserNamespace::initial())
    }

    #[test]
    fn readers_share_one_image_zero_copy() {
        let img = image();
        let r1 = img.reader(FsCreds::root());
        let r2 = img.reader(FsCreds::root());
        assert!(r1.image().ptr_eq(r2.image()));
        let e1 = r1.resolve_path("/etc/hostname", true).unwrap();
        let e2 = r2.resolve_path("/etc/hostname", true).unwrap();
        assert_eq!(e1.ino, e2.ino);
        let o1 = r1.open(e1.ino, OpenFlags::RDONLY).unwrap();
        let o2 = r2.open(e2.ino, OpenFlags::RDONLY).unwrap();
        let d1 = r1.read(o1.fh, 0, 64).unwrap();
        let d2 = r2.read(o2.fh, 0, 64).unwrap();
        assert_eq!(d1.as_slice(), b"astra");
        // Both replies window the *same* buffer: nothing was snapshotted or
        // copied per client.
        assert!(d1.bytes().shares_buffer_with(d2.bytes()));
        let direct = img
            .filesystem()
            .file_bytes_ino(&Actor::new(&Credentials::host_root(), img.userns()), e1.ino)
            .unwrap();
        assert!(d1.bytes().shares_buffer_with(&direct));
        r1.release(o1.fh).unwrap();
        r2.release(o2.fh).unwrap();
        assert_eq!(r1.open_handles() + r2.open_handles(), 0);
    }

    #[test]
    fn per_client_credentials_are_enforced() {
        let img = image();
        let alice = img.reader(FsCreds::new(Uid(1000), Gid(1000), vec![Gid(1000)]));
        let root = img.reader(FsCreds::root());
        let secret = root.resolve_path("/etc/secret", true).unwrap();
        assert_eq!(
            alice.open(secret.ino, OpenFlags::RDONLY).unwrap_err(),
            Errno::EACCES
        );
        let o = root.open(secret.ino, OpenFlags::RDONLY).unwrap();
        assert_eq!(root.read(o.fh, 0, 8).unwrap().as_slice(), b"k");
        root.release(o.fh).unwrap();
    }

    #[test]
    fn every_mutation_is_erofs() {
        let img = image();
        let r = img.reader(FsCreds::root());
        let etc = r.resolve_path("/etc", true).unwrap();
        let host = r.resolve_path("/etc/hostname", true).unwrap();
        assert_eq!(r.open(host.ino, OpenFlags::RDWR).unwrap_err(), Errno::EROFS);
        assert_eq!(
            r.open(host.ino, OpenFlags::RDONLY | OpenFlags::TRUNC)
                .unwrap_err(),
            Errno::EROFS
        );
        assert_eq!(
            r.mkdir(etc.ino, "x", Mode::DIR_755).unwrap_err(),
            Errno::EROFS
        );
        assert_eq!(
            r.create(etc.ino, "x", Mode::FILE_644).unwrap_err(),
            Errno::EROFS
        );
        assert_eq!(r.unlink(etc.ino, "hostname").unwrap_err(), Errno::EROFS);
        assert_eq!(r.rmdir(etc.ino, "x").unwrap_err(), Errno::EROFS);
        assert_eq!(
            r.rename(etc.ino, "hostname", etc.ino, "h2").unwrap_err(),
            Errno::EROFS
        );
        assert_eq!(
            r.symlink(etc.ino, "l", "hostname").unwrap_err(),
            Errno::EROFS
        );
        assert_eq!(r.write(1, 0, b"x").unwrap_err(), Errno::EROFS);
        assert_eq!(
            r.setxattr(host.ino, "user.x", b"v").unwrap_err(),
            Errno::EROFS
        );
        assert_eq!(
            r.setattr(host.ino, &Setattr::default()).unwrap_err(),
            Errno::EROFS
        );
        assert!(r.statfs().unwrap().readonly);
    }

    #[test]
    fn symlinks_resolve_through_the_fallback_path() {
        let img = image();
        let r = img.reader(FsCreds::root());
        let direct = r.resolve_path("/etc/hostname", true).unwrap();
        let via_link = r.resolve_path("/etc/alias", true).unwrap();
        assert_eq!(direct.ino, via_link.ino);
        let no_follow = r.resolve_path("/etc/alias", false).unwrap();
        assert_eq!(no_follow.attr.file_type, hpcc_vfs::FileType::Symlink);
        assert_eq!(r.readlink(no_follow.ino).unwrap(), "hostname");
    }

    #[test]
    fn shared_handle_table_survives_wraparound_without_aliasing() {
        let img = image();
        let r = img.reader(FsCreds::root());
        let host = r.resolve_path("/etc/hostname", true).unwrap();
        r.handles.next_fh.store(u64::MAX, Ordering::Relaxed);
        let pinned = r.open(host.ino, OpenFlags::RDONLY).unwrap().fh;
        assert_eq!(pinned, u64::MAX);
        for _ in 0..4 {
            let fh = r.open(host.ino, OpenFlags::RDONLY).unwrap().fh;
            assert_ne!(fh, 0);
            assert_ne!(fh, pinned);
            r.release(fh).unwrap();
        }
        // Counter forced back over the still-open id: it is skipped.
        r.handles.next_fh.store(u64::MAX, Ordering::Relaxed);
        let next = r.open(host.ino, OpenFlags::RDONLY).unwrap().fh;
        assert_ne!(next, pinned);
        assert_eq!(r.read(pinned, 0, 5).unwrap().as_slice(), b"astra");
        r.release(next).unwrap();
        r.release(pinned).unwrap();
        assert_eq!(r.open_handles(), 0);
    }

    #[test]
    fn readdir_cursor_pages_through_a_shared_reader() {
        let img = image();
        let r = img.reader(FsCreds::root());
        let etc = r.resolve_path("/etc", true).unwrap();
        let dh = r.opendir(etc.ino).unwrap();
        let page1 = r.readdir(dh.fh, 0, 2).unwrap();
        let page2 = r.readdir(dh.fh, 2, 10).unwrap();
        let mut names: Vec<String> = page1.into_iter().chain(page2).map(|e| e.name).collect();
        names.sort();
        assert_eq!(names, ["alias", "hostname", "secret"]);
        // Wrong release flavor does not drop the handle.
        assert_eq!(r.release(dh.fh).unwrap_err(), Errno::EBADF);
        assert_eq!(r.open_handles(), 1);
        r.releasedir(dh.fh).unwrap();
        assert_eq!(r.open_handles(), 0);
    }
}
