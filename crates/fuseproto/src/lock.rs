//! Poison-recovering lock acquisition for the serving path.
//!
//! The serve loop must keep running after a panicking writer poisons a
//! `Mutex`/`RwLock` (the protected state is either immutable or repaired by
//! the next holder), so every acquisition in this crate routes through these
//! helpers: they clear the poison flag and hand back the guard instead of
//! propagating the panic to every later client. The workspace analyzer's
//! HL003 pass enforces that no bare `.lock().unwrap()` bypasses them.

use std::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};
use std::time::Duration;

/// Locks a `Mutex`, clearing poison and recovering the guard if a previous
/// holder panicked.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        mutex.clear_poison();
        poisoned.into_inner()
    })
}

/// Read-locks a `RwLock`, clearing poison and recovering the guard if a
/// previous writer panicked.
pub(crate) fn read_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| {
        lock.clear_poison();
        poisoned.into_inner()
    })
}

/// Write-locks a `RwLock`, clearing poison and recovering the guard if a
/// previous writer panicked.
pub(crate) fn write_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poisoned| {
        lock.clear_poison();
        poisoned.into_inner()
    })
}

/// `Condvar::wait` with the same recovery: the mutex the guard came from is
/// passed alongside so its poison flag can be cleared.
pub(crate) fn wait_recover<'a, T>(
    cond: &Condvar,
    guard: MutexGuard<'a, T>,
    mutex: &'a Mutex<T>,
) -> MutexGuard<'a, T> {
    cond.wait(guard).unwrap_or_else(|poisoned| {
        mutex.clear_poison();
        poisoned.into_inner()
    })
}

/// `Condvar::wait_timeout` with poison recovery.
pub(crate) fn wait_timeout_recover<'a, T>(
    cond: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
    mutex: &'a Mutex<T>,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cond.wait_timeout(guard, dur).unwrap_or_else(|poisoned| {
        mutex.clear_poison();
        poisoned.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_recovers_after_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        assert!(!m.is_poisoned());
    }

    #[test]
    fn rwlock_recovers_after_a_panicked_writer() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*read_recover(&l), 1);
        *write_recover(&l) = 2;
        assert_eq!(*read_recover(&l), 2);
    }
}
