//! Typed operation requests and replies.
//!
//! Every request names its target by **inode number** (plus one component
//! name for directory-entry operations) or by **file handle**, and carries
//! the requesting credentials — the shape of a FUSE `fuse_in_header` +
//! opcode body. Replies are typed values; failures are wire-format
//! [`Errno`](crate::Errno) codes.

use hpcc_kernel::{Credentials, Gid, Uid};
use hpcc_vfs::{FileBytes, FileType, Ino, Mode, Setattr, Stat};

/// Per-request credentials: what a FUSE server learns about the caller from
/// the request header (`uid`, `gid`, supplementary groups) — **not** a
/// borrowed kernel `Actor`. IDs are host values, like everywhere else in the
/// simulated kernel; the backend decides what privilege they confer relative
/// to the filesystem's user namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsCreds {
    /// Requesting user (host ID).
    pub uid: Uid,
    /// Requesting primary group (host ID).
    pub gid: Gid,
    /// Supplementary groups (host IDs).
    pub groups: Vec<Gid>,
}

impl FsCreds {
    /// Creates request credentials.
    pub fn new(uid: Uid, gid: Gid, groups: Vec<Gid>) -> Self {
        FsCreds { uid, gid, groups }
    }

    /// Host root.
    pub fn root() -> Self {
        FsCreds::new(Uid::ROOT, Gid::ROOT, vec![Gid::ROOT])
    }

    /// The credentials of an existing process, as a request header would
    /// carry them (effective IDs plus supplementary groups; capability bits
    /// do not travel — the backend re-derives privilege from its namespace).
    pub fn from_credentials(creds: &Credentials) -> Self {
        FsCreds {
            uid: creds.euid,
            gid: creds.egid,
            groups: creds.supplementary.clone(),
        }
    }
}

/// Open flags, modelled on `open(2)`'s access mode plus `O_TRUNC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Read-only access.
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Write-only access.
    pub const WRONLY: OpenFlags = OpenFlags(1);
    /// Read-write access.
    pub const RDWR: OpenFlags = OpenFlags(2);
    /// Truncate to zero length at open.
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);

    /// The raw bits (Linux `O_*` encoding for the modelled subset).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs flags from raw bits.
    pub fn from_bits(bits: u32) -> OpenFlags {
        OpenFlags(bits)
    }

    /// True if the handle may read.
    pub fn readable(self) -> bool {
        self.0 & 0o3 != 1
    }

    /// True if the handle may write.
    pub fn writable(self) -> bool {
        matches!(self.0 & 0o3, 1 | 2)
    }

    /// True if the open truncates.
    pub fn truncates(self) -> bool {
        self.0 & Self::TRUNC.0 != 0
    }
}

impl std::ops::BitOr for OpenFlags {
    type Output = OpenFlags;

    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

/// File attributes as a reply carries them: one `uid`/`gid` pair — the IDs
/// as seen from the requester's namespace, which is what `ls(1)` through a
/// mount displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// Inode number.
    pub ino: Ino,
    /// File type.
    pub file_type: FileType,
    /// Permission bits.
    pub mode: Mode,
    /// Owner, as visible in the requester's namespace.
    pub uid: Uid,
    /// Group, as visible in the requester's namespace.
    pub gid: Gid,
    /// Size in bytes.
    pub size: u64,
    /// Hard-link count.
    pub nlink: u32,
    /// Device numbers for device nodes.
    pub rdev: Option<(u32, u32)>,
    /// Logical mtime.
    pub mtime: u64,
}

impl From<Stat> for Attr {
    fn from(st: Stat) -> Attr {
        Attr {
            ino: st.ino,
            file_type: st.file_type,
            mode: st.mode,
            uid: st.uid_view,
            gid: st.gid_view,
            size: st.size,
            nlink: st.nlink,
            rdev: st.rdev,
            mtime: st.mtime,
        }
    }
}

/// A `lookup`/`create`/`mkdir`/`symlink` reply: the entry's inode and
/// attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The resolved inode.
    pub ino: Ino,
    /// Its attributes.
    pub attr: Attr,
}

/// An `open`/`opendir` reply: the session-allocated file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opened {
    /// File handle, valid until `release`/`releasedir`.
    pub fh: u64,
    /// The flags the handle was opened with.
    pub flags: OpenFlags,
}

/// A `read` reply: a zero-copy view into the file's copy-on-write bytes.
///
/// The reply holds the file's [`FileBytes`] handle (an `Arc` bump — the
/// bytes are shared with the filesystem, never copied) plus the requested
/// window. [`ReadReply::as_slice`] borrows the window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadReply {
    bytes: FileBytes,
    offset: usize,
    len: usize,
}

impl ReadReply {
    /// Builds a reply windowing `bytes` at `offset` for up to `size` bytes
    /// (clamped to the end of file, like `read(2)`).
    pub fn new(bytes: FileBytes, offset: u64, size: u32) -> ReadReply {
        let offset = (offset as usize).min(bytes.len());
        let len = (size as usize).min(bytes.len() - offset);
        ReadReply { bytes, offset, len }
    }

    /// The bytes read.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes.as_slice()[self.offset..self.offset + self.len]
    }

    /// Number of bytes read (0 at end of file).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window is empty (offset at or past end of file).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shared whole-file handle backing this reply — used by tests and
    /// storage accounting to verify the read really was zero-copy
    /// ([`FileBytes::shares_buffer_with`]).
    pub fn bytes(&self) -> &FileBytes {
        &self.bytes
    }
}

/// A `write` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Written {
    /// Bytes written.
    pub size: u32,
}

/// One `readdir` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (single component).
    pub name: String,
    /// The entry's inode.
    pub ino: Ino,
    /// The entry's file type (as `getdents64` reports it).
    pub file_type: FileType,
}

/// A `statfs` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatfsReply {
    /// Inodes in the filesystem.
    pub inodes: u64,
    /// Total regular-file bytes.
    pub bytes: u64,
    /// True if the filesystem is mounted read-only.
    pub readonly: bool,
}

/// A typed operation request body. Together with the credentials in
/// [`Request`], this is the unit a [`Session`](crate::Session) dispatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Look up `name` under the directory `parent`.
    Lookup {
        /// Parent directory inode.
        parent: Ino,
        /// Entry name (one component).
        name: String,
    },
    /// Attributes of an inode.
    Getattr {
        /// Target inode.
        ino: Ino,
    },
    /// Change attributes (mode / ownership / size) of an inode.
    Setattr {
        /// Target inode.
        ino: Ino,
        /// The changes to apply.
        changes: Setattr,
    },
    /// Read a symlink's target.
    Readlink {
        /// Symlink inode.
        ino: Ino,
    },
    /// Open a regular file, allocating a file handle.
    Open {
        /// File inode.
        ino: Ino,
        /// Access mode and `O_TRUNC`.
        flags: OpenFlags,
    },
    /// Create (and open) an empty regular file.
    Create {
        /// Parent directory inode.
        parent: Ino,
        /// New entry name.
        name: String,
        /// Permission bits for the new file.
        mode: Mode,
        /// Flags for the returned handle.
        flags: OpenFlags,
    },
    /// Read from an open file handle.
    Read {
        /// Handle from `Open`/`Create`.
        fh: u64,
        /// Byte offset.
        offset: u64,
        /// Maximum bytes to return.
        size: u32,
    },
    /// Write to an open file handle.
    Write {
        /// Handle from `Open`/`Create`.
        fh: u64,
        /// Byte offset.
        offset: u64,
        /// The bytes to write.
        data: Vec<u8>,
    },
    /// Close a file handle.
    Release {
        /// Handle to drop.
        fh: u64,
    },
    /// Open a directory for reading, snapshotting its entries into a cursor.
    Opendir {
        /// Directory inode.
        ino: Ino,
    },
    /// Read entries from a directory handle, starting at `offset`.
    Readdir {
        /// Handle from `Opendir`.
        fh: u64,
        /// Entry cursor (index of the first entry to return).
        offset: usize,
        /// Maximum entries to return.
        max: usize,
    },
    /// Close a directory handle.
    Releasedir {
        /// Handle to drop.
        fh: u64,
    },
    /// Create a directory.
    Mkdir {
        /// Parent directory inode.
        parent: Ino,
        /// New entry name.
        name: String,
        /// Permission bits.
        mode: Mode,
    },
    /// Remove a non-directory entry.
    Unlink {
        /// Parent directory inode.
        parent: Ino,
        /// Entry name.
        name: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Parent directory inode.
        parent: Ino,
        /// Entry name.
        name: String,
    },
    /// Rename an entry, possibly across directories.
    Rename {
        /// Source parent inode.
        parent: Ino,
        /// Source entry name.
        name: String,
        /// Destination parent inode.
        new_parent: Ino,
        /// Destination entry name.
        new_name: String,
    },
    /// Create a symlink.
    Symlink {
        /// Parent directory inode.
        parent: Ino,
        /// New entry name.
        name: String,
        /// Link target.
        target: String,
    },
    /// Filesystem statistics.
    Statfs,
    /// Read an extended attribute.
    Getxattr {
        /// Target inode.
        ino: Ino,
        /// Attribute name.
        name: String,
    },
    /// Set an extended attribute.
    Setxattr {
        /// Target inode.
        ino: Ino,
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: Vec<u8>,
    },
    /// List extended attribute names.
    Listxattr {
        /// Target inode.
        ino: Ino,
    },
}

/// The reply shape an operation produces on success.
///
/// FUSE replies are not self-describing on the wire (a `fuse_out_header`
/// carries only length, error, and the request's unique id), so a client must
/// remember what shape it expects for each in-flight unique id.
/// [`Operation::reply_kind`] is that mapping; the wire codec
/// ([`crate::wire::decode_reply`]) takes it as the decode schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// [`Reply::Entry`].
    Entry,
    /// [`Reply::Attr`].
    Attr,
    /// [`Reply::Opened`].
    Opened,
    /// [`Reply::Data`].
    Data,
    /// [`Reply::Written`].
    Written,
    /// [`Reply::Dir`].
    Dir,
    /// [`Reply::Link`].
    Link,
    /// [`Reply::Statfs`].
    Statfs,
    /// [`Reply::Xattr`].
    Xattr,
    /// [`Reply::Names`].
    Names,
    /// [`Reply::Unit`].
    Unit,
}

impl Operation {
    /// The reply shape this operation produces on success.
    ///
    /// `Create` maps to [`ReplyKind::Opened`]: dispatch replies with the
    /// handle half of the create, like `Session::dispatch` always has.
    pub fn reply_kind(&self) -> ReplyKind {
        match self {
            Operation::Lookup { .. } | Operation::Mkdir { .. } | Operation::Symlink { .. } => {
                ReplyKind::Entry
            }
            Operation::Getattr { .. } | Operation::Setattr { .. } => ReplyKind::Attr,
            Operation::Open { .. } | Operation::Create { .. } | Operation::Opendir { .. } => {
                ReplyKind::Opened
            }
            Operation::Read { .. } => ReplyKind::Data,
            Operation::Write { .. } => ReplyKind::Written,
            Operation::Readdir { .. } => ReplyKind::Dir,
            Operation::Readlink { .. } => ReplyKind::Link,
            Operation::Statfs => ReplyKind::Statfs,
            Operation::Getxattr { .. } => ReplyKind::Xattr,
            Operation::Listxattr { .. } => ReplyKind::Names,
            Operation::Release { .. }
            | Operation::Releasedir { .. }
            | Operation::Unlink { .. }
            | Operation::Rmdir { .. }
            | Operation::Rename { .. }
            | Operation::Setxattr { .. } => ReplyKind::Unit,
        }
    }

    /// Whether re-executing this operation could change server-side state —
    /// the retransmission-safety split a retry policy needs. Pure reads
    /// (lookup, getattr, read/readdir at explicit offsets, statfs, xattr
    /// reads) are idempotent and retransmit freely; everything that writes
    /// the filesystem *or* the session's handle table (open/release included:
    /// re-executing an `Open` would allocate a second handle) counts as
    /// mutating and relies on the server's reply cache to be resent safely.
    pub fn mutates(&self) -> bool {
        match self {
            Operation::Lookup { .. }
            | Operation::Getattr { .. }
            | Operation::Readlink { .. }
            | Operation::Read { .. }
            | Operation::Readdir { .. }
            | Operation::Statfs
            | Operation::Getxattr { .. }
            | Operation::Listxattr { .. } => false,
            Operation::Setattr { .. }
            | Operation::Symlink { .. }
            | Operation::Mkdir { .. }
            | Operation::Unlink { .. }
            | Operation::Rmdir { .. }
            | Operation::Rename { .. }
            | Operation::Open { .. }
            | Operation::Create { .. }
            | Operation::Write { .. }
            | Operation::Release { .. }
            | Operation::Opendir { .. }
            | Operation::Releasedir { .. }
            | Operation::Setxattr { .. } => true,
        }
    }
}

/// A complete request: credentials plus operation — what a queue of incoming
/// FUSE messages decodes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The requesting credentials.
    pub cred: FsCreds,
    /// The operation body.
    pub op: Operation,
}

impl Request {
    /// Builds a request.
    pub fn new(cred: FsCreds, op: Operation) -> Request {
        Request { cred, op }
    }
}

/// A typed reply, one variant per reply shape; `Err` carries the wire errno.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `lookup`/`create`(entry half)/`mkdir`/`symlink` result.
    Entry(Entry),
    /// `getattr`/`setattr` result.
    Attr(Attr),
    /// `open`/`opendir`/`create`(handle half) result.
    Opened(Opened),
    /// `read` result (zero-copy window).
    Data(ReadReply),
    /// `write` result.
    Written(Written),
    /// `readdir` result.
    Dir(Vec<DirEntry>),
    /// `readlink` result.
    Link(String),
    /// `statfs` result.
    Statfs(StatfsReply),
    /// `getxattr` result.
    Xattr(Vec<u8>),
    /// `listxattr` result.
    Names(Vec<String>),
    /// Success with no payload (`release`, `unlink`, `rename`, …).
    Unit,
    /// Failure, as a wire errno.
    Err(crate::Errno),
}

impl Reply {
    /// The errno if this reply is a failure.
    pub fn err(&self) -> Option<crate::Errno> {
        match self {
            Reply::Err(e) => Some(*e),
            _ => None,
        }
    }

    /// True for non-error replies.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Err(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_semantics() {
        assert!(OpenFlags::RDONLY.readable() && !OpenFlags::RDONLY.writable());
        assert!(!OpenFlags::WRONLY.readable() && OpenFlags::WRONLY.writable());
        assert!(OpenFlags::RDWR.readable() && OpenFlags::RDWR.writable());
        let wt = OpenFlags::WRONLY | OpenFlags::TRUNC;
        assert!(wt.writable() && wt.truncates() && !wt.readable());
        assert_eq!(OpenFlags::from_bits(wt.bits()), wt);
    }

    #[test]
    fn read_reply_windows_and_shares() {
        let bytes = FileBytes::from(b"0123456789".to_vec());
        let r = ReadReply::new(bytes.clone(), 2, 4);
        assert_eq!(r.as_slice(), b"2345");
        assert!(r.bytes().shares_buffer_with(&bytes), "no copy");
        // Clamped at EOF.
        let tail = ReadReply::new(bytes.clone(), 8, 100);
        assert_eq!(tail.as_slice(), b"89");
        let past = ReadReply::new(bytes, 64, 4);
        assert!(past.is_empty());
    }
}
