//! The session: open-handle table, path resolution, and queue dispatch.
//!
//! A [`Session`] owns a backend and the mutable protocol state a FUSE daemon
//! keeps per mount: the file-handle table (flags and a sequential-read
//! offset per handle) and readdir cursors (a stable snapshot of a
//! directory's entries per `opendir`). Clients either call the typed
//! methods directly or route [`crate::Request`] values through the
//! [`Dispatch`](crate::Dispatch) trait — both paths execute identically.
//!
//! Reads are O(1) and zero-copy end to end: `open` checks access once (per
//! POSIX), and each `read` windows the file's shared
//! [`FileBytes`](hpcc_vfs::FileBytes) handle
//! via [`ReadReply`] — no bytes are copied at any point between the
//! filesystem and the client.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use hpcc_vfs::{FileType, Ino, Mode, PathComponents, Setattr};

use crate::errno::{Errno, OpResult};
use crate::op::{
    Attr, DirEntry, Entry, FsCreds, OpenFlags, Opened, ReadReply, StatfsReply, Written,
};
use crate::ops::FsOps;

/// Maximum symlink traversals in [`Session::resolve_path`] before `ELOOP`.
const MAX_SYMLINK_DEPTH: u32 = 40;

/// State of one open handle.
#[derive(Debug)]
enum Handle {
    /// A regular-file handle.
    File {
        /// The file's inode.
        ino: Ino,
        /// Flags the handle was opened with.
        flags: OpenFlags,
        /// Sequential-read position: advanced by each `read`, so a client
        /// streaming a file never tracks offsets itself.
        offset: u64,
    },
    /// A directory handle with its entry snapshot (the readdir cursor).
    Dir {
        /// The directory's inode.
        ino: Ino,
        /// Entries snapshotted at `opendir` — a stable cursor even if the
        /// directory mutates mid-listing, like a real `getdents` stream.
        entries: Vec<DirEntry>,
    },
}

/// A protocol session over a backend.
///
/// Generic over the backend so a mount can own its filesystem
/// (`Session<MemFs>`) while the shell borrows one
/// (`Session<MemFs<&mut Filesystem>>`).
#[derive(Debug)]
pub struct Session<B> {
    backend: B,
    handles: HashMap<u64, Handle>,
    next_fh: u64,
    /// Atomic so the pure (`&self`) ops can count themselves too.
    ops_dispatched: AtomicU64,
}

impl<B: FsOps> Session<B> {
    /// Starts a session over a backend.
    pub fn new(backend: B) -> Self {
        Session {
            backend,
            handles: HashMap::new(),
            next_fh: 1,
            ops_dispatched: AtomicU64::new(0),
        }
    }

    /// The backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Consumes the session, returning the backend. Open handles are
    /// forgotten (as on unmount).
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The root inode.
    pub fn root_ino(&self) -> Ino {
        self.backend.root_ino()
    }

    /// Number of currently open handles (files + directories). Zero after
    /// every handle is released — the leak check the property suite pins.
    pub fn open_handles(&self) -> usize {
        self.handles.len()
    }

    /// The inode behind an open handle (file or directory), if the handle is
    /// live.
    pub fn handle_ino(&self, fh: u64) -> Option<Ino> {
        match self.handles.get(&fh) {
            Some(Handle::File { ino, .. }) | Some(Handle::Dir { ino, .. }) => Some(*ino),
            None => None,
        }
    }

    /// Total operations dispatched (typed calls and wire requests alike).
    pub fn ops_dispatched(&self) -> u64 {
        self.ops_dispatched.load(Ordering::Relaxed)
    }

    fn count(&self) {
        self.ops_dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every open handle, as a FUSE daemon does when its client
    /// disconnects without releasing. Used by
    /// [`Dispatch::disconnect`](crate::Dispatch::disconnect).
    pub fn release_all(&mut self) {
        self.handles.clear();
    }

    // ------------------------------------------------------------ resolution

    /// Resolves an absolute path to an entry by chaining `lookup` ops from
    /// the root, following intermediate symlinks (and the final one when
    /// `follow_final`), exactly as a FUSE client's kernel would drive the
    /// protocol. This is a convenience for clients holding path strings; the
    /// protocol itself never sees a multi-component path.
    pub fn resolve_path(&self, cred: &FsCreds, path: &str, follow_final: bool) -> OpResult<Entry> {
        self.resolve_path_depth(cred, path, follow_final, 0)
    }

    fn resolve_path_depth(
        &self,
        cred: &FsCreds,
        path: &str,
        follow_final: bool,
        depth: u32,
    ) -> OpResult<Entry> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(Errno::ELOOP);
        }
        let comps = PathComponents::parse(path);
        let comps = comps.as_slice();
        let root = self.backend.root_ino();
        let mut cur = Entry {
            ino: root,
            attr: self.backend.getattr(cred, root)?,
        };
        for (i, &name) in comps.iter().enumerate() {
            let is_last = i + 1 == comps.len();
            let entry = self.backend.lookup(cred, cur.ino, name)?;
            if entry.attr.file_type == FileType::Symlink && (!is_last || follow_final) {
                let target = self.backend.readlink(cred, entry.ino)?;
                let rest = comps[i + 1..].join("/");
                let resolved = if target.starts_with('/') {
                    if rest.is_empty() {
                        target
                    } else {
                        format!("{}/{}", target, rest)
                    }
                } else {
                    let parent = comps[..i].join("/");
                    let mut p = format!("/{}/{}", parent, target);
                    if !rest.is_empty() {
                        p = format!("{}/{}", p, rest);
                    }
                    p
                };
                return self.resolve_path_depth(cred, &resolved, follow_final, depth + 1);
            }
            cur = entry;
        }
        Ok(cur)
    }

    // ------------------------------------------------------------- typed ops
    //
    // Ops that never touch mutable session or backend state (pure lookups,
    // statfs, the xattr reads, readdir paging over an already-open cursor)
    // take `&self`; everything that mutates the backend or the handle table
    // takes `&mut self`.

    /// `lookup`: one component under a parent directory.
    pub fn lookup(&self, cred: &FsCreds, parent: Ino, name: &str) -> OpResult<Entry> {
        self.count();
        self.backend.lookup(cred, parent, name)
    }

    /// `getattr`.
    pub fn getattr(&self, cred: &FsCreds, ino: Ino) -> OpResult<Attr> {
        self.count();
        self.backend.getattr(cred, ino)
    }

    /// `setattr`.
    pub fn setattr(&mut self, cred: &FsCreds, ino: Ino, changes: &Setattr) -> OpResult<Attr> {
        self.count();
        self.backend.setattr(cred, ino, changes)
    }

    /// `readlink`.
    pub fn readlink(&self, cred: &FsCreds, ino: Ino) -> OpResult<String> {
        self.count();
        self.backend.readlink(cred, ino)
    }

    /// `open`: validates access (and `O_TRUNC`) against the backend, then
    /// allocates a file handle.
    pub fn open(&mut self, cred: &FsCreds, ino: Ino, flags: OpenFlags) -> OpResult<Opened> {
        self.count();
        self.backend.open(cred, ino, flags)?;
        let fh = self.alloc_fh(Handle::File {
            ino,
            flags,
            offset: 0,
        });
        Ok(Opened { fh, flags })
    }

    /// `create`: creates an empty file and opens it in one op, like
    /// `FUSE_CREATE`.
    pub fn create(
        &mut self,
        cred: &FsCreds,
        parent: Ino,
        name: &str,
        mode: Mode,
        flags: OpenFlags,
    ) -> OpResult<(Entry, Opened)> {
        self.count();
        let entry = self.backend.create(cred, parent, name, mode)?;
        let fh = self.alloc_fh(Handle::File {
            ino: entry.ino,
            flags,
            offset: 0,
        });
        Ok((entry, Opened { fh, flags }))
    }

    /// `read` at an explicit offset. Zero-copy: the reply windows the
    /// file's shared bytes. Advances the handle's sequential position to
    /// `offset + len`.
    pub fn read(&mut self, cred: &FsCreds, fh: u64, offset: u64, size: u32) -> OpResult<ReadReply> {
        self.count();
        let (ino, flags) = match self.handles.get(&fh) {
            Some(Handle::File { ino, flags, .. }) => (*ino, *flags),
            Some(Handle::Dir { .. }) => return Err(Errno::EISDIR),
            None => return Err(Errno::EBADF),
        };
        if !flags.readable() {
            return Err(Errno::EBADF);
        }
        let bytes = self.backend.read(cred, ino)?;
        let reply = ReadReply::new(bytes, offset, size);
        let end = offset + reply.len() as u64;
        if let Some(Handle::File { offset, .. }) = self.handles.get_mut(&fh) {
            *offset = end;
        }
        Ok(reply)
    }

    /// Sequential `read`: continues from the handle's current position.
    pub fn read_next(&mut self, cred: &FsCreds, fh: u64, size: u32) -> OpResult<ReadReply> {
        let offset = match self.handles.get(&fh) {
            Some(Handle::File { offset, .. }) => *offset,
            Some(Handle::Dir { .. }) => return Err(Errno::EISDIR),
            None => return Err(Errno::EBADF),
        };
        self.read(cred, fh, offset, size)
    }

    /// `write` at an explicit offset through an open handle.
    pub fn write(
        &mut self,
        cred: &FsCreds,
        fh: u64,
        offset: u64,
        data: &[u8],
    ) -> OpResult<Written> {
        self.count();
        let (ino, flags) = match self.handles.get(&fh) {
            Some(Handle::File { ino, flags, .. }) => (*ino, *flags),
            Some(Handle::Dir { .. }) => return Err(Errno::EISDIR),
            None => return Err(Errno::EBADF),
        };
        if !flags.writable() {
            return Err(Errno::EBADF);
        }
        let size = self.backend.write(cred, ino, offset, data)?;
        let end = offset + size as u64;
        if let Some(Handle::File { offset, .. }) = self.handles.get_mut(&fh) {
            *offset = end;
        }
        Ok(Written { size })
    }

    /// `release`: closes a file handle.
    pub fn release(&mut self, fh: u64) -> OpResult<()> {
        self.count();
        match self.handles.remove(&fh) {
            Some(Handle::File { .. }) => Ok(()),
            Some(dir @ Handle::Dir { .. }) => {
                // Wrong release flavor: put it back, report EBADF.
                self.handles.insert(fh, dir);
                Err(Errno::EBADF)
            }
            None => Err(Errno::EBADF),
        }
    }

    /// `opendir`: snapshots the directory's entries into a cursor handle.
    pub fn opendir(&mut self, cred: &FsCreds, ino: Ino) -> OpResult<Opened> {
        self.count();
        let entries = self.backend.readdir(cred, ino)?;
        let fh = self.alloc_fh(Handle::Dir { ino, entries });
        Ok(Opened {
            fh,
            flags: OpenFlags::RDONLY,
        })
    }

    /// `readdir`: up to `max` entries starting at cursor `offset`. An empty
    /// reply means end of stream.
    pub fn readdir(
        &self,
        _cred: &FsCreds,
        fh: u64,
        offset: usize,
        max: usize,
    ) -> OpResult<Vec<DirEntry>> {
        self.count();
        match self.handles.get(&fh) {
            Some(Handle::Dir { entries, .. }) => {
                let start = offset.min(entries.len());
                let end = start.saturating_add(max).min(entries.len());
                Ok(entries[start..end].to_vec())
            }
            Some(Handle::File { .. }) => Err(Errno::ENOTDIR),
            None => Err(Errno::EBADF),
        }
    }

    /// `releasedir`: closes a directory handle.
    pub fn releasedir(&mut self, fh: u64) -> OpResult<()> {
        self.count();
        match self.handles.remove(&fh) {
            Some(Handle::Dir { .. }) => Ok(()),
            Some(file @ Handle::File { .. }) => {
                self.handles.insert(fh, file);
                Err(Errno::EBADF)
            }
            None => Err(Errno::EBADF),
        }
    }

    /// `mkdir`.
    pub fn mkdir(
        &mut self,
        cred: &FsCreds,
        parent: Ino,
        name: &str,
        mode: Mode,
    ) -> OpResult<Entry> {
        self.count();
        self.backend.mkdir(cred, parent, name, mode)
    }

    /// `unlink`.
    pub fn unlink(&mut self, cred: &FsCreds, parent: Ino, name: &str) -> OpResult<()> {
        self.count();
        self.backend.unlink(cred, parent, name)
    }

    /// `rmdir`.
    pub fn rmdir(&mut self, cred: &FsCreds, parent: Ino, name: &str) -> OpResult<()> {
        self.count();
        self.backend.rmdir(cred, parent, name)
    }

    /// `rename`.
    pub fn rename(
        &mut self,
        cred: &FsCreds,
        parent: Ino,
        name: &str,
        new_parent: Ino,
        new_name: &str,
    ) -> OpResult<()> {
        self.count();
        self.backend
            .rename(cred, parent, name, new_parent, new_name)
    }

    /// `symlink`.
    pub fn symlink(
        &mut self,
        cred: &FsCreds,
        parent: Ino,
        name: &str,
        target: &str,
    ) -> OpResult<Entry> {
        self.count();
        self.backend.symlink(cred, parent, name, target)
    }

    /// `statfs`.
    pub fn statfs(&self, cred: &FsCreds) -> OpResult<StatfsReply> {
        self.count();
        self.backend.statfs(cred)
    }

    /// `getxattr`.
    pub fn getxattr(&self, cred: &FsCreds, ino: Ino, name: &str) -> OpResult<Vec<u8>> {
        self.count();
        self.backend.getxattr(cred, ino, name)
    }

    /// `setxattr`.
    pub fn setxattr(&mut self, cred: &FsCreds, ino: Ino, name: &str, value: &[u8]) -> OpResult<()> {
        self.count();
        self.backend.setxattr(cred, ino, name, value)
    }

    /// `listxattr`.
    pub fn listxattr(&self, cred: &FsCreds, ino: Ino) -> OpResult<Vec<String>> {
        self.count();
        self.backend.listxattr(cred, ino)
    }

    /// Allocates a file-handle id. Wraparound-safe: after `u64::MAX` opens
    /// the counter wraps (skipping 0, which clients may treat as "no
    /// handle"), and any id still held by an open handle is skipped — a
    /// long-lived handle can never be aliased by a later open.
    fn alloc_fh(&mut self, handle: Handle) -> u64 {
        loop {
            let fh = self.next_fh;
            self.next_fh = match self.next_fh.wrapping_add(1) {
                0 => 1,
                n => n,
            };
            if fh != 0 && !self.handles.contains_key(&fh) {
                self.handles.insert(fh, handle);
                return fh;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Dispatch;
    use crate::memfs::MemFs;
    use crate::op::{Operation, Reply, Request};
    use hpcc_kernel::{Gid, Uid, UserNamespace};
    use hpcc_vfs::Filesystem;

    fn session() -> Session<MemFs> {
        let mut fs = Filesystem::new_local();
        fs.install_file(
            "/etc/hostname",
            b"astra".to_vec(),
            Uid(0),
            Gid(0),
            Mode::FILE_644,
        )
        .unwrap();
        fs.install_file(
            "/etc/secret",
            b"k".to_vec(),
            Uid(0),
            Gid(0),
            hpcc_vfs::Mode::new(0o600),
        )
        .unwrap();
        fs.install_symlink("/etc/alias", "hostname", Uid(0), Gid(0))
            .unwrap();
        Session::new(MemFs::new(fs, UserNamespace::initial()))
    }

    #[test]
    fn lookup_open_read_release_round_trip() {
        let mut s = session();
        let root = FsCreds::root();
        let etc = s.lookup(&root, s.root_ino(), "etc").unwrap();
        let host = s.lookup(&root, etc.ino, "hostname").unwrap();
        assert_eq!(host.attr.size, 5);
        let opened = s.open(&root, host.ino, OpenFlags::RDONLY).unwrap();
        let data = s.read(&root, opened.fh, 0, 64).unwrap();
        assert_eq!(data.as_slice(), b"astra");
        // Zero copy: the reply shares the backing buffer.
        let direct = s.backend().read(&root, host.ino).unwrap();
        assert!(data.bytes().shares_buffer_with(&direct));
        assert_eq!(s.open_handles(), 1);
        s.release(opened.fh).unwrap();
        assert_eq!(s.open_handles(), 0);
        assert_eq!(s.release(opened.fh).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn sequential_reads_advance_the_handle_offset() {
        let mut s = session();
        let root = FsCreds::root();
        let host = s.resolve_path(&root, "/etc/hostname", true).unwrap();
        let fh = s.open(&root, host.ino, OpenFlags::RDONLY).unwrap().fh;
        assert_eq!(s.read_next(&root, fh, 2).unwrap().as_slice(), b"as");
        assert_eq!(s.read_next(&root, fh, 2).unwrap().as_slice(), b"tr");
        assert_eq!(s.read_next(&root, fh, 2).unwrap().as_slice(), b"a");
        assert!(s.read_next(&root, fh, 2).unwrap().is_empty());
    }

    #[test]
    fn permissions_checked_at_open_with_request_credentials() {
        let mut s = session();
        let alice = FsCreds::new(Uid(1000), Gid(1000), vec![Gid(1000)]);
        let secret = s
            .resolve_path(&FsCreds::root(), "/etc/secret", true)
            .unwrap();
        assert_eq!(
            s.open(&alice, secret.ino, OpenFlags::RDONLY).unwrap_err(),
            Errno::EACCES
        );
        // Root (namespace-root in the initial namespace) may open it.
        assert!(s
            .open(&FsCreds::root(), secret.ino, OpenFlags::RDONLY)
            .is_ok());
    }

    #[test]
    fn resolve_path_follows_symlinks_through_ops() {
        let s = session();
        let root = FsCreds::root();
        let direct = s.resolve_path(&root, "/etc/hostname", true).unwrap();
        let via_link = s.resolve_path(&root, "/etc/alias", true).unwrap();
        assert_eq!(direct.ino, via_link.ino);
        let no_follow = s.resolve_path(&root, "/etc/alias", false).unwrap();
        assert_eq!(no_follow.attr.file_type, FileType::Symlink);
        assert_eq!(s.readlink(&root, no_follow.ino).unwrap(), "hostname");
    }

    #[test]
    fn readdir_cursor_pages_and_survives_mutation() {
        let mut s = session();
        let root = FsCreds::root();
        let etc = s.resolve_path(&root, "/etc", true).unwrap();
        let dh = s.opendir(&root, etc.ino).unwrap();
        let page1 = s.readdir(&root, dh.fh, 0, 2).unwrap();
        assert_eq!(page1.len(), 2);
        // Mutating the directory does not disturb the open cursor.
        s.unlink(&root, etc.ino, "secret").unwrap();
        let page2 = s.readdir(&root, dh.fh, 2, 10).unwrap();
        let mut names: Vec<String> = page1.into_iter().chain(page2).map(|e| e.name).collect();
        names.sort();
        assert_eq!(names, ["alias", "hostname", "secret"]);
        s.releasedir(dh.fh).unwrap();
        assert_eq!(s.open_handles(), 0);
    }

    #[test]
    fn readdir_with_unbounded_max_and_nonzero_offset() {
        let mut s = session();
        let root = FsCreds::root();
        let etc = s.resolve_path(&root, "/etc", true).unwrap();
        let dh = s.opendir(&root, etc.ino).unwrap();
        // "everything after the first entry" with max = usize::MAX must not
        // overflow.
        let rest = s.readdir(&root, dh.fh, 1, usize::MAX).unwrap();
        assert_eq!(rest.len(), 2);
        // Past-the-end cursor is an empty page, not an error.
        assert!(s.readdir(&root, dh.fh, 64, usize::MAX).unwrap().is_empty());
        s.releasedir(dh.fh).unwrap();
    }

    #[test]
    fn write_through_handle_then_read_back() {
        let mut s = session();
        let root = FsCreds::root();
        let etc = s.resolve_path(&root, "/etc", true).unwrap();
        let (entry, opened) = s
            .create(&root, etc.ino, "new.conf", Mode::FILE_644, OpenFlags::RDWR)
            .unwrap();
        assert_eq!(s.write(&root, opened.fh, 0, b"abc").unwrap().size, 3);
        assert_eq!(s.write(&root, opened.fh, 3, b"def").unwrap().size, 3);
        let back = s.read(&root, opened.fh, 0, 16).unwrap();
        assert_eq!(back.as_slice(), b"abcdef");
        s.release(opened.fh).unwrap();
        // O_TRUNC on reopen.
        let t = s
            .open(&root, entry.ino, OpenFlags::WRONLY | OpenFlags::TRUNC)
            .unwrap();
        s.release(t.fh).unwrap();
        assert_eq!(s.getattr(&root, entry.ino).unwrap().size, 0);
    }

    #[test]
    fn wrong_handle_kinds_are_ebadf_family() {
        let mut s = session();
        let root = FsCreds::root();
        let etc = s.resolve_path(&root, "/etc", true).unwrap();
        let host = s.resolve_path(&root, "/etc/hostname", true).unwrap();
        let dh = s.opendir(&root, etc.ino).unwrap();
        let fhh = s.open(&root, host.ino, OpenFlags::RDONLY).unwrap();
        assert_eq!(s.read(&root, dh.fh, 0, 1).unwrap_err(), Errno::EISDIR);
        assert_eq!(s.readdir(&root, fhh.fh, 0, 1).unwrap_err(), Errno::ENOTDIR);
        assert_eq!(s.release(dh.fh).unwrap_err(), Errno::EBADF);
        assert_eq!(s.releasedir(fhh.fh).unwrap_err(), Errno::EBADF);
        // The failed cross-releases did not leak or drop the handles.
        assert_eq!(s.open_handles(), 2);
        s.releasedir(dh.fh).unwrap();
        s.release(fhh.fh).unwrap();
        // A write through a read-only handle is EBADF.
        let ro = s.open(&root, host.ino, OpenFlags::RDONLY).unwrap();
        assert_eq!(s.write(&root, ro.fh, 0, b"x").unwrap_err(), Errno::EBADF);
        s.release(ro.fh).unwrap();
    }

    #[test]
    fn queue_dispatch_matches_typed_calls() {
        let mut s = session();
        let root = FsCreds::root();
        let replies = s.handle_all([
            Request::new(
                root.clone(),
                Operation::Lookup {
                    parent: s.root_ino(),
                    name: "etc".into(),
                },
            ),
            Request::new(root.clone(), Operation::Statfs),
            Request::new(
                root.clone(),
                Operation::Lookup {
                    parent: s.root_ino(),
                    name: "missing".into(),
                },
            ),
        ]);
        assert!(matches!(replies[0], Reply::Entry(_)));
        assert!(matches!(replies[1], Reply::Statfs(_)));
        assert_eq!(replies[2].err(), Some(Errno::ENOENT));
        // Full open/read/release through the queue.
        let etc = match &replies[0] {
            Reply::Entry(e) => e.ino,
            _ => unreachable!(),
        };
        let host = s.lookup(&root, etc, "hostname").unwrap();
        let opened = match s.handle(Request::new(
            root.clone(),
            Operation::Open {
                ino: host.ino,
                flags: OpenFlags::RDONLY,
            },
        )) {
            Reply::Opened(o) => o,
            other => panic!("{:?}", other),
        };
        match s.handle(Request::new(
            root.clone(),
            Operation::Read {
                fh: opened.fh,
                offset: 0,
                size: 32,
            },
        )) {
            Reply::Data(d) => assert_eq!(d.as_slice(), b"astra"),
            other => panic!("{:?}", other),
        }
        assert_eq!(
            s.handle(Request::new(root, Operation::Release { fh: opened.fh })),
            Reply::Unit
        );
        assert_eq!(s.open_handles(), 0);
    }

    #[test]
    fn fh_allocation_survives_wraparound_without_aliasing() {
        let mut s = session();
        let root = FsCreds::root();
        let host = s.resolve_path(&root, "/etc/hostname", true).unwrap();
        // A long-lived handle opened near the end of the id space…
        s.next_fh = u64::MAX;
        let pinned = s.open(&root, host.ino, OpenFlags::RDONLY).unwrap().fh;
        assert_eq!(pinned, u64::MAX);
        // …must survive the counter wrapping: later opens skip 0 and every
        // still-open id, and open/release cycles never hand out a live id.
        let mut seen = vec![pinned];
        for _ in 0..4 {
            let fh = s.open(&root, host.ino, OpenFlags::RDONLY).unwrap().fh;
            assert_ne!(fh, 0, "fh 0 must never be handed out");
            assert!(!seen.contains(&fh), "live fh {fh} aliased");
            seen.push(fh);
            // Read through the pinned handle still works (it was not stolen).
            assert_eq!(s.read(&root, pinned, 0, 5).unwrap().as_slice(), b"astra");
            s.release(fh).unwrap();
        }
        // Forcing the counter back over a live id skips it.
        s.next_fh = u64::MAX;
        let next = s.open(&root, host.ino, OpenFlags::RDONLY).unwrap().fh;
        assert_ne!(next, pinned);
        s.release(next).unwrap();
        s.release(pinned).unwrap();
        assert_eq!(s.open_handles(), 0);
    }
}
