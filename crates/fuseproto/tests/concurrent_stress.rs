//! Concurrency-correctness stress suite for [`SharedImage`] serving.
//!
//! The load-bearing property: N threads hammering one shared image with
//! randomized read-only op sequences observe **bit-identical** results to a
//! serial replay of the same sequences — concurrency must be unobservable.
//! Each client folds every op result (inode numbers, errno codes, bytes,
//! directory listings) into a running digest; the digests are compared
//! across runs, and every client must end with zero leaked handles.
//!
//! Run in release for real contention: the CI `cargo test --release` leg
//! executes this file with optimizations.

use hpcc_fuseproto::{Errno, FsCreds, OpenFlags, ReaderSession, SharedImage};
use hpcc_kernel::{Gid, Uid, UserNamespace};
use hpcc_vfs::{Filesystem, Mode};

const THREADS: usize = 8;
const OPS_PER_CLIENT: usize = 4000;

/// A small deterministic PRNG (xorshift64*) — no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[(self.next() % pool.len() as u64) as usize]
    }
}

/// An image with enough shape to exercise every read path: nested dirs,
/// files of varying size, symlinks (absolute and relative), a
/// permission-restricted subtree, and xattrs.
fn build_image() -> SharedImage {
    let mut fs = Filesystem::new_local();
    for d in 0..8 {
        for f in 0..8 {
            let path = format!("/data/dir{d}/file{f}");
            let content = vec![(d * 16 + f) as u8; 64 + d * 256 + f * 17];
            fs.install_file(&path, content, Uid(0), Gid(0), Mode::FILE_644)
                .unwrap();
        }
    }
    fs.install_file(
        "/etc/hostname",
        b"astra".to_vec(),
        Uid(0),
        Gid(0),
        Mode::FILE_644,
    )
    .unwrap();
    fs.install_file(
        "/secret/key",
        b"k".to_vec(),
        Uid(0),
        Gid(0),
        Mode::new(0o600),
    )
    .unwrap();
    // Tighten /secret itself so unprivileged walks fail at the parent.
    fs.install_dir("/secret", Uid(0), Gid(0), Mode::new(0o700))
        .unwrap();
    fs.install_symlink("/data/latest", "/data/dir7", Uid(0), Gid(0))
        .unwrap();
    fs.install_symlink("/etc/alias", "hostname", Uid(0), Gid(0))
        .unwrap();
    SharedImage::new(fs, UserNamespace::initial())
}

const PATHS: &[&str] = &[
    "/",
    "/data",
    "/data/dir0",
    "/data/dir0/file0",
    "/data/dir3/file5",
    "/data/dir7/file7",
    "/data/latest",
    "/data/latest/file2",
    "/etc",
    "/etc/hostname",
    "/etc/alias",
    "/secret",
    "/secret/key",
    "/missing",
    "/data/dir1/missing",
];

fn mix(digest: &mut u64, value: u64) {
    *digest = digest
        .rotate_left(5)
        .wrapping_mul(0x100000001B3)
        .wrapping_add(value ^ 0x9E3779B97F4A7C15);
}

fn mix_err(digest: &mut u64, e: Errno) {
    mix(digest, 0xE000 + e.code() as u64);
}

fn mix_bytes(digest: &mut u64, bytes: &[u8]) {
    mix(digest, bytes.len() as u64);
    let sum: u64 = bytes.iter().map(|&b| b as u64).sum();
    mix(digest, sum);
}

/// Runs one client's deterministic op sequence against `reader`, returning
/// the result digest. Opens are tracked and always released before
/// returning, so a correct implementation ends with zero handles.
fn run_client(reader: &ReaderSession, seed: u64) -> u64 {
    let mut rng = Rng::new(seed);
    let mut digest = 0u64;
    let mut open_files: Vec<u64> = Vec::new();
    let mut open_dirs: Vec<u64> = Vec::new();
    for _ in 0..OPS_PER_CLIENT {
        match rng.next() % 10 {
            // Path resolution (stat and lstat flavors).
            0 | 1 => {
                let path = rng.pick(PATHS);
                let follow = rng.next().is_multiple_of(2);
                match reader.resolve_path(path, follow) {
                    Ok(e) => {
                        mix(&mut digest, e.ino);
                        mix(&mut digest, e.attr.size);
                        mix(&mut digest, e.attr.mode.bits() as u64);
                    }
                    Err(e) => mix_err(&mut digest, e),
                }
            }
            // Full lookup → open → read → release cycle.
            2..=4 => {
                let path = rng.pick(PATHS);
                match reader.resolve_path(path, true) {
                    Ok(entry) => match reader.open(entry.ino, OpenFlags::RDONLY) {
                        Ok(o) => {
                            let offset = rng.next() % 128;
                            let size = (rng.next() % 4096) as u32;
                            match reader.read(o.fh, offset, size) {
                                Ok(data) => mix_bytes(&mut digest, data.as_slice()),
                                Err(e) => mix_err(&mut digest, e),
                            }
                            open_files.push(o.fh);
                        }
                        Err(e) => mix_err(&mut digest, e),
                    },
                    Err(e) => mix_err(&mut digest, e),
                }
            }
            // Directory listing through a cursor.
            5 => {
                let path = rng.pick(PATHS);
                match reader.resolve_path(path, true) {
                    Ok(entry) => match reader.opendir(entry.ino) {
                        Ok(o) => {
                            match reader.readdir(o.fh, 0, usize::MAX) {
                                Ok(entries) => {
                                    mix(&mut digest, entries.len() as u64);
                                    for e in entries {
                                        mix_bytes(&mut digest, e.name.as_bytes());
                                        mix(&mut digest, e.ino);
                                    }
                                }
                                Err(e) => mix_err(&mut digest, e),
                            }
                            open_dirs.push(o.fh);
                        }
                        Err(e) => mix_err(&mut digest, e),
                    },
                    Err(e) => mix_err(&mut digest, e),
                }
            }
            // Attributes and links.
            6 => {
                let path = rng.pick(PATHS);
                match reader.resolve_path(path, false) {
                    Ok(entry) => {
                        match reader.getattr(entry.ino) {
                            Ok(a) => mix(&mut digest, a.ino ^ a.size),
                            Err(e) => mix_err(&mut digest, e),
                        }
                        match reader.readlink(entry.ino) {
                            Ok(t) => mix_bytes(&mut digest, t.as_bytes()),
                            Err(e) => mix_err(&mut digest, e),
                        }
                    }
                    Err(e) => mix_err(&mut digest, e),
                }
            }
            // Sequential reads interleave with positioned reads.
            7 => {
                if let Some(&fh) = open_files.last() {
                    match reader.read_next(fh, 64) {
                        Ok(data) => mix_bytes(&mut digest, data.as_slice()),
                        Err(e) => mix_err(&mut digest, e),
                    }
                }
            }
            // Early release of a random open handle.
            8 => {
                if !open_files.is_empty() {
                    let idx = (rng.next() % open_files.len() as u64) as usize;
                    let fh = open_files.swap_remove(idx);
                    mix(&mut digest, reader.release(fh).is_ok() as u64);
                }
            }
            // Mutation attempts must uniformly fail EROFS.
            _ => {
                let root = reader.root_ino();
                mix_err(
                    &mut digest,
                    reader.mkdir(root, "x", Mode::DIR_755).unwrap_err(),
                );
                mix_err(&mut digest, reader.unlink(root, "etc").unwrap_err());
                mix_err(
                    &mut digest,
                    reader.create(root, "y", Mode::FILE_644).unwrap_err(),
                );
            }
        }
    }
    for fh in open_files {
        reader.release(fh).unwrap();
    }
    for fh in open_dirs {
        reader.releasedir(fh).unwrap();
    }
    digest
}

fn client_creds(i: usize) -> FsCreds {
    if i.is_multiple_of(2) {
        FsCreds::root()
    } else {
        // Unprivileged: exercises the denied /secret subtree.
        FsCreds::new(Uid(1000 + i as u32), Gid(1000), vec![Gid(1000)])
    }
}

/// N concurrent clients vs. the same sequences replayed serially: digests
/// must be bit-identical, and no client may leak a handle.
#[test]
fn concurrent_run_is_bit_identical_to_serial_replay() {
    let image = build_image();

    // Serial ground truth: same seeds, same credentials, one at a time.
    let serial: Vec<u64> = (0..THREADS)
        .map(|i| {
            let reader = image.reader(client_creds(i));
            let digest = run_client(&reader, 0xC0FFEE + i as u64);
            assert_eq!(reader.open_handles(), 0, "serial client {i} leaked");
            digest
        })
        .collect();

    // Concurrent run.
    let concurrent: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let reader = image.reader(client_creds(i));
                s.spawn(move || {
                    let digest = run_client(&reader, 0xC0FFEE + i as u64);
                    let leaked = reader.open_handles();
                    (digest, leaked)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                let (digest, leaked) = h.join().unwrap();
                assert_eq!(leaked, 0, "concurrent client {i} leaked handles");
                digest
            })
            .collect()
    });

    assert_eq!(
        serial, concurrent,
        "concurrent execution diverged from serial replay"
    );
}

/// One `ReaderSession` driven from many threads at once (`&self` ops): the
/// sharded handle table must keep every thread's handles isolated.
#[test]
fn one_session_shared_across_threads_keeps_handles_isolated() {
    let image = build_image();
    let reader = image.reader(FsCreds::root());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reader = &reader;
            s.spawn(move || {
                let mut rng = Rng::new(0xDEAD + t as u64);
                for _ in 0..1000 {
                    let d = rng.next() % 8;
                    let f = rng.next() % 8;
                    let path = format!("/data/dir{d}/file{f}");
                    let entry = reader.resolve_path(&path, true).unwrap();
                    let o = reader.open(entry.ino, OpenFlags::RDONLY).unwrap();
                    let data = reader.read(o.fh, 0, u32::MAX).unwrap();
                    // Contents must be exactly this file's — a crossed
                    // handle would return another thread's bytes.
                    let expected_len = 64 + (d as usize) * 256 + (f as usize) * 17;
                    assert_eq!(data.len(), expected_len, "{path}");
                    assert!(data.as_slice().iter().all(|&b| b == (d * 16 + f) as u8));
                    reader.release(o.fh).unwrap();
                }
            });
        }
    });
    assert_eq!(reader.open_handles(), 0);
    // 8 threads × 1000 iterations × 4 counted ops each (resolve, open,
    // read, release) — the atomic counter must not lose updates.
    assert_eq!(reader.ops_dispatched(), (THREADS * 1000 * 4) as u64);
}
