//! An OCI distribution registry: repositories, tags, manifests, indexes, and
//! blob storage with token-based access control.
//!
//! This is the "OCI-compliant container registry" of the Astra workflow
//! (paper Figure 6, the GitLab Container Registry Service): the login node
//! pushes the freshly built image here, and compute nodes pull it for
//! distributed launch. The paper notes that a registry "provides persistence
//! to container images which could help in portability, debugging with old
//! versions, or general future reproducibility" — hence tag history and
//! digest-addressed pulls are both supported.

use std::collections::{BTreeMap, HashMap};

use hpcc_image::{sha256, Image, ImageConfig, Layer, OwnershipMode};

use crate::blobstore::BlobStore;
use crate::error::ApiError;
use crate::flatten::{FlattenPolicy, FLATTEN_ANNOTATION};
use crate::manifest::{ImageIndex, OciManifest};
use crate::media::{Descriptor, MediaType, Platform};

/// Per-repository access rules: who may push. Pulls are open to any
/// authenticated user (HPC centres typically gate the registry itself, not
/// individual repositories, but production pushes come from CI users only).
#[derive(Debug, Clone, Default)]
struct Repository {
    /// Tag → manifest-or-index digest.
    tags: BTreeMap<String, hpcc_image::Digest>,
    /// Digest → manifest.
    manifests: HashMap<hpcc_image::Digest, OciManifest>,
    /// Tag → multi-arch index (kept per tag because entries accrete as each
    /// architecture's CI job pushes).
    indexes: BTreeMap<String, ImageIndex>,
    /// Users allowed to push; empty means any authenticated user.
    pushers: Vec<String>,
    /// Flatten policy enforced at push time for this repository.
    flatten_policy: FlattenPolicy,
}

/// A distribution registry instance.
#[derive(Debug, Clone)]
pub struct DistributionRegistry {
    host: String,
    repos: BTreeMap<String, Repository>,
    blobs: BlobStore,
    /// Users known to the registry (token holders).
    users: Vec<String>,
    push_count: u64,
    pull_count: u64,
}

/// What a pull returns: the selected manifest plus a reconstructed [`Image`].
#[derive(Debug, Clone)]
pub struct PulledImage {
    /// The manifest that was selected (by tag + platform, or by digest).
    pub manifest: OciManifest,
    /// The reconstructed image with layer bytes fetched from the blob store.
    pub image: Image,
}

impl DistributionRegistry {
    /// Creates a registry with a set of known (token-holding) users.
    pub fn new(host: &str, users: &[&str]) -> Self {
        DistributionRegistry {
            host: host.to_string(),
            repos: BTreeMap::new(),
            blobs: BlobStore::new(),
            users: users.iter().map(|s| s.to_string()).collect(),
            push_count: 0,
            pull_count: 0,
        }
    }

    /// Registry host name (e.g. `registry.example.gov`).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Declares a repository, optionally restricting pushers and setting the
    /// §6.2.5 flatten policy. Repositories are also auto-created on first
    /// push by any authorized user with the default (allow) policy.
    pub fn create_repository(
        &mut self,
        name: &str,
        pushers: &[&str],
        flatten_policy: FlattenPolicy,
    ) {
        let repo = self.repos.entry(name.to_string()).or_default();
        repo.pushers = pushers.iter().map(|s| s.to_string()).collect();
        repo.flatten_policy = flatten_policy;
    }

    /// Repository names, sorted.
    pub fn repositories(&self) -> Vec<String> {
        self.repos.keys().cloned().collect()
    }

    /// Tags of a repository, sorted.
    pub fn tags(&self, repo: &str) -> Result<Vec<String>, ApiError> {
        let r = self.repos.get(repo).ok_or(ApiError::NameUnknown)?;
        Ok(r.tags.keys().cloned().collect())
    }

    /// Blob-store statistics (dedup savings etc.).
    pub fn blob_stats(&self) -> &BlobStore {
        &self.blobs
    }

    /// Total pushes accepted.
    pub fn push_count(&self) -> u64 {
        self.push_count
    }

    /// Total pulls served.
    pub fn pull_count(&self) -> u64 {
        self.pull_count
    }

    fn authenticate(&self, user: &str) -> Result<(), ApiError> {
        if self.users.iter().any(|u| u == user) {
            Ok(())
        } else {
            Err(ApiError::Unauthorized)
        }
    }

    fn authorize_push(&self, repo: &str, user: &str) -> Result<(), ApiError> {
        self.authenticate(user)?;
        if let Some(r) = self.repos.get(repo) {
            if !r.pushers.is_empty() && !r.pushers.iter().any(|p| p == user) {
                return Err(ApiError::Denied);
            }
        }
        Ok(())
    }

    /// Pushes an [`Image`] for a platform under `repo:tag`.
    ///
    /// Layers are uploaded blob-by-blob with a `HEAD` check first (so layers
    /// already present — the common case during iterative development — are
    /// skipped), then the manifest is PUT and the tag's multi-arch index is
    /// updated. Returns the manifest digest.
    pub fn push_image(
        &mut self,
        user: &str,
        repo: &str,
        tag: &str,
        platform: Platform,
        image: &Image,
    ) -> Result<hpcc_image::Digest, ApiError> {
        self.authorize_push(repo, user)?;
        let policy = self
            .repos
            .get(repo)
            .map(|r| r.flatten_policy)
            .unwrap_or_default();
        policy.check(image.ownership)?;

        // Upload config blob.
        let config_bytes = image.config.canonical().into_bytes();
        let config_digest = sha256(&config_bytes);
        if !self.blobs.has(&config_digest) {
            self.blobs.put(&config_digest, config_bytes.clone())?;
        }
        // Upload layer blobs, skipping ones already present. `layer.tar` is
        // a shared handle, so an upload is a refcount bump, not a copy.
        let mut layer_descs = Vec::with_capacity(image.layers.len());
        for layer in &image.layers {
            if !self.blobs.has(&layer.digest) {
                self.blobs.put(&layer.digest, layer.tar.clone())?;
            }
            layer_descs.push(Descriptor::new(
                MediaType::LayerTar,
                layer.digest,
                layer.tar.len() as u64,
            ));
        }
        let manifest = OciManifest::new(
            Descriptor::new(
                MediaType::ImageConfig,
                config_digest,
                config_bytes.len() as u64,
            ),
            layer_descs,
        )
        .with_annotation(FLATTEN_ANNOTATION, policy.as_str())
        .with_annotation(
            "org.hpc.container.ownership.mode",
            match image.ownership {
                OwnershipMode::Preserved => "preserved",
                OwnershipMode::Flattened => "flattened",
            },
        );
        manifest.validate()?;
        let digest = manifest.digest();
        let manifest_size = manifest.render().len() as u64;

        let repo_entry = self.repos.entry(repo.to_string()).or_default();
        repo_entry.manifests.insert(digest, manifest);
        repo_entry.tags.insert(tag.to_string(), digest);
        repo_entry
            .indexes
            .entry(tag.to_string())
            .or_default()
            .upsert(digest, manifest_size, platform);
        self.push_count += 1;
        Ok(digest)
    }

    /// The multi-arch index for `repo:tag`.
    pub fn index(&self, repo: &str, tag: &str) -> Result<&ImageIndex, ApiError> {
        let r = self.repos.get(repo).ok_or(ApiError::NameUnknown)?;
        r.indexes.get(tag).ok_or(ApiError::ManifestUnknown)
    }

    /// Fetches a manifest by digest.
    pub fn manifest(
        &self,
        repo: &str,
        digest: &hpcc_image::Digest,
    ) -> Result<&OciManifest, ApiError> {
        let r = self.repos.get(repo).ok_or(ApiError::NameUnknown)?;
        r.manifests.get(digest).ok_or(ApiError::ManifestUnknown)
    }

    /// Pulls `repo:tag` for a platform: selects the right manifest from the
    /// index, fetches blobs, and reconstructs an [`Image`]. This is what a
    /// compute node does before distributed launch (Figure 6 step 3).
    pub fn pull_for_platform(
        &mut self,
        user: &str,
        repo: &str,
        tag: &str,
        want: &Platform,
    ) -> Result<PulledImage, ApiError> {
        self.authenticate(user)?;
        let (manifest, reference) = {
            let r = self.repos.get(repo).ok_or(ApiError::NameUnknown)?;
            let index = r.indexes.get(tag).ok_or(ApiError::ManifestUnknown)?;
            let desc = index.select(want)?;
            let manifest = r
                .manifests
                .get(&desc.digest)
                .ok_or(ApiError::ManifestUnknown)?
                .clone();
            (manifest, format!("{}/{}:{}", self.host, repo, tag))
        };
        let mut layers = Vec::with_capacity(manifest.layers.len());
        for desc in &manifest.layers {
            // Shares the stored buffer; the digest is already known, so the
            // blob is neither copied nor re-hashed.
            layers.push(Layer {
                digest: desc.digest,
                tar: self.blobs.get_shared(&desc.digest)?,
            });
        }
        let ownership = match manifest
            .annotations
            .get("org.hpc.container.ownership.mode")
            .map(String::as_str)
        {
            Some("preserved") => OwnershipMode::Preserved,
            _ => OwnershipMode::Flattened,
        };
        let config = ImageConfig {
            architecture: want.architecture.clone(),
            ..Default::default()
        };
        self.pull_count += 1;
        Ok(PulledImage {
            manifest,
            image: Image {
                reference,
                config,
                layers,
                ownership,
            },
        })
    }

    /// Deletes a tag and garbage-collects blobs no longer referenced by any
    /// manifest in any repository. Returns the number of blobs removed.
    pub fn delete_tag(&mut self, repo: &str, tag: &str) -> Result<usize, ApiError> {
        {
            let r = self.repos.get_mut(repo).ok_or(ApiError::NameUnknown)?;
            r.tags.remove(tag).ok_or(ApiError::ManifestUnknown)?;
            r.indexes.remove(tag);
            // Drop manifests no tag/index references any more.
            let referenced: Vec<hpcc_image::Digest> = r
                .indexes
                .values()
                .flat_map(|i| i.manifests.iter().map(|d| d.digest))
                .chain(r.tags.values().copied())
                .collect();
            r.manifests.retain(|d, _| referenced.contains(d));
        }
        let mut referenced = BTreeMap::new();
        for r in self.repos.values() {
            for m in r.manifests.values() {
                for d in m.referenced_blobs() {
                    referenced.insert(d, ());
                }
            }
        }
        Ok(self.blobs.gc(&referenced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_image::ImageConfig;

    fn test_image(arch: &str, payload: &[u8], ownership: OwnershipMode) -> Image {
        let config = ImageConfig {
            architecture: arch.to_string(),
            ..Default::default()
        };
        Image {
            reference: "local/atse:dev".to_string(),
            config,
            layers: vec![Layer::from_tar(payload.to_vec())],
            ownership,
        }
    }

    fn registry() -> DistributionRegistry {
        DistributionRegistry::new("registry.example.gov", &["alice", "bob", "ci-runner"])
    }

    #[test]
    fn push_then_pull_round_trips_layers() {
        let mut reg = registry();
        let img = test_image("arm64", b"aarch64 ATSE layer", OwnershipMode::Flattened);
        let digest = reg
            .push_image("alice", "atse/app", "1.0", Platform::linux_arm64(), &img)
            .unwrap();
        let pulled = reg
            .pull_for_platform("bob", "atse/app", "1.0", &Platform::linux_arm64())
            .unwrap();
        assert_eq!(pulled.manifest.digest(), digest);
        assert_eq!(pulled.image.layers[0].tar, b"aarch64 ATSE layer");
        assert_eq!(reg.pull_count(), 1);
    }

    #[test]
    fn unauthenticated_user_is_rejected() {
        let mut reg = registry();
        let img = test_image("amd64", b"x", OwnershipMode::Flattened);
        assert_eq!(
            reg.push_image("mallory", "atse/app", "1.0", Platform::linux_amd64(), &img)
                .unwrap_err(),
            ApiError::Unauthorized
        );
    }

    #[test]
    fn push_restricted_repository_denies_non_pushers() {
        let mut reg = registry();
        reg.create_repository("atse/prod", &["ci-runner"], FlattenPolicy::Allow);
        let img = test_image("amd64", b"x", OwnershipMode::Flattened);
        assert_eq!(
            reg.push_image("alice", "atse/prod", "1.0", Platform::linux_amd64(), &img)
                .unwrap_err(),
            ApiError::Denied
        );
        reg.push_image(
            "ci-runner",
            "atse/prod",
            "1.0",
            Platform::linux_amd64(),
            &img,
        )
        .unwrap();
    }

    #[test]
    fn multi_arch_index_accretes_and_selects() {
        let mut reg = registry();
        let amd = test_image("amd64", b"amd64 build", OwnershipMode::Flattened);
        let arm = test_image("arm64", b"arm64 build", OwnershipMode::Flattened);
        reg.push_image(
            "ci-runner",
            "atse/app",
            "2.0",
            Platform::linux_amd64(),
            &amd,
        )
        .unwrap();
        // Before the aarch64 CI job runs, Astra cannot pull — the Figure 6
        // motivation, surfaced as MANIFEST_UNKNOWN.
        assert_eq!(
            reg.pull_for_platform("alice", "atse/app", "2.0", &Platform::linux_arm64())
                .unwrap_err(),
            ApiError::ManifestUnknown
        );
        reg.push_image(
            "ci-runner",
            "atse/app",
            "2.0",
            Platform::linux_arm64(),
            &arm,
        )
        .unwrap();
        assert_eq!(reg.index("atse/app", "2.0").unwrap().len(), 2);
        let pulled = reg
            .pull_for_platform("alice", "atse/app", "2.0", &Platform::linux_arm64())
            .unwrap();
        assert_eq!(pulled.image.layers[0].tar, b"arm64 build");
    }

    #[test]
    fn flatten_policy_is_enforced_at_push() {
        let mut reg = registry();
        reg.create_repository("secure/app", &[], FlattenPolicy::Require);
        let preserved = test_image("amd64", b"multi-uid", OwnershipMode::Preserved);
        assert_eq!(
            reg.push_image(
                "alice",
                "secure/app",
                "1.0",
                Platform::linux_amd64(),
                &preserved
            )
            .unwrap_err(),
            ApiError::Unsupported
        );
        let flattened = test_image("amd64", b"flat", OwnershipMode::Flattened);
        reg.push_image(
            "alice",
            "secure/app",
            "1.0",
            Platform::linux_amd64(),
            &flattened,
        )
        .unwrap();
    }

    #[test]
    fn repeated_pushes_of_same_layer_are_deduplicated() {
        let mut reg = registry();
        let img = test_image("amd64", b"shared base layer", OwnershipMode::Flattened);
        reg.push_image("alice", "a/one", "1", Platform::linux_amd64(), &img)
            .unwrap();
        reg.push_image("alice", "a/two", "1", Platform::linux_amd64(), &img)
            .unwrap();
        // One layer blob + one config blob, not two of each.
        assert_eq!(reg.blob_stats().len(), 2);
        assert_eq!(reg.push_count(), 2);
    }

    #[test]
    fn delete_tag_garbage_collects_unreferenced_blobs() {
        let mut reg = registry();
        let img = test_image("amd64", b"short-lived", OwnershipMode::Flattened);
        reg.push_image("alice", "scratch/tmp", "dev", Platform::linux_amd64(), &img)
            .unwrap();
        assert!(reg.blob_stats().len() >= 2);
        let removed = reg.delete_tag("scratch/tmp", "dev").unwrap();
        assert!(removed >= 2);
        assert_eq!(reg.blob_stats().len(), 0);
        assert_eq!(
            reg.delete_tag("scratch/tmp", "dev").unwrap_err(),
            ApiError::ManifestUnknown
        );
    }

    #[test]
    fn tags_listing_and_unknown_repo() {
        let mut reg = registry();
        assert_eq!(reg.tags("nope").unwrap_err(), ApiError::NameUnknown);
        let img = test_image("amd64", b"x", OwnershipMode::Flattened);
        reg.push_image("alice", "atse/app", "1.0", Platform::linux_amd64(), &img)
            .unwrap();
        reg.push_image("alice", "atse/app", "1.1", Platform::linux_amd64(), &img)
            .unwrap();
        assert_eq!(reg.tags("atse/app").unwrap(), vec!["1.0", "1.1"]);
        assert_eq!(reg.repositories(), vec!["atse/app"]);
    }
}
