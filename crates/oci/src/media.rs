//! OCI media types, descriptors, and platform records.
//!
//! Podman "adheres to the OCI spec for container compatibility and
//! interoperability" (paper §4); the registry in Figure 6's workflow speaks
//! this vocabulary. Only the subset the paper's workflows exercise is
//! modelled: image manifests, image indexes (needed for the x86-64 / aarch64
//! split that motivated building on Astra in the first place), config blobs,
//! and tar layer blobs.

use hpcc_image::Digest;

/// The OCI media types used by this model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaType {
    /// `application/vnd.oci.image.manifest.v1+json`
    ImageManifest,
    /// `application/vnd.oci.image.index.v1+json`
    ImageIndex,
    /// `application/vnd.oci.image.config.v1+json`
    ImageConfig,
    /// `application/vnd.oci.image.layer.v1.tar`
    LayerTar,
    /// `application/vnd.oci.image.layer.v1.tar+gzip` (we store tars
    /// uncompressed but keep the media type for fidelity of manifests that
    /// declare gzip).
    LayerTarGzip,
}

impl MediaType {
    /// The canonical media-type string.
    pub fn as_str(self) -> &'static str {
        match self {
            MediaType::ImageManifest => "application/vnd.oci.image.manifest.v1+json",
            MediaType::ImageIndex => "application/vnd.oci.image.index.v1+json",
            MediaType::ImageConfig => "application/vnd.oci.image.config.v1+json",
            MediaType::LayerTar => "application/vnd.oci.image.layer.v1.tar",
            MediaType::LayerTarGzip => "application/vnd.oci.image.layer.v1.tar+gzip",
        }
    }

    /// True for media types that may appear as manifest-list entries.
    pub fn is_manifest(self) -> bool {
        matches!(self, MediaType::ImageManifest | MediaType::ImageIndex)
    }
}

impl std::fmt::Display for MediaType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A platform record as used in an image index entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Platform {
    /// CPU architecture in OCI/GOARCH vocabulary (`amd64`, `arm64`, `ppc64le`).
    pub architecture: String,
    /// Operating system (`linux` for everything the paper touches).
    pub os: String,
    /// Optional variant (e.g. `v8` for arm64).
    pub variant: Option<String>,
}

impl Platform {
    /// x86-64 Linux — developer workstations and CI/CD clouds (paper §2).
    pub fn linux_amd64() -> Self {
        Platform {
            architecture: "amd64".to_string(),
            os: "linux".to_string(),
            variant: None,
        }
    }

    /// aarch64 Linux — the Astra supercomputer's Marvell ThunderX2 CPUs
    /// (paper §4.2).
    pub fn linux_arm64() -> Self {
        Platform {
            architecture: "arm64".to_string(),
            os: "linux".to_string(),
            variant: Some("v8".to_string()),
        }
    }

    /// ppc64le Linux — the other non-x86 CPU family the paper names (§2).
    pub fn linux_ppc64le() -> Self {
        Platform {
            architecture: "ppc64le".to_string(),
            os: "linux".to_string(),
            variant: None,
        }
    }

    /// Translates a `uname -m` style machine name into an OCI platform.
    pub fn from_uname(machine: &str) -> Option<Self> {
        match machine {
            "x86_64" | "amd64" => Some(Platform::linux_amd64()),
            "aarch64" | "arm64" => Some(Platform::linux_arm64()),
            "ppc64le" => Some(Platform::linux_ppc64le()),
            _ => None,
        }
    }

    /// True if an image built for `self` can execute on `other` (exact
    /// architecture match; variants are ignored because all arm64 HPC parts
    /// here are v8).
    pub fn runs_on(&self, other: &Platform) -> bool {
        self.architecture == other.architecture && self.os == other.os
    }

    /// Render as `os/arch[/variant]`, the form registries display.
    pub fn render(&self) -> String {
        match &self.variant {
            Some(v) => format!("{}/{}/{}", self.os, self.architecture, v),
            None => format!("{}/{}", self.os, self.architecture),
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A content descriptor: media type, digest, and size — the unit every OCI
/// document uses to reference every other document or blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Descriptor {
    /// What the referenced content is.
    pub media_type: MediaType,
    /// Content digest.
    pub digest: Digest,
    /// Size in bytes.
    pub size: u64,
    /// Platform, present only for index entries.
    pub platform: Option<Platform>,
}

impl Descriptor {
    /// Creates a descriptor without a platform.
    pub fn new(media_type: MediaType, digest: Digest, size: u64) -> Self {
        Descriptor {
            media_type,
            digest,
            size,
            platform: None,
        }
    }

    /// Attaches a platform (for index entries).
    pub fn with_platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Canonical one-line rendering used inside manifest documents.
    pub fn render(&self) -> String {
        match &self.platform {
            Some(p) => format!(
                "{{\"mediaType\":\"{}\",\"digest\":\"{}\",\"size\":{},\"platform\":\"{}\"}}",
                self.media_type, self.digest, self.size, p
            ),
            None => format!(
                "{{\"mediaType\":\"{}\",\"digest\":\"{}\",\"size\":{}}}",
                self.media_type, self.digest, self.size
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_image::sha256;

    #[test]
    fn media_type_strings_are_oci() {
        assert_eq!(
            MediaType::ImageManifest.as_str(),
            "application/vnd.oci.image.manifest.v1+json"
        );
        assert!(MediaType::ImageIndex.is_manifest());
        assert!(!MediaType::LayerTar.is_manifest());
    }

    #[test]
    fn platform_compatibility_is_exact_architecture() {
        let amd = Platform::linux_amd64();
        let arm = Platform::linux_arm64();
        assert!(amd.runs_on(&Platform::linux_amd64()));
        // The Astra problem: an x86-64 image does not run on aarch64 (§4.2).
        assert!(!amd.runs_on(&arm));
        assert!(arm.runs_on(&Platform::linux_arm64()));
    }

    #[test]
    fn uname_mapping() {
        assert_eq!(
            Platform::from_uname("x86_64"),
            Some(Platform::linux_amd64())
        );
        assert_eq!(
            Platform::from_uname("aarch64"),
            Some(Platform::linux_arm64())
        );
        assert_eq!(Platform::from_uname("riscv64"), None);
    }

    #[test]
    fn descriptor_render_includes_platform_when_present() {
        let d = Descriptor::new(MediaType::ImageManifest, sha256(b"x"), 2)
            .with_platform(Platform::linux_arm64());
        let text = d.render();
        assert!(text.contains("linux/arm64/v8"));
        assert!(text.contains("sha256:"));
    }

    #[test]
    fn platform_render_without_variant() {
        assert_eq!(Platform::linux_ppc64le().render(), "linux/ppc64le");
        assert_eq!(Platform::linux_arm64().render(), "linux/arm64/v8");
    }
}
