//! The ownership-flattening annotation proposed by the paper (§6.2.5).
//!
//! The paper argues that file ownership inside HPC application containers is
//! usually an artifact of legacy distribution tooling, and that a flattened
//! file tree (all files owned by one user, as Charliecloud and Singularity SIF
//! produce) is sufficient and often advantageous. It proposes "a potential
//! extension to the OCI specification and/or the Dockerfile language
//! \[allowing\] explicit marking of images to disallow, allow, or require them
//! to be ownership-flattened." This module implements that extension.

use hpcc_image::OwnershipMode;

use crate::error::ApiError;

/// The annotation key carried in image manifests (and the Dockerfile
/// directive `# flatten=<policy>` the `hpcc-core` builder understands).
pub const FLATTEN_ANNOTATION: &str = "org.hpc.container.ownership.flatten";

/// The three policy values of the proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlattenPolicy {
    /// The image must retain distinct ownership: flattened pushes are
    /// rejected (e.g. a containerized multi-user web service or database
    /// acting on behalf of multiple users, §2.1.1).
    Disallow,
    /// Either form is acceptable — the default, matching today's behaviour.
    #[default]
    Allow,
    /// The image must be flattened: pushes that preserve multiple IDs are
    /// rejected (e.g. export-controlled sites that refuse to leak site UIDs).
    Require,
}

impl FlattenPolicy {
    /// The annotation value string.
    pub fn as_str(self) -> &'static str {
        match self {
            FlattenPolicy::Disallow => "disallow",
            FlattenPolicy::Allow => "allow",
            FlattenPolicy::Require => "require",
        }
    }

    /// Parses an annotation value. Unknown values are an error so that typos
    /// do not silently weaken a `require` policy.
    pub fn parse(value: &str) -> Result<Self, ApiError> {
        match value {
            "disallow" => Ok(FlattenPolicy::Disallow),
            "allow" => Ok(FlattenPolicy::Allow),
            "require" => Ok(FlattenPolicy::Require),
            _ => Err(ApiError::ManifestInvalid),
        }
    }

    /// Checks an image's ownership mode against the policy. This is what a
    /// registry (or an admission controller in front of it) enforces at push
    /// time, and what a runtime may re-check at pull time.
    pub fn check(self, ownership: OwnershipMode) -> Result<(), ApiError> {
        match (self, ownership) {
            (FlattenPolicy::Disallow, OwnershipMode::Flattened) => Err(ApiError::Unsupported),
            (FlattenPolicy::Require, OwnershipMode::Preserved) => Err(ApiError::Unsupported),
            _ => Ok(()),
        }
    }

    /// True if a Type III (fully unprivileged) builder, which can only produce
    /// flattened images, can satisfy this policy — the interoperability
    /// question the proposal is meant to make explicit.
    pub fn satisfiable_by_type3(self) -> bool {
        !matches!(self, FlattenPolicy::Disallow)
    }
}

impl std::fmt::Display for FlattenPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_all_values() {
        for p in [
            FlattenPolicy::Disallow,
            FlattenPolicy::Allow,
            FlattenPolicy::Require,
        ] {
            assert_eq!(FlattenPolicy::parse(p.as_str()).unwrap(), p);
        }
        assert_eq!(
            FlattenPolicy::parse("flattened-please").unwrap_err(),
            ApiError::ManifestInvalid
        );
    }

    #[test]
    fn default_is_allow() {
        assert_eq!(FlattenPolicy::default(), FlattenPolicy::Allow);
        assert!(FlattenPolicy::Allow.check(OwnershipMode::Flattened).is_ok());
        assert!(FlattenPolicy::Allow.check(OwnershipMode::Preserved).is_ok());
    }

    #[test]
    fn disallow_rejects_flattened_images() {
        assert_eq!(
            FlattenPolicy::Disallow
                .check(OwnershipMode::Flattened)
                .unwrap_err(),
            ApiError::Unsupported
        );
        assert!(FlattenPolicy::Disallow
            .check(OwnershipMode::Preserved)
            .is_ok());
        assert!(!FlattenPolicy::Disallow.satisfiable_by_type3());
    }

    #[test]
    fn require_rejects_preserved_images() {
        assert_eq!(
            FlattenPolicy::Require
                .check(OwnershipMode::Preserved)
                .unwrap_err(),
            ApiError::Unsupported
        );
        assert!(FlattenPolicy::Require
            .check(OwnershipMode::Flattened)
            .is_ok());
        assert!(FlattenPolicy::Require.satisfiable_by_type3());
    }
}
