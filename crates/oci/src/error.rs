//! The error codes of the OCI distribution specification (the subset a
//! build-and-push workflow can hit).

/// Registry API errors. Names and HTTP status codes follow the OCI
/// distribution spec's error-code table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiError {
    /// `BLOB_UNKNOWN` — blob unknown to registry (404).
    BlobUnknown,
    /// `DIGEST_INVALID` — provided digest did not match uploaded content (400).
    DigestInvalid,
    /// `MANIFEST_UNKNOWN` — manifest unknown (404).
    ManifestUnknown,
    /// `MANIFEST_INVALID` — manifest failed validation (400).
    ManifestInvalid,
    /// `NAME_UNKNOWN` — repository name not known to registry (404).
    NameUnknown,
    /// `UNAUTHORIZED` — authentication required (401).
    Unauthorized,
    /// `DENIED` — requested access to the resource is denied (403).
    Denied,
    /// `UNSUPPORTED` — the operation is unsupported (405); used for the
    /// flatten-annotation policy violations of paper §6.2.5.
    Unsupported,
}

impl ApiError {
    /// The OCI error-code string.
    pub fn code(self) -> &'static str {
        match self {
            ApiError::BlobUnknown => "BLOB_UNKNOWN",
            ApiError::DigestInvalid => "DIGEST_INVALID",
            ApiError::ManifestUnknown => "MANIFEST_UNKNOWN",
            ApiError::ManifestInvalid => "MANIFEST_INVALID",
            ApiError::NameUnknown => "NAME_UNKNOWN",
            ApiError::Unauthorized => "UNAUTHORIZED",
            ApiError::Denied => "DENIED",
            ApiError::Unsupported => "UNSUPPORTED",
        }
    }

    /// The HTTP status the registry returns alongside the code.
    pub fn http_status(self) -> u16 {
        match self {
            ApiError::BlobUnknown | ApiError::ManifestUnknown | ApiError::NameUnknown => 404,
            ApiError::DigestInvalid | ApiError::ManifestInvalid => 400,
            ApiError::Unauthorized => 401,
            ApiError::Denied => 403,
            ApiError::Unsupported => 405,
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.code(), self.http_status())
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_statuses_align() {
        assert_eq!(ApiError::BlobUnknown.code(), "BLOB_UNKNOWN");
        assert_eq!(ApiError::BlobUnknown.http_status(), 404);
        assert_eq!(ApiError::Unauthorized.http_status(), 401);
        assert_eq!(ApiError::Denied.http_status(), 403);
        assert_eq!(ApiError::DigestInvalid.http_status(), 400);
    }

    #[test]
    fn display_is_code_plus_status() {
        assert_eq!(
            ApiError::ManifestUnknown.to_string(),
            "MANIFEST_UNKNOWN (404)"
        );
    }
}
