//! OCI image manifests and multi-architecture image indexes.
//!
//! An image manifest references a config blob and an ordered list of layer
//! blobs by digest. An image index references one manifest per platform — the
//! structure that would have let Astra's users discover that no aarch64
//! variant of their x86-64 images existed *before* trying to run them
//! (paper §4.2), and that lets the multi-supercomputer CI/CD of §6.3 publish
//! one reference covering every node architecture.

use std::collections::BTreeMap;

use hpcc_image::{sha256, Digest};

use crate::error::ApiError;
use crate::flatten::{FlattenPolicy, FLATTEN_ANNOTATION};
use crate::media::{Descriptor, MediaType, Platform};

/// An OCI image manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OciManifest {
    /// Descriptor of the image config blob.
    pub config: Descriptor,
    /// Layer descriptors, base layer first.
    pub layers: Vec<Descriptor>,
    /// Free-form annotations; [`FLATTEN_ANNOTATION`] is the one the paper
    /// proposes.
    pub annotations: BTreeMap<String, String>,
}

impl OciManifest {
    /// Creates a manifest.
    pub fn new(config: Descriptor, layers: Vec<Descriptor>) -> Self {
        OciManifest {
            config,
            layers,
            annotations: BTreeMap::new(),
        }
    }

    /// Adds an annotation.
    pub fn with_annotation(mut self, key: &str, value: &str) -> Self {
        self.annotations.insert(key.to_string(), value.to_string());
        self
    }

    /// The flatten policy encoded in the annotations (default: allow).
    pub fn flatten_policy(&self) -> Result<FlattenPolicy, ApiError> {
        match self.annotations.get(FLATTEN_ANNOTATION) {
            Some(v) => FlattenPolicy::parse(v),
            None => Ok(FlattenPolicy::Allow),
        }
    }

    /// Canonical document rendering (stable across identical manifests, so
    /// digests are reproducible).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"schemaVersion\":2,");
        out.push_str(&format!("\"mediaType\":\"{}\",", MediaType::ImageManifest));
        out.push_str(&format!("\"config\":{},", self.config.render()));
        out.push_str("\"layers\":[");
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&l.render());
        }
        out.push_str("],\"annotations\":{");
        for (i, (k, v)) in self.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", k, v));
        }
        out.push_str("}}");
        out
    }

    /// The manifest digest (digest of the canonical rendering).
    pub fn digest(&self) -> Digest {
        sha256(self.render().as_bytes())
    }

    /// Total size of all referenced layers.
    pub fn layers_size(&self) -> u64 {
        self.layers.iter().map(|l| l.size).sum()
    }

    /// Every blob digest this manifest references (config + layers).
    pub fn referenced_blobs(&self) -> Vec<Digest> {
        let mut v = vec![self.config.digest];
        v.extend(self.layers.iter().map(|l| l.digest));
        v
    }

    /// Validation: layer list non-empty, media types sensible.
    pub fn validate(&self) -> Result<(), ApiError> {
        if self.layers.is_empty() {
            return Err(ApiError::ManifestInvalid);
        }
        if self.config.media_type != MediaType::ImageConfig {
            return Err(ApiError::ManifestInvalid);
        }
        if self
            .layers
            .iter()
            .any(|l| !matches!(l.media_type, MediaType::LayerTar | MediaType::LayerTarGzip))
        {
            return Err(ApiError::ManifestInvalid);
        }
        // An invalid flatten annotation is a validation failure too.
        self.flatten_policy().map(|_| ())
    }
}

/// A multi-architecture image index (a "fat manifest").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImageIndex {
    /// One manifest descriptor per platform.
    pub manifests: Vec<Descriptor>,
    /// Index-level annotations.
    pub annotations: BTreeMap<String, String>,
}

impl ImageIndex {
    /// An empty index.
    pub fn new() -> Self {
        ImageIndex::default()
    }

    /// Adds (or replaces) the entry for a platform.
    pub fn upsert(&mut self, manifest_digest: Digest, size: u64, platform: Platform) {
        self.manifests
            .retain(|d| d.platform.as_ref() != Some(&platform));
        self.manifests.push(
            Descriptor::new(MediaType::ImageManifest, manifest_digest, size)
                .with_platform(platform),
        );
    }

    /// Platforms covered by this index.
    pub fn platforms(&self) -> Vec<Platform> {
        self.manifests
            .iter()
            .filter_map(|d| d.platform.clone())
            .collect()
    }

    /// Selects the manifest for a platform a node wants to run on — the pull
    /// step of Figure 6. `ManifestUnknown` is exactly the "x86-64 image on
    /// Astra" failure, surfaced at pull time instead of exec time.
    pub fn select(&self, want: &Platform) -> Result<&Descriptor, ApiError> {
        self.manifests
            .iter()
            .find(|d| {
                d.platform
                    .as_ref()
                    .map(|p| p.runs_on(want))
                    .unwrap_or(false)
            })
            .ok_or(ApiError::ManifestUnknown)
    }

    /// Canonical rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"schemaVersion\":2,");
        out.push_str(&format!("\"mediaType\":\"{}\",", MediaType::ImageIndex));
        out.push_str("\"manifests\":[");
        for (i, m) in self.manifests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&m.render());
        }
        out.push_str("]}");
        out
    }

    /// The index digest.
    pub fn digest(&self) -> Digest {
        sha256(self.render().as_bytes())
    }

    /// Number of platform entries.
    pub fn len(&self) -> usize {
        self.manifests.len()
    }

    /// True if the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.manifests.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_desc() -> Descriptor {
        Descriptor::new(MediaType::ImageConfig, sha256(b"config"), 6)
    }

    fn layer_desc(data: &[u8]) -> Descriptor {
        Descriptor::new(MediaType::LayerTar, sha256(data), data.len() as u64)
    }

    #[test]
    fn manifest_digest_is_stable_and_content_sensitive() {
        let m1 = OciManifest::new(config_desc(), vec![layer_desc(b"layer1")]);
        let m2 = OciManifest::new(config_desc(), vec![layer_desc(b"layer1")]);
        let m3 = OciManifest::new(config_desc(), vec![layer_desc(b"layer2")]);
        assert_eq!(m1.digest(), m2.digest());
        assert_ne!(m1.digest(), m3.digest());
    }

    #[test]
    fn manifest_validation_catches_empty_layers_and_bad_config_type() {
        let empty = OciManifest::new(config_desc(), vec![]);
        assert_eq!(empty.validate().unwrap_err(), ApiError::ManifestInvalid);
        let bad_config = OciManifest::new(layer_desc(b"x"), vec![layer_desc(b"y")]);
        assert_eq!(
            bad_config.validate().unwrap_err(),
            ApiError::ManifestInvalid
        );
        let good = OciManifest::new(config_desc(), vec![layer_desc(b"y")]);
        assert!(good.validate().is_ok());
    }

    #[test]
    fn flatten_annotation_parses_through_manifest() {
        let m = OciManifest::new(config_desc(), vec![layer_desc(b"l")])
            .with_annotation(FLATTEN_ANNOTATION, "require");
        assert_eq!(m.flatten_policy().unwrap(), FlattenPolicy::Require);
        let bad = OciManifest::new(config_desc(), vec![layer_desc(b"l")])
            .with_annotation(FLATTEN_ANNOTATION, "maybe");
        assert_eq!(bad.validate().unwrap_err(), ApiError::ManifestInvalid);
        let unannotated = OciManifest::new(config_desc(), vec![layer_desc(b"l")]);
        assert_eq!(unannotated.flatten_policy().unwrap(), FlattenPolicy::Allow);
    }

    #[test]
    fn index_selects_manifest_by_platform() {
        let mut index = ImageIndex::new();
        let amd = OciManifest::new(config_desc(), vec![layer_desc(b"amd64 layer")]);
        index.upsert(amd.digest(), 100, Platform::linux_amd64());
        // The Astra failure: no arm64 entry yet.
        assert_eq!(
            index.select(&Platform::linux_arm64()).unwrap_err(),
            ApiError::ManifestUnknown
        );
        let arm = OciManifest::new(config_desc(), vec![layer_desc(b"arm64 layer")]);
        index.upsert(arm.digest(), 120, Platform::linux_arm64());
        assert_eq!(index.len(), 2);
        let picked = index.select(&Platform::linux_arm64()).unwrap();
        assert_eq!(picked.digest, arm.digest());
    }

    #[test]
    fn index_upsert_replaces_platform_entry() {
        let mut index = ImageIndex::new();
        index.upsert(sha256(b"v1"), 10, Platform::linux_arm64());
        index.upsert(sha256(b"v2"), 12, Platform::linux_arm64());
        assert_eq!(index.len(), 1);
        assert_eq!(
            index.select(&Platform::linux_arm64()).unwrap().digest,
            sha256(b"v2")
        );
    }

    #[test]
    fn referenced_blobs_cover_config_and_layers() {
        let m = OciManifest::new(config_desc(), vec![layer_desc(b"a"), layer_desc(b"b")]);
        assert_eq!(m.referenced_blobs().len(), 3);
        assert_eq!(m.layers_size(), 2);
    }
}
