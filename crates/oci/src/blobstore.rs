//! Content-addressed blob storage and the two-phase upload protocol of the
//! OCI distribution specification.
//!
//! The registry in the Astra workflow (paper Figure 6, a GitLab Container
//! Registry) stores layer tars and config documents as content-addressed
//! blobs. Content addressing is also what makes iterative-development pushes
//! cheap for multi-layer builders: unchanged layers are already present and
//! are skipped (`HEAD` before `PUT`), which is one half of the build-cache
//! story the paper notes Charliecloud lacks (§6.1 disadvantage 3).

use std::collections::{BTreeMap, HashMap};

use hpcc_image::{sha256, Digest, FileBytes, Sha256};

use crate::error::ApiError;

/// A content-addressed blob store.
///
/// Blobs are held as [`FileBytes`] handles: a push whose layer bytes already
/// live behind a handle (every [`hpcc_image::Layer`]) is stored by bumping a
/// refcount, and a pull hands the same buffer back — blob bytes are never
/// copied between the image and the store.
#[derive(Debug, Clone, Default)]
pub struct BlobStore {
    blobs: HashMap<Digest, FileBytes>,
    /// Bytes actually stored (deduplicated).
    stored_bytes: u64,
    /// Bytes offered for upload including duplicates (what a naive store
    /// would hold) — the difference is the dedup saving.
    offered_bytes: u64,
    uploads_started: u64,
    uploads_completed: u64,
}

impl BlobStore {
    /// An empty store.
    pub fn new() -> Self {
        BlobStore::default()
    }

    /// True if a blob with this digest is present (`HEAD /v2/.../blobs/<d>`).
    pub fn has(&self, digest: &Digest) -> bool {
        self.blobs.contains_key(digest)
    }

    /// Fetches a blob (`GET /v2/.../blobs/<d>`).
    pub fn get(&self, digest: &Digest) -> Result<&[u8], ApiError> {
        self.blobs
            .get(digest)
            .map(|v| v.as_slice())
            .ok_or(ApiError::BlobUnknown)
    }

    /// Fetches a blob as a shared handle (no copy) — what a pull uses to
    /// reconstruct layers.
    pub fn get_shared(&self, digest: &Digest) -> Result<FileBytes, ApiError> {
        self.blobs.get(digest).cloned().ok_or(ApiError::BlobUnknown)
    }

    /// Stores a blob directly (monolithic upload), verifying the digest the
    /// client claims matches the content. Passing a [`FileBytes`] handle
    /// (e.g. `layer.tar.clone()`) shares the buffer instead of copying it.
    pub fn put(&mut self, claimed: &Digest, data: impl Into<FileBytes>) -> Result<(), ApiError> {
        let data = data.into();
        let actual = sha256(&data);
        if actual != *claimed {
            return Err(ApiError::DigestInvalid);
        }
        self.insert_verified(actual, data);
        Ok(())
    }

    /// Records a digest-verified blob, deduplicating and keeping the byte
    /// accounting consistent across both upload protocols.
    fn insert_verified(&mut self, digest: Digest, data: FileBytes) {
        self.offered_bytes += data.len() as u64;
        if !self.blobs.contains_key(&digest) {
            self.stored_bytes += data.len() as u64;
            self.blobs.insert(digest, data);
        }
    }

    /// Number of distinct blobs stored.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Bytes stored after deduplication.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Bytes that would be stored without deduplication.
    pub fn offered_bytes(&self) -> u64 {
        self.offered_bytes
    }

    /// Bytes saved by content-addressed deduplication.
    pub fn dedup_savings(&self) -> u64 {
        self.offered_bytes - self.stored_bytes
    }

    /// Uploads started (chunked protocol).
    pub fn uploads_started(&self) -> u64 {
        self.uploads_started
    }

    /// Uploads completed (chunked protocol).
    pub fn uploads_completed(&self) -> u64 {
        self.uploads_completed
    }

    /// Begins a chunked upload session (`POST /v2/.../blobs/uploads/`).
    pub fn begin_upload(&mut self) -> UploadSession {
        self.uploads_started += 1;
        UploadSession {
            buffer: Vec::new(),
            hasher: Sha256::new(),
            session_id: self.uploads_started,
        }
    }

    /// Completes a chunked upload (`PUT .../uploads/<id>?digest=<d>`). The
    /// claimed digest must match the content, which was hashed incrementally
    /// as the chunks arrived — no final pass over the accumulated buffer.
    pub fn complete_upload(
        &mut self,
        session: UploadSession,
        claimed: &Digest,
    ) -> Result<Digest, ApiError> {
        let actual = session.hasher.finalize();
        if actual != *claimed {
            return Err(ApiError::DigestInvalid);
        }
        // The accumulated buffer moves into a shared handle — the chunks
        // were hashed as they arrived and are never re-read or re-copied.
        self.insert_verified(actual, FileBytes::new(session.buffer));
        self.uploads_completed += 1;
        Ok(actual)
    }

    /// Deletes a blob (garbage collection after untagging).
    pub fn delete(&mut self, digest: &Digest) -> Result<(), ApiError> {
        match self.blobs.remove(digest) {
            Some(data) => {
                self.stored_bytes -= data.len() as u64;
                Ok(())
            }
            None => Err(ApiError::BlobUnknown),
        }
    }

    /// Garbage-collects every blob not in the referenced set; returns the
    /// number of blobs removed.
    pub fn gc(&mut self, referenced: &BTreeMap<Digest, ()>) -> usize {
        let stale: Vec<Digest> = self
            .blobs
            .keys()
            .filter(|d| !referenced.contains_key(*d))
            .copied()
            .collect();
        for d in &stale {
            let _ = self.delete(d);
        }
        stale.len()
    }
}

/// An in-progress chunked blob upload. Chunks are hashed as they arrive via
/// the incremental hasher, so completing the upload is O(1) in blob size.
#[derive(Debug, Clone)]
pub struct UploadSession {
    buffer: Vec<u8>,
    hasher: Sha256,
    session_id: u64,
}

impl UploadSession {
    /// Appends a chunk (`PATCH .../uploads/<id>`), updating the running
    /// digest.
    pub fn append(&mut self, chunk: &[u8]) {
        self.hasher.update(chunk);
        self.buffer.extend_from_slice(chunk);
    }

    /// Bytes received so far.
    pub fn received(&self) -> usize {
        self.buffer.len()
    }

    /// Opaque session identifier.
    pub fn id(&self) -> u64 {
        self.session_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_verifies_digest() {
        let mut store = BlobStore::new();
        let data = b"layer contents".to_vec();
        let good = sha256(&data);
        let bad = sha256(b"something else");
        assert_eq!(
            store.put(&bad, data.clone()).unwrap_err(),
            ApiError::DigestInvalid
        );
        store.put(&good, data.clone()).unwrap();
        assert!(store.has(&good));
        assert_eq!(store.get(&good).unwrap(), data.as_slice());
    }

    #[test]
    fn duplicate_puts_are_deduplicated() {
        let mut store = BlobStore::new();
        let data = vec![7u8; 1000];
        let d = sha256(&data);
        store.put(&d, data.clone()).unwrap();
        store.put(&d, data.clone()).unwrap();
        store.put(&d, data).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.stored_bytes(), 1000);
        assert_eq!(store.offered_bytes(), 3000);
        assert_eq!(store.dedup_savings(), 2000);
    }

    #[test]
    fn chunked_upload_accumulates_and_verifies() {
        let mut store = BlobStore::new();
        let mut session = store.begin_upload();
        session.append(b"hello ");
        session.append(b"world");
        assert_eq!(session.received(), 11);
        let digest = sha256(b"hello world");
        let stored = store.complete_upload(session, &digest).unwrap();
        assert_eq!(stored, digest);
        assert!(store.has(&digest));
        assert_eq!(store.uploads_completed(), 1);
    }

    #[test]
    fn chunked_upload_with_wrong_digest_is_rejected() {
        let mut store = BlobStore::new();
        let mut session = store.begin_upload();
        session.append(b"data");
        let wrong = sha256(b"other");
        assert_eq!(
            store.complete_upload(session, &wrong).unwrap_err(),
            ApiError::DigestInvalid
        );
        assert!(store.is_empty());
    }

    #[test]
    fn gc_removes_unreferenced_blobs() {
        let mut store = BlobStore::new();
        let keep = b"keep".to_vec();
        let drop_ = b"drop".to_vec();
        let dk = sha256(&keep);
        let dd = sha256(&drop_);
        store.put(&dk, keep).unwrap();
        store.put(&dd, drop_).unwrap();
        let mut referenced = BTreeMap::new();
        referenced.insert(dk, ());
        assert_eq!(store.gc(&referenced), 1);
        assert!(store.has(&dk));
        assert!(!store.has(&dd));
    }

    #[test]
    fn get_missing_blob_is_blob_unknown() {
        let store = BlobStore::new();
        assert_eq!(
            store.get(&sha256(b"nope")).unwrap_err(),
            ApiError::BlobUnknown
        );
    }
}
