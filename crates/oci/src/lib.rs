//! `hpcc-oci`: the OCI interoperability layer of the reproduction — the
//! distribution protocol (blob store, manifests, tags), multi-architecture
//! image indexes, and the ownership-flattening annotation the paper proposes
//! as an OCI extension (§6.2.5).
//!
//! The sibling `hpcc-image` crate owns the *contents* of an image (layers,
//! tars, ownership recording); this crate owns how images are *named, stored,
//! and exchanged* between the build host, the registry, and the compute nodes
//! of the Figure 6 workflow:
//!
//! * [`media`] — media types, content descriptors, platforms;
//! * [`blobstore`] — content-addressed blob storage with chunked uploads and
//!   deduplication;
//! * [`manifest`] — image manifests and multi-architecture indexes;
//! * [`distribution`] — the registry itself, with per-repository push
//!   authorization and flatten-policy enforcement;
//! * [`flatten`] — the disallow / allow / require ownership-flattening policy;
//! * [`error`] — the OCI distribution error codes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blobstore;
pub mod distribution;
pub mod error;
pub mod flatten;
pub mod manifest;
pub mod media;

pub use blobstore::{BlobStore, UploadSession};
pub use distribution::{DistributionRegistry, PulledImage};
pub use error::ApiError;
pub use flatten::{FlattenPolicy, FLATTEN_ANNOTATION};
pub use manifest::{ImageIndex, OciManifest};
pub use media::{Descriptor, MediaType, Platform};

// The property-based suite runs against the offline `proptest` drop-in in
// crates/proptest-shim (a path dev-dependency, so no registry is needed):
// `cargo test --features proptest` executes it everywhere, and CI runs that
// as a matrix leg. Swap the path dependency for crates.io `proptest = "1"`
// to regain shrinking; test sources need no changes.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use hpcc_image::sha256;
    use proptest::prelude::*;

    proptest! {
        /// Blob-store round trip: anything stored under its true digest comes
        /// back bit-identical, and duplicates never increase stored bytes.
        #[test]
        fn blobstore_roundtrip(blobs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..20)) {
            let mut store = BlobStore::new();
            let mut expected_distinct = std::collections::HashSet::new();
            for b in &blobs {
                let d = sha256(b);
                store.put(&d, b.clone()).unwrap();
                expected_distinct.insert(d);
                prop_assert_eq!(store.get(&d).unwrap(), b.as_slice());
            }
            prop_assert_eq!(store.len(), expected_distinct.len());
            prop_assert!(store.stored_bytes() <= store.offered_bytes());
        }

        /// Manifest digests are deterministic functions of content: permuting
        /// annotations (a BTreeMap) or re-rendering never changes the digest,
        /// while changing any layer does.
        #[test]
        fn manifest_digest_deterministic(layer_a in proptest::collection::vec(any::<u8>(), 1..64),
                                         layer_b in proptest::collection::vec(any::<u8>(), 1..64)) {
            let config = Descriptor::new(MediaType::ImageConfig, sha256(b"cfg"), 3);
            let mk = |data: &[u8]| OciManifest::new(
                config.clone(),
                vec![Descriptor::new(MediaType::LayerTar, sha256(data), data.len() as u64)]);
            let m1 = mk(&layer_a);
            let m2 = mk(&layer_a);
            prop_assert_eq!(m1.digest(), m2.digest());
            if layer_a != layer_b {
                prop_assert_ne!(m1.digest(), mk(&layer_b).digest());
            }
        }

        /// Index selection never returns a manifest whose platform cannot run
        /// on the requested platform.
        #[test]
        fn index_selection_is_sound(want_arm in any::<bool>(), entries in 1usize..4) {
            let mut index = ImageIndex::new();
            let platforms = [Platform::linux_amd64(), Platform::linux_arm64(), Platform::linux_ppc64le()];
            for (i, p) in platforms.iter().take(entries).enumerate() {
                index.upsert(sha256(format!("m{i}").as_bytes()), 10, p.clone());
            }
            let want = if want_arm { Platform::linux_arm64() } else { Platform::linux_amd64() };
            match index.select(&want) {
                Ok(desc) => prop_assert!(desc.platform.as_ref().unwrap().runs_on(&want)),
                Err(e) => prop_assert_eq!(e, ApiError::ManifestUnknown),
            }
        }
    }
}
