//! The stage executor: runs a planned [`BuildGraph`].
//!
//! Each stage executes through a `StageCtx` with one `execute_*` handler
//! per instruction kind — the per-instruction logic that used to live in the
//! ~370-line monolithic `Builder::build` loop. Stages hand their results
//! downstream as [`StageArtifact`]s: copy-on-write [`Filesystem`] snapshots,
//! never `<tag>.stageN` pseudo-images in the builder's tag namespace.
//!
//! Scheduling is dependency-driven: graph nodes run under
//! [`std::thread::scope`], a stage is spawned the moment its last dependency
//! completes, and independent stages (e.g. the two middle stages of a
//! diamond) build concurrently. All stages share the builder's
//! [`crate::cache::ShardedBuildCache`] — 16 digest-prefix shards, each with
//! its own lock — so an instruction chain built by one stage is a cache hit
//! for every other stage (including stages of the same build) without wide
//! graphs serializing on a single cache lock.

use std::collections::HashMap;
use std::sync::Mutex;

use hpcc_distro::catalog_for;
use hpcc_fakeroot::LieDatabase;
use hpcc_image::{Digest, ImageConfig};
use hpcc_kernel::Credentials;
use hpcc_kernel::UserNamespace;
use hpcc_shell::ExecEnv;
use hpcc_vfs::{Actor, Filesystem, Mode};

use crate::builder::{BuildEnv, BuildOptions, BuildReport, Builder, BuilderKind};
use crate::cache::{BuildCache, CachedState};
use crate::dockerfile::Instruction;
use crate::error::BuildError;
use crate::force::{detect_config, ForceConfig};
use crate::graph::{BuildGraph, GraphNode, StageBase};
use crate::ir::{BuildIr, IrStage};

/// What a completed stage passes downstream: a CoW filesystem snapshot plus
/// the metadata later stages or the final image need.
#[derive(Debug, Clone)]
pub struct StageArtifact {
    /// Stage filesystem (copy-on-write snapshot; cloning is O(1)).
    pub fs: Filesystem,
    /// Image configuration accumulated by the stage.
    pub config: ImageConfig,
    /// Fakeroot lie database accumulated by the stage.
    pub fakeroot_db: LieDatabase,
    /// The underlying base-image reference (for catalogs and `BuiltImage`).
    pub base_reference: String,
    /// Chain digest after the stage's last instruction (present when the
    /// build cache is enabled) — downstream cache keys bind to it.
    pub final_state: Option<Digest>,
}

/// Result of running a whole graph.
#[derive(Debug)]
pub(crate) struct GraphRun {
    /// Per-stage reports, `None` for stages that never ran.
    pub reports: Vec<Option<BuildReport>>,
    /// Per-stage artifacts, `None` for failed or skipped stages.
    pub artifacts: Vec<Option<StageArtifact>>,
    /// Whether every stage succeeded.
    pub success: bool,
    /// The first (lowest-stage-index) error, if any stage failed.
    pub error: Option<BuildError>,
    /// One [`BuildError::DependencyFailed`] per stage that never ran
    /// because a (transitive) dependency failed, in stage order.
    pub skipped: Vec<BuildError>,
}

/// Execution state for one stage.
struct StageCtx<'a> {
    builder: &'a Builder,
    options: &'a BuildOptions,
    context: Option<&'a Filesystem>,
    stage: &'a IrStage,
    node: &'a GraphNode,
    upstream: &'a HashMap<usize, StageArtifact>,
    report: BuildReport,
    env: Option<BuildEnv>,
    config: ImageConfig,
    fakeroot_db: LieDatabase,
    force_cfg: Option<ForceConfig>,
    force_initialized: bool,
    parent: Option<Digest>,
    cache_hits: usize,
    cache_misses: usize,
    /// The builder's launch identity, computed once per stage — cache keys
    /// bind to it so tenants whose launched environments differ (uid/gid,
    /// subuid ranges) can never adopt each other's cached trees through a
    /// shared cache.
    builder_identity: String,
}

impl<'a> StageCtx<'a> {
    fn new(
        builder: &'a Builder,
        options: &'a BuildOptions,
        context: Option<&'a Filesystem>,
        stage: &'a IrStage,
        node: &'a GraphNode,
        upstream: &'a HashMap<usize, StageArtifact>,
        display_tag: String,
    ) -> Self {
        StageCtx {
            builder,
            options,
            context,
            stage,
            node,
            upstream,
            report: BuildReport {
                transcript: Vec::new(),
                success: false,
                tag: display_tag,
                instructions_total: 0,
                instructions_modified: 0,
                modifiable_runs: 0,
                force_config: None,
                cache_hits: 0,
                cache_misses: 0,
                elapsed: std::time::Duration::ZERO,
                error: None,
            },
            env: None,
            config: ImageConfig {
                architecture: options.arch.clone(),
                ..Default::default()
            },
            fakeroot_db: LieDatabase::new(),
            force_cfg: None,
            force_initialized: false,
            parent: None,
            cache_hits: 0,
            cache_misses: 0,
            builder_identity: builder.launch_identity(),
        }
    }

    /// Runs the stage to completion. On failure the report carries the error
    /// and no artifact is produced.
    fn run(mut self) -> (BuildReport, Option<StageArtifact>) {
        for (idx, instruction) in self.stage.instructions.iter().enumerate() {
            if let Err(message) = self.execute_instruction(idx, instruction) {
                self.report.error = Some(BuildError::Execution {
                    stage: self.stage.index,
                    message,
                });
                return self.finish(None);
            }
        }
        let Some(env) = self.env.take() else {
            let message = "error: Dockerfile has no FROM".to_string();
            self.report.error = Some(BuildError::Execution {
                stage: self.stage.index,
                message,
            });
            return self.finish(None);
        };
        if matches!(self.builder.kind, BuilderKind::ChImage)
            && self.options.force
            && self.report.force_config.is_some()
        {
            self.report.transcript.push(format!(
                "--force: init OK & modified {} RUN instructions",
                self.report.instructions_modified
            ));
        }
        self.report.transcript.push(format!(
            "grown in {} instructions: {}",
            self.report.instructions_total, self.report.tag
        ));
        self.report.success = true;
        let artifact = StageArtifact {
            fs: env.fs,
            config: self.config.clone(),
            fakeroot_db: self.fakeroot_db.clone(),
            base_reference: env.base_reference,
            final_state: self.parent,
        };
        self.finish(Some(artifact))
    }

    fn finish(mut self, artifact: Option<StageArtifact>) -> (BuildReport, Option<StageArtifact>) {
        self.report.cache_hits = self.cache_hits;
        self.report.cache_misses = self.cache_misses;
        (self.report, artifact)
    }

    /// Executes one instruction: cache probe, then the matching handler,
    /// then cache store.
    fn execute_instruction(&mut self, idx: usize, instruction: &Instruction) -> Result<(), String> {
        let n = idx + 1;
        self.report.instructions_total = n;
        let display = display_instruction(n, instruction);
        let state_id = if self.options.use_cache {
            Some(self.state_id_for(idx, instruction))
        } else {
            None
        };

        // In-flight dedup: either this thread is elected leader for the
        // digest (and must store or abort via the guard), or another
        // build's leader finishes first and this probe returns its result
        // as a hit — two tenants racing on an identical prefix compute it
        // exactly once.
        let mut flight = None;
        if let Some(id) = state_id {
            match self.builder.cache.lookup_or_lead(&id) {
                crate::cache::CacheOutcome::Hit(hit) => {
                    self.cache_hits += 1;
                    self.adopt_cached(&display, instruction, &hit)?;
                    self.parent = Some(id);
                    return Ok(());
                }
                crate::cache::CacheOutcome::Lead(guard) => {
                    self.cache_misses += 1;
                    flight = Some(guard);
                }
            }
        }

        match instruction {
            Instruction::From { .. } => self.execute_from(&display)?,
            Instruction::Run(cmd) => self.execute_run(&display, cmd)?,
            Instruction::Copy {
                sources,
                dest,
                from,
            } => match from {
                Some(_) => self.execute_copy_from(&display, idx, sources, dest)?,
                None => self.execute_copy(&display, sources, dest)?,
            },
            Instruction::Env { key, value } => self.execute_env(&display, key, value),
            Instruction::Workdir(path) => self.execute_workdir(&display, path),
            Instruction::Label { key, value } => self.execute_label(&display, key, value),
            Instruction::Cmd(args) => self.execute_cmd(&display, args),
            Instruction::Entrypoint(args) => self.execute_entrypoint(&display, args),
            Instruction::User(_)
            | Instruction::Arg { .. }
            | Instruction::Expose(_)
            | Instruction::Volume(_) => self.execute_passthrough(&display),
        }

        if let Some(id) = state_id {
            if let Some(env) = &self.env {
                let state = CachedState {
                    fs: env.fs.clone(),
                    config: self.config.clone(),
                    fakeroot_db: self.fakeroot_db.clone(),
                    state_id: id,
                };
                match flight.take() {
                    // Completing the flight stores the state and wakes every
                    // waiter blocked on this digest.
                    Some(guard) => guard.complete(state),
                    None => self.builder.cache.store(state),
                }
            }
            self.parent = Some(id);
        }
        // An unconsumed guard (no env yet, or an error path unwound past us)
        // drops here, aborting the flight so a waiter is promoted to leader.
        drop(flight);
        Ok(())
    }

    /// The cache chain digest for an instruction. Cross-stage edges are bound
    /// to the *content* of the upstream stage: `FROM <stage>` chains from the
    /// upstream artifact's final state digest, and `COPY --from=` mixes the
    /// source stage's final state into the key, so a changed upstream stage
    /// invalidates downstream hits.
    fn state_id_for(&self, idx: usize, instruction: &Instruction) -> Digest {
        // Canonical instruction identity: the FROM alias and the raw --from
        // reference spelling (alias vs index) are naming, not content, so
        // they stay out of the key — cross-stage content is bound through
        // the upstream digests appended below.
        let canonical = match instruction {
            Instruction::From { image, .. } => format!("FROM {}", image),
            Instruction::Copy {
                sources,
                dest,
                from: Some(_),
            } => format!("COPY --from {:?} {}", sources, dest),
            other => format!("{:?}", other),
        };
        let mut key = format!(
            "{}|force={}|arch={}|{}",
            self.builder_identity, self.options.force, self.options.arch, canonical
        );
        if let Some(edge) = self.node.copy_from.iter().find(|e| e.instruction == idx) {
            key.push_str(&format!("|srcstage={}", edge.source_stage));
            if let Some(art) = self.upstream.get(&edge.source_stage) {
                if let Some(d) = &art.final_state {
                    key.push_str("|src=");
                    key.push_str(&d.to_oci_string());
                }
            }
        }
        let upstream_parent = match (idx, &self.node.base) {
            (0, StageBase::Stage(s)) => self.upstream.get(s).and_then(|a| a.final_state),
            _ => None,
        };
        let parent = if idx == 0 {
            upstream_parent
        } else {
            self.parent
        };
        BuildCache::state_id(parent.as_ref(), &key)
    }

    /// A cache hit: adopt the snapshot (a refcount bump, not a deep copy).
    fn adopt_cached(
        &mut self,
        display: &str,
        instruction: &Instruction,
        hit: &CachedState,
    ) -> Result<(), String> {
        self.report.transcript.push(format!("{} (cached)", display));
        if let Some(e) = self.env.as_mut() {
            e.fs = hit.fs.clone();
        } else if let Instruction::From { .. } = instruction {
            // FROM served from cache: build the env around the cached
            // filesystem directly — no base image is constructed and no
            // container is launched on the fully cached path.
            let env = match &self.node.base {
                StageBase::Image(reference) => {
                    self.builder
                        .env_for_cached_from(reference, &self.options.arch, &hit.fs)
                }
                StageBase::Stage(s) => self.env_from_stage(*s, hit.fs.clone()),
            };
            match env {
                Ok(fresh) => self.env = Some(fresh),
                Err(msg) => {
                    self.report.transcript.push(msg.clone());
                    return Err(msg);
                }
            }
        }
        self.config = hit.config.clone();
        self.fakeroot_db = hit.fakeroot_db.clone();
        // Force-config detection still applies after FROM.
        if let (Instruction::From { .. }, BuilderKind::ChImage) = (instruction, &self.builder.kind)
        {
            if let Some(e) = &self.env {
                self.force_cfg = detect_config(&e.fs, &e.creds, &e.userns);
                if self.options.force {
                    if let Some(cfg) = &self.force_cfg {
                        self.report.force_config = Some(cfg.name.to_string());
                        self.report.transcript.push(format!(
                            "will use --force: {}: {}",
                            cfg.name, cfg.description
                        ));
                    }
                }
                // If fakeroot is already in the cached image the init phase
                // is satisfied.
                let actor = Actor::new(&e.creds, &e.userns);
                self.force_initialized = e.fs.exists(&actor, "/usr/bin/fakeroot");
            }
        }
        Ok(())
    }

    /// Builds the environment for a `FROM` that adopts an earlier stage's
    /// artifact: a CoW snapshot of the upstream filesystem, no container
    /// launch and no base-image reconstruction.
    fn env_from_stage(&self, source: usize, fs: Filesystem) -> Result<BuildEnv, String> {
        let art = self
            .upstream
            .get(&source)
            .ok_or_else(|| format!("error: stage {} has no built artifact", source))?;
        let catalog = catalog_for(&art.base_reference, &self.options.arch)
            .ok_or_else(|| format!("error: no catalog for {}", art.base_reference))?;
        Ok(BuildEnv {
            fs,
            creds: self.builder.container_creds(),
            userns: self.builder.container_userns(),
            catalog,
            base_reference: art.base_reference.clone(),
        })
    }

    fn execute_from(&mut self, display: &str) -> Result<(), String> {
        self.report.transcript.push(display.to_string());
        let env = match &self.node.base {
            StageBase::Image(reference) => self.builder.setup_from(reference, &self.options.arch),
            StageBase::Stage(s) => {
                let fs = self
                    .upstream
                    .get(s)
                    .map(|a| a.fs.clone())
                    .ok_or_else(|| format!("error: stage {} has no built artifact", s))?;
                self.env_from_stage(*s, fs)
            }
        };
        match env {
            Ok(e) => {
                if let BuilderKind::ChImage = self.builder.kind {
                    self.force_cfg = detect_config(&e.fs, &e.creds, &e.userns);
                    if self.options.force {
                        if let Some(cfg) = &self.force_cfg {
                            self.report.force_config = Some(cfg.name.to_string());
                            self.report.transcript.push(format!(
                                "will use --force: {}: {}",
                                cfg.name, cfg.description
                            ));
                        }
                    }
                }
                self.env = Some(e);
                Ok(())
            }
            Err(msg) => {
                self.report.transcript.push(msg.clone());
                Err(msg)
            }
        }
    }

    fn execute_run(&mut self, display: &str, cmd: &str) -> Result<(), String> {
        self.report.transcript.push(display.to_string());
        let Some(e) = self.env.as_mut() else {
            let msg = "error: RUN before FROM".to_string();
            self.report.transcript.push(msg.clone());
            return Err(msg);
        };
        let modifiable = self
            .force_cfg
            .as_ref()
            .map(|c| c.run_is_modifiable(cmd))
            .unwrap_or(false);
        if modifiable {
            self.report.modifiable_runs += 1;
        }
        let wrap =
            matches!(self.builder.kind, BuilderKind::ChImage) && self.options.force && modifiable;

        let mut shell = ExecEnv::new(
            &mut e.fs,
            e.creds.clone(),
            &e.userns,
            &e.catalog,
            &self.options.arch,
        );
        shell.fakeroot_db = self.fakeroot_db.clone();

        // --force initialization before the first modified RUN.
        if wrap && !self.force_initialized {
            let cfg = self.force_cfg.as_ref().expect("wrap implies config");
            let mut init_failed = None;
            for (i, step) in cfg.init_steps.iter().enumerate() {
                self.report.transcript.push(format!(
                    "workarounds: init step {}: checking: $ {}",
                    i + 1,
                    step.check
                ));
                let check = shell.run_command(&step.check);
                if check.success() {
                    continue;
                }
                self.report.transcript.push(format!(
                    "workarounds: init step {}: $ {}",
                    i + 1,
                    step.apply
                ));
                let apply = shell.run_command(&step.apply);
                self.report.transcript.extend(apply.lines.clone());
                if !apply.success() {
                    init_failed = Some(apply.status);
                    break;
                }
            }
            if let Some(status) = init_failed {
                let msg = format!(
                    "error: build failed: --force initialization exited with {}",
                    status
                );
                self.report.transcript.push(msg.clone());
                return Err(msg);
            }
            self.force_initialized = true;
        }

        let result = if wrap {
            self.report.instructions_modified += 1;
            self.report.transcript.push(format!(
                "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', '{}' ]",
                cmd
            ));
            shell.run_wrapped(cmd)
        } else {
            shell.run_command(cmd)
        };
        self.fakeroot_db = shell.fakeroot_db.clone();
        self.report.transcript.extend(result.lines.clone());
        if !result.success() {
            let msg = format!(
                "error: build failed: RUN command exited with {}",
                result.status
            );
            self.report.transcript.push(msg.clone());
            if matches!(self.builder.kind, BuilderKind::ChImage)
                && !self.options.force
                && self.force_cfg.is_some()
                && self.report.modifiable_runs > 0
            {
                self.report
                    .transcript
                    .push("hint: --force may fix this failure; see ch-image(1)".to_string());
            }
            return Err(msg);
        }
        Ok(())
    }

    /// `COPY` from the user-provided build context.
    fn execute_copy(
        &mut self,
        display: &str,
        sources: &[String],
        dest: &str,
    ) -> Result<(), String> {
        self.report.transcript.push(display.to_string());
        let Some(e) = self.env.as_mut() else {
            let msg = "error: COPY before FROM".to_string();
            self.report.transcript.push(msg.clone());
            return Err(msg);
        };
        let Some(ctx) = self.context else {
            let msg = format!("error: COPY {}: no build context", sources.join(" "));
            self.report.transcript.push(msg.clone());
            return Err(msg);
        };
        for src in sources {
            let dst = dest_for(dest, src);
            let root_creds = Credentials::host_root();
            let host_ns = UserNamespace::initial();
            let actor = Actor::new(&root_creds, &host_ns);
            match ctx.file_bytes(&actor, &format!("/{}", src.trim_start_matches('/'))) {
                Ok(content) => {
                    e.fs.install_file(&dst, content, e.creds.euid, e.creds.egid, Mode::FILE_644)
                        .ok();
                }
                Err(_) => {
                    let msg = format!("error: COPY {}: not found in context", src);
                    self.report.transcript.push(msg.clone());
                    return Err(msg);
                }
            }
        }
        Ok(())
    }

    /// `COPY --from=<stage>`: sources come out of the referenced stage's
    /// artifact as CoW subtree copies (file bytes stay shared).
    fn execute_copy_from(
        &mut self,
        display: &str,
        idx: usize,
        sources: &[String],
        dest: &str,
    ) -> Result<(), String> {
        self.report.transcript.push(display.to_string());
        let edge = self
            .node
            .copy_from
            .iter()
            .find(|e| e.instruction == idx)
            .copied();
        let Some(edge) = edge else {
            let msg = "error: COPY --from not planned for this instruction".to_string();
            self.report.transcript.push(msg.clone());
            return Err(msg);
        };
        let Some(art) = self.upstream.get(&edge.source_stage) else {
            let msg = format!("error: stage {} has no built artifact", edge.source_stage);
            self.report.transcript.push(msg.clone());
            return Err(msg);
        };
        let Some(e) = self.env.as_mut() else {
            let msg = "error: COPY before FROM".to_string();
            self.report.transcript.push(msg.clone());
            return Err(msg);
        };
        let root_creds = Credentials::host_root();
        let host_ns = UserNamespace::initial();
        let root = Actor::new(&root_creds, &host_ns);
        for src in sources {
            if !art.fs.exists(&root, src) {
                let msg = format!(
                    "error: COPY --from={} {}: not found in stage image",
                    edge.source_stage, src
                );
                self.report.transcript.push(msg.clone());
                return Err(msg);
            }
            let dst = dest_for(dest, src);
            if let Err(err) = e.fs.copy_tree_from(&art.fs, src, &dst) {
                let msg = format!("error: COPY --from={} {}: {}", edge.source_stage, src, err);
                self.report.transcript.push(msg.clone());
                return Err(msg);
            }
        }
        Ok(())
    }

    fn execute_env(&mut self, display: &str, key: &str, value: &str) {
        self.report.transcript.push(display.to_string());
        self.config.env.insert(key.to_string(), value.to_string());
    }

    fn execute_workdir(&mut self, display: &str, path: &str) {
        self.report.transcript.push(display.to_string());
        self.config.workdir = path.to_string();
        if let Some(e) = self.env.as_mut() {
            let actor = Actor::new(&e.creds, &e.userns);
            if !e.fs.exists(&actor, path) {
                let _ =
                    e.fs.install_dir(path, e.creds.euid, e.creds.egid, Mode::DIR_755);
            }
        }
    }

    fn execute_label(&mut self, display: &str, key: &str, value: &str) {
        self.report.transcript.push(display.to_string());
        self.config
            .labels
            .insert(key.to_string(), value.to_string());
    }

    fn execute_cmd(&mut self, display: &str, args: &[String]) {
        self.report.transcript.push(display.to_string());
        self.config.cmd = args.to_vec();
    }

    fn execute_entrypoint(&mut self, display: &str, args: &[String]) {
        self.report.transcript.push(display.to_string());
        self.config.entrypoint = args.to_vec();
    }

    fn execute_passthrough(&mut self, display: &str) {
        self.report.transcript.push(display.to_string());
    }
}

/// Destination path for one `COPY` source: trailing-slash destinations get
/// the source's basename appended.
fn dest_for(dest: &str, src: &str) -> String {
    if dest.ends_with('/') {
        format!("{}{}", dest, src.rsplit('/').next().unwrap_or(src))
    } else {
        dest.to_string()
    }
}

/// Renders an instruction for the transcript, numbered as in `ch-image`.
pub(crate) fn display_instruction(n: usize, instruction: &Instruction) -> String {
    match instruction {
        Instruction::From { image, alias } => match alias {
            Some(a) => format!("{} FROM {} AS {}", n, image, a),
            None => format!("{} FROM {}", n, image),
        },
        Instruction::Run(cmd) => format!("{} RUN [ '/bin/sh', '-c', '{}' ]", n, cmd),
        Instruction::Copy {
            sources,
            dest,
            from,
        } => match from {
            Some(r) => format!("{} COPY --from={} {} {}", n, r, sources.join(" "), dest),
            None => format!("{} COPY {} {}", n, sources.join(" "), dest),
        },
        Instruction::Env { key, value } => format!("{} ENV {}={}", n, key, value),
        Instruction::Arg { name, .. } => format!("{} ARG {}", n, name),
        Instruction::Workdir(p) => format!("{} WORKDIR {}", n, p),
        Instruction::User(u) => format!("{} USER {}", n, u),
        Instruction::Label { key, value } => format!("{} LABEL {}={}", n, key, value),
        Instruction::Cmd(args) => format!("{} CMD {:?}", n, args),
        Instruction::Entrypoint(args) => format!("{} ENTRYPOINT {:?}", n, args),
        Instruction::Expose(p) => format!("{} EXPOSE {}", n, p),
        Instruction::Volume(v) => format!("{} VOLUME {}", n, v),
    }
}

/// Runs one stage against its upstream artifacts.
///
/// Exposed so external schedulers (the build farm) can drive a planned
/// [`BuildGraph`]'s stages at their own granularity — e.g. as work-stealing
/// tasks across many concurrent builds — instead of going through
/// `run_graph`'s per-build scheduler. `upstream` must hold an artifact for
/// every dependency of `stage_index` recorded in the graph.
pub fn execute_stage(
    builder: &Builder,
    ir: &BuildIr,
    graph: &BuildGraph,
    stage_index: usize,
    options: &BuildOptions,
    context: Option<&Filesystem>,
    upstream: &HashMap<usize, StageArtifact>,
) -> (BuildReport, Option<StageArtifact>) {
    let stage = &ir.stages[stage_index];
    let is_final = stage_index + 1 == ir.stage_count();
    let display_tag = if is_final {
        options.tag.clone()
    } else {
        match &stage.alias {
            Some(a) => format!("{} (stage {}: {})", options.tag, stage_index, a),
            None => format!("{} (stage {})", options.tag, stage_index),
        }
    };
    let start = std::time::Instant::now();
    let (mut report, artifact) = StageCtx::new(
        builder,
        options,
        context,
        stage,
        graph.node(stage_index),
        upstream,
        display_tag,
    )
    .run();
    report.elapsed = start.elapsed();
    (report, artifact)
}

/// Scheduler shared state while a graph runs.
struct SchedState {
    pending: Vec<usize>,
    reports: Vec<Option<BuildReport>>,
    artifacts: Vec<Option<StageArtifact>>,
    failed: bool,
}

struct Shared<'e> {
    builder: &'e Builder,
    ir: &'e BuildIr,
    graph: &'e BuildGraph,
    options: &'e BuildOptions,
    context: Option<&'e Filesystem>,
    state: Mutex<SchedState>,
}

/// Runs a stage and then *continues inline* with one newly released
/// dependent, spawning threads only for the extras — a chain of stages costs
/// zero additional threads; a diamond costs one.
fn stage_worker<'scope, 'e>(
    scope: &'scope std::thread::Scope<'scope, 'e>,
    shared: &'e Shared<'e>,
    mut stage: usize,
    mut upstream: HashMap<usize, StageArtifact>,
) {
    loop {
        let (report, artifact) = execute_stage(
            shared.builder,
            shared.ir,
            shared.graph,
            stage,
            shared.options,
            shared.context,
            &upstream,
        );
        let mut ready = Vec::new();
        {
            let mut st = crate::cache::lock_recover(&shared.state);
            let ok = artifact.is_some();
            st.reports[stage] = Some(report);
            st.artifacts[stage] = artifact;
            if !ok {
                st.failed = true;
            } else if !st.failed {
                for &d in &shared.graph.node(stage).dependents {
                    st.pending[d] -= 1;
                    if st.pending[d] == 0 {
                        // CoW clones of the dependency artifacts: refcount
                        // bumps, not tree copies.
                        let ups: HashMap<usize, StageArtifact> = shared
                            .graph
                            .node(d)
                            .deps
                            .iter()
                            .map(|&s| (s, st.artifacts[s].clone().expect("dependency completed")))
                            .collect();
                        ready.push((d, ups));
                    }
                }
            }
        }
        let Some((next, next_upstream)) = ready.pop() else {
            return;
        };
        for (d, ups) in ready {
            spawn_stage(scope, shared, d, ups);
        }
        stage = next;
        upstream = next_upstream;
    }
}

/// Spawns a stage (and its inline continuations) onto the scope.
fn spawn_stage<'scope, 'e>(
    scope: &'scope std::thread::Scope<'scope, 'e>,
    shared: &'e Shared<'e>,
    stage: usize,
    upstream: HashMap<usize, StageArtifact>,
) {
    scope.spawn(move || stage_worker(scope, shared, stage, upstream));
}

/// Runs a planned graph to completion. With `options.parallel` (the default)
/// independent stages build concurrently under a thread scope; otherwise
/// stages run serially in topological order — same results, useful as a
/// baseline and for deterministic cache-interleaving tests.
pub(crate) fn run_graph(
    builder: &Builder,
    ir: &BuildIr,
    graph: &BuildGraph,
    options: &BuildOptions,
    context: Option<&Filesystem>,
) -> GraphRun {
    let n = graph.stage_count();
    let (reports, artifacts) = if options.parallel && n > 1 {
        let shared = Shared {
            builder,
            ir,
            graph,
            options,
            context,
            state: Mutex::new(SchedState {
                pending: graph.nodes.iter().map(|node| node.deps.len()).collect(),
                reports: (0..n).map(|_| None).collect(),
                artifacts: (0..n).map(|_| None).collect(),
                failed: false,
            }),
        };
        std::thread::scope(|scope| {
            let mut roots = graph.roots();
            // The first root runs on this thread; only extra roots (and
            // later, extra released dependents) cost a spawn.
            let first = roots.remove(0);
            for root in roots {
                spawn_stage(scope, &shared, root, HashMap::new());
            }
            stage_worker(scope, &shared, first, HashMap::new());
        });
        let st = shared
            .state
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (st.reports, st.artifacts)
    } else {
        let mut reports: Vec<Option<BuildReport>> = (0..n).map(|_| None).collect();
        let mut artifacts: Vec<Option<StageArtifact>> = (0..n).map(|_| None).collect();
        'levels: for level in graph.levels() {
            for &stage in level {
                let upstream: HashMap<usize, StageArtifact> = graph
                    .node(stage)
                    .deps
                    .iter()
                    .map(|&s| (s, artifacts[s].clone().expect("dependency completed")))
                    .collect();
                let (report, artifact) =
                    execute_stage(builder, ir, graph, stage, options, context, &upstream);
                let ok = artifact.is_some();
                reports[stage] = Some(report);
                artifacts[stage] = artifact;
                if !ok {
                    break 'levels;
                }
            }
        }
        (reports, artifacts)
    };
    let success = artifacts.iter().all(|a| a.is_some());
    let error = reports.iter().flatten().find_map(|r| r.error.clone());
    // Stages that never ran were skipped because a dependency failed — or,
    // for stages whose own dependencies all succeeded, because scheduling
    // stopped at the first failure; attribute those to that stage.
    let first_failed = (0..n).find(|&i| reports[i].is_some() && artifacts[i].is_none());
    let mut skipped = Vec::new();
    for (stage, report) in reports.iter().enumerate() {
        if report.is_some() {
            continue;
        }
        let dependency = graph
            .node(stage)
            .deps
            .iter()
            .copied()
            .find(|&d| artifacts[d].is_none())
            .or(first_failed)
            .unwrap_or(stage);
        skipped.push(BuildError::DependencyFailed { stage, dependency });
    }
    GraphRun {
        reports,
        artifacts,
        success,
        error,
        skipped,
    }
}
