//! Per-instruction build cache.
//!
//! The paper lists the lack of a build cache as a Charliecloud disadvantage
//! (§6.1 item 3): "This caching can greatly accelerate repetitive builds,
//! such as during iterative development." This module provides the cache so
//! the repository can both reproduce the cache-less behaviour and quantify
//! the improvement (EXPERIMENTS.md E15).
//!
//! The cache is keyed directly on [`Digest`] (32 raw bytes, `Hash + Eq`) —
//! never on the rendered `sha256:<hex>` string — and a hit returns an
//! [`Arc`]-shared snapshot. Because [`Filesystem`] snapshots are
//! copy-on-write, a hit costs a reference-count bump plus O(metadata) on the
//! first subsequent mutation, not a deep copy of the image tree.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use hpcc_fakeroot::LieDatabase;
use hpcc_image::{Digest, ImageConfig, Sha256};
use hpcc_vfs::Filesystem;

/// Locks a mutex, recovering from poisoning the way the VFS resolve cache
/// does (`clear_poison` + `into_inner`). Every structure locked through this
/// helper is self-consistent after any single interrupted operation (a map
/// probe, a single-entry insert or remove), so one panicked build thread —
/// a failed stage unwinding mid-store on a multi-tenant farm — must not
/// wedge the shared cache for every other tenant.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        mutex.clear_poison();
        poisoned.into_inner()
    })
}

/// A cached build state: the filesystem and metadata after executing an
/// instruction.
#[derive(Debug, Clone)]
pub struct CachedState {
    /// Image filesystem snapshot.
    pub fs: Filesystem,
    /// Image configuration snapshot.
    pub config: ImageConfig,
    /// Fakeroot lie database snapshot.
    pub fakeroot_db: LieDatabase,
    /// State identifier (chain digest).
    pub state_id: Digest,
}

/// The cache: chain-digest keyed snapshots, with optional LRU eviction.
///
/// When a capacity is set, inserting past it evicts the least-recently-used
/// entry — but never one still **pinned** by an in-flight stage: a pinned
/// entry is one whose `Arc` has an outstanding reference beyond the cache's
/// own (a stage adopted the snapshot and is still building on it). If every
/// entry is pinned the cache temporarily exceeds its capacity rather than
/// invalidating live state.
#[derive(Debug, Clone, Default)]
pub struct BuildCache {
    entries: HashMap<Digest, (Arc<CachedState>, u64)>,
    /// Monotonic recency clock; bumped on every lookup hit and store.
    tick: u64,
    /// Maximum entries to retain (`None` = unbounded).
    capacity: Option<usize>,
    /// Entries evicted so far.
    evictions: u64,
    hits: usize,
    misses: usize,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache that evicts least-recently-used entries past `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BuildCache {
            capacity: Some(capacity),
            ..Default::default()
        }
    }

    /// Sets (or removes) the entry cap. Shrinking evicts immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        self.evict_to_capacity();
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Computes the state id for executing `instruction` on top of `parent`.
    ///
    /// Hashes the parent digest's raw bytes and the instruction text through
    /// one incremental hasher — no intermediate strings are allocated.
    pub fn state_id(parent: Option<&Digest>, instruction: &str) -> Digest {
        let mut h = Sha256::new();
        match parent {
            Some(d) => h.update(&d.0),
            None => h.update(b"scratch"),
        }
        h.update(b"\n");
        h.update(instruction.as_bytes());
        h.finalize()
    }

    /// Looks up a state, counting a hit or miss. A hit shares the snapshot:
    /// mutating a filesystem cloned out of it never writes back into the
    /// cache (copy-on-write).
    pub fn lookup(&mut self, id: &Digest) -> Option<Arc<CachedState>> {
        match self.probe(id) {
            Some(state) => {
                self.hits += 1;
                Some(state)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a state and refreshes its recency *without* touching the
    /// hit/miss counters — the sharded wrapper counts via atomics instead.
    pub fn probe(&mut self, id: &Digest) -> Option<Arc<CachedState>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(id).map(|slot| {
            slot.1 = tick;
            Arc::clone(&slot.0)
        })
    }

    /// Stores a state, evicting LRU entries past the capacity.
    pub fn store(&mut self, state: CachedState) {
        self.tick += 1;
        self.entries
            .insert(state.state_id, (Arc::new(state), self.tick));
        self.evict_to_capacity();
    }

    /// Evicts least-recently-used entries until within capacity, skipping
    /// entries pinned by in-flight stages (outstanding `Arc` references).
    fn evict_to_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.entries.len() > cap {
            let victim = self
                .entries
                .iter()
                .filter(|(_, (state, _))| Arc::strong_count(state) == 1)
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.entries.remove(&id);
                    self.evictions += 1;
                }
                // Everything is pinned: exceed capacity rather than drop
                // state a stage is still building on.
                None => break,
            }
        }
    }

    /// Number of cached states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Clears everything (including statistics).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

/// Number of shards in a [`ShardedBuildCache`].
pub const CACHE_SHARDS: usize = 16;

/// One in-flight computation of a cache entry: the leader executes the
/// instruction while waiters block on the condvar. `done` flips exactly once,
/// when the leader stores its result (or aborts by dropping its guard).
#[derive(Debug, Default)]
struct FlightSlot {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Outcome of [`ShardedBuildCache::lookup_or_lead`].
#[derive(Debug)]
pub enum CacheOutcome<'a> {
    /// The state was cached (or became cached while this caller waited on
    /// the in-flight leader computing it): adopt the shared snapshot.
    Hit(Arc<CachedState>),
    /// This caller is the *leader* for the digest: no cached entry exists
    /// and nobody else is computing one. Execute the instruction, then call
    /// [`FlightGuard::complete`]; dropping the guard without completing
    /// aborts the flight and promotes one waiter to leader.
    Lead(FlightGuard<'a>),
}

/// Leadership of one in-flight cache computation (see
/// [`ShardedBuildCache::lookup_or_lead`]). Dropping the guard without
/// calling [`FlightGuard::complete`] — the instruction failed, or the
/// executing thread panicked and is unwinding — releases the digest so a
/// waiting tenant retries instead of blocking forever.
#[derive(Debug)]
pub struct FlightGuard<'a> {
    cache: &'a ShardedBuildCache,
    id: Digest,
    finished: bool,
}

impl FlightGuard<'_> {
    /// Stores the computed state and wakes every waiter; they re-probe the
    /// cache and take the entry as a hit.
    pub fn complete(mut self, state: CachedState) {
        debug_assert_eq!(
            state.state_id, self.id,
            "flight completed with foreign state"
        );
        self.cache.store(state);
        self.finish();
    }

    /// Removes the flight slot and wakes waiters (who either hit the stored
    /// entry or race to become the next leader).
    fn finish(&mut self) {
        self.finished = true;
        let slot = lock_recover(&self.cache.flight).remove(&self.id);
        if let Some(slot) = slot {
            *lock_recover(&slot.done) = true;
            slot.cv.notify_all();
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.finish();
        }
    }
}

/// A [`BuildCache`] sharded 16 ways by digest prefix.
///
/// The stage executor shares one build cache across every concurrently
/// executing stage. A single `Mutex<BuildCache>` serializes all probes and
/// stores of a wide stage graph on one lock; sharding by the first digest
/// nibble keeps contention local to the 1/16th of key space two stages
/// happen to collide on. Chain digests are SHA-256 output, so keys spread
/// uniformly across shards.
///
/// Hit/miss statistics live in `AtomicU64`s on the wrapper: reading them
/// never takes a shard lock (the old implementation summed per-shard
/// counters under all sixteen locks).
///
/// **In-flight deduplication** (multi-tenant build farm): when several
/// builds execute the same instruction prefix concurrently, a plain
/// lookup/store protocol computes the state once *per build* — every build
/// misses before the first one stores. [`ShardedBuildCache::lookup_or_lead`]
/// closes that window: exactly one caller per digest becomes the *leader*
/// (a miss) and everyone else waits on the leader's [`FlightGuard`], then
/// adopts the stored snapshot as a hit. Total misses for N concurrent
/// identical builds equal those of a single build.
///
/// Shard and flight locks recover from poisoning (`clear_poison` +
/// `into_inner`, the PR 6 resolve-cache pattern): a build thread panicking
/// mid-probe must not wedge the cache shared by every other tenant.
#[derive(Debug, Default)]
pub struct ShardedBuildCache {
    shards: [Mutex<BuildCache>; CACHE_SHARDS],
    /// Digests currently being computed by a leader.
    flight: Mutex<HashMap<Digest, Arc<FlightSlot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Lookups that blocked on an in-flight leader and then adopted its
    /// result — work that would have been duplicated without dedup.
    deduped: AtomicU64,
}

impl ShardedBuildCache {
    /// Empty sharded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty sharded cache whose total entry count is capped at `capacity`
    /// (split evenly across shards, rounded up).
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = Self::default();
        cache.set_capacity(Some(capacity));
        cache
    }

    /// Sets (or removes) the total entry cap, splitting it across shards.
    /// Shrinking evicts LRU entries immediately; entries pinned by in-flight
    /// stages are never dropped.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let per_shard = capacity.map(|c| c.div_ceil(CACHE_SHARDS).max(1));
        for s in &self.shards {
            lock_recover(s).set_capacity(per_shard);
        }
    }

    /// The shard owning `id` (first nibble of the digest's leading byte).
    fn shard(&self, id: &Digest) -> &Mutex<BuildCache> {
        &self.shards[(id.0[0] & (CACHE_SHARDS as u8 - 1)) as usize]
    }

    /// Looks up a state in its shard, counting the hit or miss atomically.
    pub fn lookup(&self, id: &Digest) -> Option<Arc<CachedState>> {
        let hit = lock_recover(self.shard(id)).probe(id);
        match hit.is_some() {
            true => self.hits.fetch_add(1, Ordering::Relaxed),
            false => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Looks up a state with **in-flight deduplication**: a cached entry is
    /// a hit as usual; on a miss, the first caller per digest becomes the
    /// leader ([`CacheOutcome::Lead`], counted as the *only* miss) while
    /// concurrent callers for the same digest block until the leader
    /// completes, then adopt its stored snapshot as a hit. If the leader
    /// aborts (instruction failed or thread panicked), one waiter is
    /// promoted to leader and retries.
    ///
    /// Deadlock-free by construction: leadership is held only while
    /// executing a single instruction, which never waits on another digest.
    pub fn lookup_or_lead(&self, id: &Digest) -> CacheOutcome<'_> {
        let mut waited = false;
        loop {
            if let Some(hit) = lock_recover(self.shard(id)).probe(id) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if waited {
                    self.deduped.fetch_add(1, Ordering::Relaxed);
                }
                return CacheOutcome::Hit(hit);
            }
            let slot = {
                let mut flight = lock_recover(&self.flight);
                match flight.get(id) {
                    Some(slot) => Arc::clone(slot),
                    None => {
                        flight.insert(*id, Arc::new(FlightSlot::default()));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return CacheOutcome::Lead(FlightGuard {
                            cache: self,
                            id: *id,
                            finished: false,
                        });
                    }
                }
            };
            // Wait for the leader, then loop: either its result is now in
            // the shard (hit) or it aborted (race for the next leadership).
            let mut done = lock_recover(&slot.done);
            while !*done {
                done = slot
                    .cv
                    .wait(done)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            waited = true;
        }
    }

    /// Stores a state in its shard (evicting LRU entries past the cap).
    pub fn store(&self, state: CachedState) {
        lock_recover(self.shard(&state.state_id)).store(state);
    }

    /// Number of cached states across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).len()).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far (one relaxed atomic load; no shard locks).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed) as usize
    }

    /// Cache misses so far (one relaxed atomic load; no shard locks).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed) as usize
    }

    /// Lookups that blocked on an in-flight leader and adopted its result
    /// instead of recomputing (counted inside [`Self::hits`] too).
    pub fn deduped(&self) -> usize {
        self.deduped.load(Ordering::Relaxed) as usize
    }

    /// Entries evicted so far, summed across shards.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock_recover(s).evictions())
            .sum()
    }

    /// Clears every shard (including statistics). In-flight computations are
    /// left to complete; their stores land in the cleared cache.
    pub fn clear(&self) {
        for s in &self.shards {
            lock_recover(s).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.deduped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_state(id: Digest) -> CachedState {
        CachedState {
            fs: Filesystem::new_local(),
            config: ImageConfig::default(),
            fakeroot_db: LieDatabase::new(),
            state_id: id,
        }
    }

    #[test]
    fn state_id_chains() {
        let a = BuildCache::state_id(None, "FROM centos:7");
        let b = BuildCache::state_id(Some(&a), "RUN echo hello");
        let b2 = BuildCache::state_id(Some(&a), "RUN echo hello");
        assert_eq!(b, b2);
        assert_ne!(a, b);
        // Different parent -> different id for the same instruction.
        let other_parent = BuildCache::state_id(None, "FROM debian:buster");
        assert_ne!(
            BuildCache::state_id(Some(&other_parent), "RUN echo hello"),
            b
        );
    }

    #[test]
    fn lookup_hit_and_miss_counting() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        assert!(cache.lookup(&id).is_none());
        cache.store(dummy_state(id));
        assert!(cache.lookup(&id).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "x");
        cache.store(dummy_state(id));
        cache.lookup(&id);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn hit_path_shares_file_bytes_and_mutations_do_not_leak_back() {
        use hpcc_kernel::{Credentials, Gid, Uid, UserNamespace};
        use hpcc_vfs::{Actor, Mode};

        let creds = Credentials::host_root();
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);

        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file("/bin/tool", vec![9u8; 8192], Uid(0), Gid(0), Mode::EXEC_755)
            .unwrap();
        let mut cache = BuildCache::new();
        cache.store(state);

        // A hit hands out a filesystem whose file bytes are the cached ones —
        // shared, not deep-copied.
        let hit = cache.lookup(&id).unwrap();
        let mut working = hit.fs.clone();
        let cached_bytes = hit.fs.file_bytes(&actor, "/bin/tool").unwrap();
        let working_bytes = working.file_bytes(&actor, "/bin/tool").unwrap();
        assert!(cached_bytes.shares_buffer_with(&working_bytes));

        // Building on top of the snapshot never writes back into the cache.
        working
            .write_file(&actor, "/bin/tool", b"overwritten".to_vec(), Mode::EXEC_755)
            .unwrap();
        working
            .write_file(&actor, "/extra", b"x".to_vec(), Mode::FILE_644)
            .unwrap();
        let hit2 = cache.lookup(&id).unwrap();
        assert_eq!(
            hit2.fs.read_file(&actor, "/bin/tool").unwrap(),
            vec![9u8; 8192]
        );
        assert!(!hit2.fs.exists(&actor, "/extra"));
    }

    #[test]
    fn sharded_cache_spreads_keys_and_sums_stats() {
        let cache = ShardedBuildCache::new();
        let mut shard_indices = std::collections::HashSet::new();
        let mut ids = Vec::new();
        for i in 0..64 {
            let id = BuildCache::state_id(None, &format!("RUN step {}", i));
            shard_indices.insert((id.0[0] & (CACHE_SHARDS as u8 - 1)) as usize);
            cache.store(dummy_state(id));
            ids.push(id);
        }
        // SHA-256 output spreads across many shards, not one.
        assert!(
            shard_indices.len() > CACHE_SHARDS / 2,
            "{:?}",
            shard_indices
        );
        assert_eq!(cache.len(), 64);
        for id in &ids {
            assert!(cache.lookup(id).is_some());
        }
        assert!(cache
            .lookup(&BuildCache::state_id(None, "missing"))
            .is_none());
        assert_eq!(cache.hits(), 64);
        assert_eq!(cache.misses(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn sharded_cache_concurrent_store_lookup() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedBuildCache::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..32 {
                        let id = BuildCache::state_id(None, &format!("t{} i{}", t, i));
                        cache.store(dummy_state(id));
                        assert!(cache.lookup(&id).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4 * 32);
        assert_eq!(cache.hits(), 4 * 32);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let mut cache = BuildCache::with_capacity(3);
        let ids: Vec<Digest> = (0..4)
            .map(|i| BuildCache::state_id(None, &format!("RUN step {}", i)))
            .collect();
        for &id in &ids[..3] {
            cache.store(dummy_state(id));
        }
        // Touch id 0 so id 1 becomes the least recently used.
        assert!(cache.lookup(&ids[0]).is_some());
        cache.store(dummy_state(ids[3]));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&ids[1]).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&ids[0]).is_some());
        assert!(cache.lookup(&ids[3]).is_some());
    }

    #[test]
    fn eviction_never_drops_entries_pinned_by_in_flight_stages() {
        let mut cache = BuildCache::with_capacity(2);
        let pinned_id = BuildCache::state_id(None, "FROM centos:7");
        cache.store(dummy_state(pinned_id));
        // An in-flight stage holds the snapshot it adopted from the cache.
        let pinned = cache.lookup(&pinned_id).expect("just stored");
        // Flood the cache well past capacity.
        for i in 0..8 {
            cache.store(dummy_state(BuildCache::state_id(
                None,
                &format!("RUN flood {}", i),
            )));
        }
        assert!(
            cache.lookup(&pinned_id).is_some(),
            "pinned entry survived eviction pressure"
        );
        assert!(cache.len() <= 3, "unpinned entries were evicted");
        assert!(cache.evictions() >= 6);
        drop(pinned);
        // Once unpinned, the entry is evictable like any other.
        cache.set_capacity(Some(1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn when_everything_is_pinned_capacity_is_exceeded_not_violated() {
        let mut cache = BuildCache::new();
        let a = BuildCache::state_id(None, "a");
        let b = BuildCache::state_id(None, "b");
        cache.store(dummy_state(a));
        cache.store(dummy_state(b));
        let pin_a = cache.lookup(&a).unwrap();
        let pin_b = cache.lookup(&b).unwrap();
        // Both entries pinned by in-flight stages: shrinking the capacity
        // finds nothing evictable and the cache exceeds the cap instead.
        cache.set_capacity(Some(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a).is_some() && cache.lookup(&b).is_some());
        drop(pin_a);
        // One entry unpinned: the next store can now evict down toward the
        // cap (the unpinned LRU entry goes first).
        let c = BuildCache::state_id(None, "c");
        cache.store(dummy_state(c));
        assert!(cache.lookup(&a).is_none(), "unpinned LRU entry evicted");
        assert!(cache.lookup(&b).is_some(), "pinned entry survived");
        drop(pin_b);
    }

    #[test]
    fn sharded_capacity_splits_across_shards_and_counts_atomically() {
        let cache = ShardedBuildCache::with_capacity(16);
        for i in 0..256 {
            cache.store(dummy_state(BuildCache::state_id(
                None,
                &format!("RUN fill {}", i),
            )));
        }
        // Each shard holds at most ceil(16/16) = 1 entry.
        assert!(cache.len() <= CACHE_SHARDS, "len = {}", cache.len());
        assert!(cache.evictions() >= 200);
        // Atomic counters: reads do not require consistent shard locks.
        let before_hits = cache.hits();
        assert!(cache
            .lookup(&BuildCache::state_id(None, "definitely missing"))
            .is_none());
        assert_eq!(cache.hits(), before_hits);
        assert!(cache.misses() >= 1);
    }

    #[test]
    fn shard_locks_survive_poisoning() {
        let cache = ShardedBuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        cache.store(dummy_state(id));
        // Poison the shard the way a panicking build thread would: die while
        // holding the shard guard.
        let shard = cache.shard(&id);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.lock().unwrap();
            panic!("build thread dies while holding a cache shard lock");
        }));
        assert!(poison.is_err());
        assert!(shard.is_poisoned());
        // Every operation on the shard still works for other tenants…
        assert!(cache.lookup(&id).is_some());
        cache.store(dummy_state(BuildCache::state_id(Some(&id), "RUN x")));
        assert_eq!(cache.len(), 2);
        cache.set_capacity(Some(64));
        assert_eq!(cache.evictions(), 0);
        // …and recovery cleared the flag instead of paying the recovery
        // branch on every later lock.
        assert!(!shard.is_poisoned());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn lookup_or_lead_dedups_concurrent_identical_misses() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(ShardedBuildCache::new());
        let id = BuildCache::state_id(None, "RUN expensive step");
        let computed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                scope.spawn(move || match cache.lookup_or_lead(&id) {
                    CacheOutcome::Hit(state) => assert_eq!(state.state_id, id),
                    CacheOutcome::Lead(guard) => {
                        // Simulate instruction execution while 7 tenants wait.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        computed.fetch_add(1, Ordering::SeqCst);
                        guard.complete(dummy_state(id));
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one leader");
        assert_eq!(cache.misses(), 1, "waiters are hits, not misses");
        assert_eq!(cache.hits(), 7);
        assert!(
            cache.deduped() >= 1,
            "at least one lookup blocked and deduped"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn aborted_leader_promotes_a_waiter() {
        let cache = Arc::new(ShardedBuildCache::new());
        let id = BuildCache::state_id(None, "RUN flaky step");
        // First leader aborts by dropping its guard (failed instruction).
        let CacheOutcome::Lead(first) = cache.lookup_or_lead(&id) else {
            panic!("empty cache must elect a leader");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.lookup_or_lead(&id) {
                CacheOutcome::Hit(_) => panic!("abort must not produce a hit"),
                CacheOutcome::Lead(guard) => {
                    guard.complete(dummy_state(id));
                    true
                }
            })
        };
        // Give the waiter time to block on the flight slot, then abort.
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(first);
        assert!(waiter.join().unwrap(), "waiter was promoted to leader");
        assert!(
            cache.lookup(&id).is_some(),
            "promoted leader stored the state"
        );
        assert_eq!(cache.misses(), 2, "both leaderships count as misses");
    }

    #[test]
    fn leader_panic_unblocks_waiters_via_guard_drop() {
        let cache = Arc::new(ShardedBuildCache::new());
        let id = BuildCache::state_id(None, "RUN panicking step");
        std::thread::scope(|scope| {
            let leader = {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let outcome = cache.lookup_or_lead(&id);
                    if let CacheOutcome::Lead(_guard) = outcome {
                        panic!("stage executor dies mid-instruction");
                    }
                })
            };
            // The panicking leader's guard drop must wake this waiter and
            // hand it leadership instead of deadlocking the farm.
            std::thread::sleep(std::time::Duration::from_millis(10));
            match cache.lookup_or_lead(&id) {
                CacheOutcome::Hit(_) => panic!("no state was ever stored"),
                CacheOutcome::Lead(guard) => guard.complete(dummy_state(id)),
            }
            assert!(leader.join().is_err(), "leader panicked as arranged");
        });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_returns_shared_snapshot_without_deep_copy() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file(
                "/etc/os-release",
                b"CentOS 7".to_vec(),
                hpcc_kernel::Uid(0),
                hpcc_kernel::Gid(0),
                hpcc_vfs::Mode::FILE_644,
            )
            .unwrap();
        cache.store(state);
        let a = cache.lookup(&id).unwrap();
        let b = cache.lookup(&id).unwrap();
        // Both hits share one allocation of the cached state.
        assert!(Arc::ptr_eq(&a, &b));
    }
}
