//! Per-instruction build cache.
//!
//! The paper lists the lack of a build cache as a Charliecloud disadvantage
//! (§6.1 item 3): "This caching can greatly accelerate repetitive builds,
//! such as during iterative development." This module provides the cache so
//! the repository can both reproduce the cache-less behaviour and quantify
//! the improvement (EXPERIMENTS.md E15).

use std::collections::HashMap;

use hpcc_fakeroot::LieDatabase;
use hpcc_image::{sha256_str, Digest, ImageConfig};
use hpcc_vfs::Filesystem;

/// A cached build state: the filesystem and metadata after executing an
/// instruction.
#[derive(Debug, Clone)]
pub struct CachedState {
    /// Image filesystem snapshot.
    pub fs: Filesystem,
    /// Image configuration snapshot.
    pub config: ImageConfig,
    /// Fakeroot lie database snapshot.
    pub fakeroot_db: LieDatabase,
    /// State identifier (chain digest).
    pub state_id: Digest,
}

/// The cache: chain-digest keyed snapshots.
#[derive(Debug, Clone, Default)]
pub struct BuildCache {
    entries: HashMap<String, CachedState>,
    hits: usize,
    misses: usize,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the state id for executing `instruction` on top of `parent`.
    pub fn state_id(parent: Option<&Digest>, instruction: &str) -> Digest {
        let parent_str = parent
            .map(|d| d.to_oci_string())
            .unwrap_or_else(|| "scratch".to_string());
        sha256_str(&format!("{}\n{}", parent_str, instruction))
    }

    /// Looks up a state, counting a hit or miss.
    pub fn lookup(&mut self, id: &Digest) -> Option<CachedState> {
        match self.entries.get(&id.to_oci_string()) {
            Some(state) => {
                self.hits += 1;
                Some(state.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a state.
    pub fn store(&mut self, state: CachedState) {
        self.entries.insert(state.state_id.to_oci_string(), state);
    }

    /// Number of cached states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Clears everything (including statistics).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_state(id: Digest) -> CachedState {
        CachedState {
            fs: Filesystem::new_local(),
            config: ImageConfig::default(),
            fakeroot_db: LieDatabase::new(),
            state_id: id,
        }
    }

    #[test]
    fn state_id_chains() {
        let a = BuildCache::state_id(None, "FROM centos:7");
        let b = BuildCache::state_id(Some(&a), "RUN echo hello");
        let b2 = BuildCache::state_id(Some(&a), "RUN echo hello");
        assert_eq!(b, b2);
        assert_ne!(a, b);
        // Different parent -> different id for the same instruction.
        let other_parent = BuildCache::state_id(None, "FROM debian:buster");
        assert_ne!(BuildCache::state_id(Some(&other_parent), "RUN echo hello"), b);
    }

    #[test]
    fn lookup_hit_and_miss_counting() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        assert!(cache.lookup(&id).is_none());
        cache.store(dummy_state(id));
        assert!(cache.lookup(&id).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "x");
        cache.store(dummy_state(id));
        cache.lookup(&id);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }
}
