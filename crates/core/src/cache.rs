//! Per-instruction build cache.
//!
//! The paper lists the lack of a build cache as a Charliecloud disadvantage
//! (§6.1 item 3): "This caching can greatly accelerate repetitive builds,
//! such as during iterative development." This module provides the cache so
//! the repository can both reproduce the cache-less behaviour and quantify
//! the improvement (EXPERIMENTS.md E15).
//!
//! The cache is keyed directly on [`Digest`] (32 raw bytes, `Hash + Eq`) —
//! never on the rendered `sha256:<hex>` string — and a hit returns an
//! [`Arc`]-shared snapshot. Because [`Filesystem`] snapshots are
//! copy-on-write, a hit costs a reference-count bump plus O(metadata) on the
//! first subsequent mutation, not a deep copy of the image tree.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use hpcc_fakeroot::LieDatabase;
use hpcc_image::{Digest, ImageConfig, Sha256};
use hpcc_vfs::Filesystem;

/// A cached build state: the filesystem and metadata after executing an
/// instruction.
#[derive(Debug, Clone)]
pub struct CachedState {
    /// Image filesystem snapshot.
    pub fs: Filesystem,
    /// Image configuration snapshot.
    pub config: ImageConfig,
    /// Fakeroot lie database snapshot.
    pub fakeroot_db: LieDatabase,
    /// State identifier (chain digest).
    pub state_id: Digest,
}

/// The cache: chain-digest keyed snapshots.
#[derive(Debug, Clone, Default)]
pub struct BuildCache {
    entries: HashMap<Digest, Arc<CachedState>>,
    hits: usize,
    misses: usize,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the state id for executing `instruction` on top of `parent`.
    ///
    /// Hashes the parent digest's raw bytes and the instruction text through
    /// one incremental hasher — no intermediate strings are allocated.
    pub fn state_id(parent: Option<&Digest>, instruction: &str) -> Digest {
        let mut h = Sha256::new();
        match parent {
            Some(d) => h.update(&d.0),
            None => h.update(b"scratch"),
        }
        h.update(b"\n");
        h.update(instruction.as_bytes());
        h.finalize()
    }

    /// Looks up a state, counting a hit or miss. A hit shares the snapshot:
    /// mutating a filesystem cloned out of it never writes back into the
    /// cache (copy-on-write).
    pub fn lookup(&mut self, id: &Digest) -> Option<Arc<CachedState>> {
        match self.entries.get(id) {
            Some(state) => {
                self.hits += 1;
                Some(Arc::clone(state))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a state.
    pub fn store(&mut self, state: CachedState) {
        self.entries.insert(state.state_id, Arc::new(state));
    }

    /// Number of cached states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Clears everything (including statistics).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

/// Number of shards in a [`ShardedBuildCache`].
pub const CACHE_SHARDS: usize = 16;

/// A [`BuildCache`] sharded 16 ways by digest prefix.
///
/// The stage executor shares one build cache across every concurrently
/// executing stage. A single `Mutex<BuildCache>` serializes all probes and
/// stores of a wide stage graph on one lock; sharding by the first digest
/// nibble keeps contention local to the 1/16th of key space two stages
/// happen to collide on. Chain digests are SHA-256 output, so keys spread
/// uniformly across shards.
#[derive(Debug, Default)]
pub struct ShardedBuildCache {
    shards: [Mutex<BuildCache>; CACHE_SHARDS],
}

impl ShardedBuildCache {
    /// Empty sharded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard owning `id` (first nibble of the digest's leading byte).
    fn shard(&self, id: &Digest) -> &Mutex<BuildCache> {
        &self.shards[(id.0[0] & (CACHE_SHARDS as u8 - 1)) as usize]
    }

    /// Looks up a state in its shard, counting a hit or miss there.
    pub fn lookup(&self, id: &Digest) -> Option<Arc<CachedState>> {
        self.shard(id)
            .lock()
            .expect("build cache poisoned")
            .lookup(id)
    }

    /// Stores a state in its shard.
    pub fn store(&self, state: CachedState) {
        self.shard(&state.state_id)
            .lock()
            .expect("build cache poisoned")
            .store(state);
    }

    /// Number of cached states across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("build cache poisoned").len())
            .sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far, summed across shards.
    pub fn hits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("build cache poisoned").hits())
            .sum()
    }

    /// Cache misses so far, summed across shards.
    pub fn misses(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("build cache poisoned").misses())
            .sum()
    }

    /// Clears every shard (including statistics).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("build cache poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_state(id: Digest) -> CachedState {
        CachedState {
            fs: Filesystem::new_local(),
            config: ImageConfig::default(),
            fakeroot_db: LieDatabase::new(),
            state_id: id,
        }
    }

    #[test]
    fn state_id_chains() {
        let a = BuildCache::state_id(None, "FROM centos:7");
        let b = BuildCache::state_id(Some(&a), "RUN echo hello");
        let b2 = BuildCache::state_id(Some(&a), "RUN echo hello");
        assert_eq!(b, b2);
        assert_ne!(a, b);
        // Different parent -> different id for the same instruction.
        let other_parent = BuildCache::state_id(None, "FROM debian:buster");
        assert_ne!(
            BuildCache::state_id(Some(&other_parent), "RUN echo hello"),
            b
        );
    }

    #[test]
    fn lookup_hit_and_miss_counting() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        assert!(cache.lookup(&id).is_none());
        cache.store(dummy_state(id));
        assert!(cache.lookup(&id).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "x");
        cache.store(dummy_state(id));
        cache.lookup(&id);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn hit_path_shares_file_bytes_and_mutations_do_not_leak_back() {
        use hpcc_kernel::{Credentials, Gid, Uid, UserNamespace};
        use hpcc_vfs::{Actor, Mode};

        let creds = Credentials::host_root();
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);

        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file("/bin/tool", vec![9u8; 8192], Uid(0), Gid(0), Mode::EXEC_755)
            .unwrap();
        let mut cache = BuildCache::new();
        cache.store(state);

        // A hit hands out a filesystem whose file bytes are the cached ones —
        // shared, not deep-copied.
        let hit = cache.lookup(&id).unwrap();
        let mut working = hit.fs.clone();
        let cached_bytes = hit.fs.file_bytes(&actor, "/bin/tool").unwrap();
        let working_bytes = working.file_bytes(&actor, "/bin/tool").unwrap();
        assert!(cached_bytes.shares_buffer_with(&working_bytes));

        // Building on top of the snapshot never writes back into the cache.
        working
            .write_file(&actor, "/bin/tool", b"overwritten".to_vec(), Mode::EXEC_755)
            .unwrap();
        working
            .write_file(&actor, "/extra", b"x".to_vec(), Mode::FILE_644)
            .unwrap();
        let hit2 = cache.lookup(&id).unwrap();
        assert_eq!(
            hit2.fs.read_file(&actor, "/bin/tool").unwrap(),
            vec![9u8; 8192]
        );
        assert!(!hit2.fs.exists(&actor, "/extra"));
    }

    #[test]
    fn sharded_cache_spreads_keys_and_sums_stats() {
        let cache = ShardedBuildCache::new();
        let mut shard_indices = std::collections::HashSet::new();
        let mut ids = Vec::new();
        for i in 0..64 {
            let id = BuildCache::state_id(None, &format!("RUN step {}", i));
            shard_indices.insert((id.0[0] & (CACHE_SHARDS as u8 - 1)) as usize);
            cache.store(dummy_state(id));
            ids.push(id);
        }
        // SHA-256 output spreads across many shards, not one.
        assert!(
            shard_indices.len() > CACHE_SHARDS / 2,
            "{:?}",
            shard_indices
        );
        assert_eq!(cache.len(), 64);
        for id in &ids {
            assert!(cache.lookup(id).is_some());
        }
        assert!(cache
            .lookup(&BuildCache::state_id(None, "missing"))
            .is_none());
        assert_eq!(cache.hits(), 64);
        assert_eq!(cache.misses(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn sharded_cache_concurrent_store_lookup() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedBuildCache::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..32 {
                        let id = BuildCache::state_id(None, &format!("t{} i{}", t, i));
                        cache.store(dummy_state(id));
                        assert!(cache.lookup(&id).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4 * 32);
        assert_eq!(cache.hits(), 4 * 32);
    }

    #[test]
    fn hit_returns_shared_snapshot_without_deep_copy() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file(
                "/etc/os-release",
                b"CentOS 7".to_vec(),
                hpcc_kernel::Uid(0),
                hpcc_kernel::Gid(0),
                hpcc_vfs::Mode::FILE_644,
            )
            .unwrap();
        cache.store(state);
        let a = cache.lookup(&id).unwrap();
        let b = cache.lookup(&id).unwrap();
        // Both hits share one allocation of the cached state.
        assert!(Arc::ptr_eq(&a, &b));
    }
}
