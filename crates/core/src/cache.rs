//! Per-instruction build cache.
//!
//! The paper lists the lack of a build cache as a Charliecloud disadvantage
//! (§6.1 item 3): "This caching can greatly accelerate repetitive builds,
//! such as during iterative development." This module provides the cache so
//! the repository can both reproduce the cache-less behaviour and quantify
//! the improvement (EXPERIMENTS.md E15).
//!
//! The cache is keyed directly on [`Digest`] (32 raw bytes, `Hash + Eq`) —
//! never on the rendered `sha256:<hex>` string — and a hit returns an
//! [`Arc`]-shared snapshot. Because [`Filesystem`] snapshots are
//! copy-on-write, a hit costs a reference-count bump plus O(metadata) on the
//! first subsequent mutation, not a deep copy of the image tree.

use std::collections::HashMap;
use std::sync::Arc;

use hpcc_fakeroot::LieDatabase;
use hpcc_image::{Digest, ImageConfig, Sha256};
use hpcc_vfs::Filesystem;

/// A cached build state: the filesystem and metadata after executing an
/// instruction.
#[derive(Debug, Clone)]
pub struct CachedState {
    /// Image filesystem snapshot.
    pub fs: Filesystem,
    /// Image configuration snapshot.
    pub config: ImageConfig,
    /// Fakeroot lie database snapshot.
    pub fakeroot_db: LieDatabase,
    /// State identifier (chain digest).
    pub state_id: Digest,
}

/// The cache: chain-digest keyed snapshots.
#[derive(Debug, Clone, Default)]
pub struct BuildCache {
    entries: HashMap<Digest, Arc<CachedState>>,
    hits: usize,
    misses: usize,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the state id for executing `instruction` on top of `parent`.
    ///
    /// Hashes the parent digest's raw bytes and the instruction text through
    /// one incremental hasher — no intermediate strings are allocated.
    pub fn state_id(parent: Option<&Digest>, instruction: &str) -> Digest {
        let mut h = Sha256::new();
        match parent {
            Some(d) => h.update(&d.0),
            None => h.update(b"scratch"),
        }
        h.update(b"\n");
        h.update(instruction.as_bytes());
        h.finalize()
    }

    /// Looks up a state, counting a hit or miss. A hit shares the snapshot:
    /// mutating a filesystem cloned out of it never writes back into the
    /// cache (copy-on-write).
    pub fn lookup(&mut self, id: &Digest) -> Option<Arc<CachedState>> {
        match self.entries.get(id) {
            Some(state) => {
                self.hits += 1;
                Some(Arc::clone(state))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a state.
    pub fn store(&mut self, state: CachedState) {
        self.entries.insert(state.state_id, Arc::new(state));
    }

    /// Number of cached states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Clears everything (including statistics).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_state(id: Digest) -> CachedState {
        CachedState {
            fs: Filesystem::new_local(),
            config: ImageConfig::default(),
            fakeroot_db: LieDatabase::new(),
            state_id: id,
        }
    }

    #[test]
    fn state_id_chains() {
        let a = BuildCache::state_id(None, "FROM centos:7");
        let b = BuildCache::state_id(Some(&a), "RUN echo hello");
        let b2 = BuildCache::state_id(Some(&a), "RUN echo hello");
        assert_eq!(b, b2);
        assert_ne!(a, b);
        // Different parent -> different id for the same instruction.
        let other_parent = BuildCache::state_id(None, "FROM debian:buster");
        assert_ne!(
            BuildCache::state_id(Some(&other_parent), "RUN echo hello"),
            b
        );
    }

    #[test]
    fn lookup_hit_and_miss_counting() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        assert!(cache.lookup(&id).is_none());
        cache.store(dummy_state(id));
        assert!(cache.lookup(&id).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "x");
        cache.store(dummy_state(id));
        cache.lookup(&id);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn hit_path_shares_file_bytes_and_mutations_do_not_leak_back() {
        use hpcc_kernel::{Credentials, Gid, Uid, UserNamespace};
        use hpcc_vfs::{Actor, Mode};

        let creds = Credentials::host_root();
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);

        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file("/bin/tool", vec![9u8; 8192], Uid(0), Gid(0), Mode::EXEC_755)
            .unwrap();
        let mut cache = BuildCache::new();
        cache.store(state);

        // A hit hands out a filesystem whose file bytes are the cached ones —
        // shared, not deep-copied.
        let hit = cache.lookup(&id).unwrap();
        let mut working = hit.fs.clone();
        let cached_bytes = hit.fs.file_bytes(&actor, "/bin/tool").unwrap();
        let working_bytes = working.file_bytes(&actor, "/bin/tool").unwrap();
        assert!(cached_bytes.shares_buffer_with(&working_bytes));

        // Building on top of the snapshot never writes back into the cache.
        working
            .write_file(&actor, "/bin/tool", b"overwritten".to_vec(), Mode::EXEC_755)
            .unwrap();
        working
            .write_file(&actor, "/extra", b"x".to_vec(), Mode::FILE_644)
            .unwrap();
        let hit2 = cache.lookup(&id).unwrap();
        assert_eq!(
            hit2.fs.read_file(&actor, "/bin/tool").unwrap(),
            vec![9u8; 8192]
        );
        assert!(!hit2.fs.exists(&actor, "/extra"));
    }

    #[test]
    fn hit_returns_shared_snapshot_without_deep_copy() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file(
                "/etc/os-release",
                b"CentOS 7".to_vec(),
                hpcc_kernel::Uid(0),
                hpcc_kernel::Gid(0),
                hpcc_vfs::Mode::FILE_644,
            )
            .unwrap();
        cache.store(state);
        let a = cache.lookup(&id).unwrap();
        let b = cache.lookup(&id).unwrap();
        // Both hits share one allocation of the cached state.
        assert!(Arc::ptr_eq(&a, &b));
    }
}
