//! Per-instruction build cache.
//!
//! The paper lists the lack of a build cache as a Charliecloud disadvantage
//! (§6.1 item 3): "This caching can greatly accelerate repetitive builds,
//! such as during iterative development." This module provides the cache so
//! the repository can both reproduce the cache-less behaviour and quantify
//! the improvement (EXPERIMENTS.md E15).
//!
//! The cache is keyed directly on [`Digest`] (32 raw bytes, `Hash + Eq`) —
//! never on the rendered `sha256:<hex>` string — and a hit returns an
//! [`Arc`]-shared snapshot. Because [`Filesystem`] snapshots are
//! copy-on-write, a hit costs a reference-count bump plus O(metadata) on the
//! first subsequent mutation, not a deep copy of the image tree.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hpcc_fakeroot::LieDatabase;
use hpcc_image::{Digest, ImageConfig, Sha256};
use hpcc_vfs::Filesystem;

/// A cached build state: the filesystem and metadata after executing an
/// instruction.
#[derive(Debug, Clone)]
pub struct CachedState {
    /// Image filesystem snapshot.
    pub fs: Filesystem,
    /// Image configuration snapshot.
    pub config: ImageConfig,
    /// Fakeroot lie database snapshot.
    pub fakeroot_db: LieDatabase,
    /// State identifier (chain digest).
    pub state_id: Digest,
}

/// The cache: chain-digest keyed snapshots, with optional LRU eviction.
///
/// When a capacity is set, inserting past it evicts the least-recently-used
/// entry — but never one still **pinned** by an in-flight stage: a pinned
/// entry is one whose `Arc` has an outstanding reference beyond the cache's
/// own (a stage adopted the snapshot and is still building on it). If every
/// entry is pinned the cache temporarily exceeds its capacity rather than
/// invalidating live state.
#[derive(Debug, Clone, Default)]
pub struct BuildCache {
    entries: HashMap<Digest, (Arc<CachedState>, u64)>,
    /// Monotonic recency clock; bumped on every lookup hit and store.
    tick: u64,
    /// Maximum entries to retain (`None` = unbounded).
    capacity: Option<usize>,
    /// Entries evicted so far.
    evictions: u64,
    hits: usize,
    misses: usize,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache that evicts least-recently-used entries past `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BuildCache {
            capacity: Some(capacity),
            ..Default::default()
        }
    }

    /// Sets (or removes) the entry cap. Shrinking evicts immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        self.evict_to_capacity();
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Computes the state id for executing `instruction` on top of `parent`.
    ///
    /// Hashes the parent digest's raw bytes and the instruction text through
    /// one incremental hasher — no intermediate strings are allocated.
    pub fn state_id(parent: Option<&Digest>, instruction: &str) -> Digest {
        let mut h = Sha256::new();
        match parent {
            Some(d) => h.update(&d.0),
            None => h.update(b"scratch"),
        }
        h.update(b"\n");
        h.update(instruction.as_bytes());
        h.finalize()
    }

    /// Looks up a state, counting a hit or miss. A hit shares the snapshot:
    /// mutating a filesystem cloned out of it never writes back into the
    /// cache (copy-on-write).
    pub fn lookup(&mut self, id: &Digest) -> Option<Arc<CachedState>> {
        match self.probe(id) {
            Some(state) => {
                self.hits += 1;
                Some(state)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a state and refreshes its recency *without* touching the
    /// hit/miss counters — the sharded wrapper counts via atomics instead.
    pub fn probe(&mut self, id: &Digest) -> Option<Arc<CachedState>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(id).map(|slot| {
            slot.1 = tick;
            Arc::clone(&slot.0)
        })
    }

    /// Stores a state, evicting LRU entries past the capacity.
    pub fn store(&mut self, state: CachedState) {
        self.tick += 1;
        self.entries
            .insert(state.state_id, (Arc::new(state), self.tick));
        self.evict_to_capacity();
    }

    /// Evicts least-recently-used entries until within capacity, skipping
    /// entries pinned by in-flight stages (outstanding `Arc` references).
    fn evict_to_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.entries.len() > cap {
            let victim = self
                .entries
                .iter()
                .filter(|(_, (state, _))| Arc::strong_count(state) == 1)
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.entries.remove(&id);
                    self.evictions += 1;
                }
                // Everything is pinned: exceed capacity rather than drop
                // state a stage is still building on.
                None => break,
            }
        }
    }

    /// Number of cached states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Clears everything (including statistics).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

/// Number of shards in a [`ShardedBuildCache`].
pub const CACHE_SHARDS: usize = 16;

/// A [`BuildCache`] sharded 16 ways by digest prefix.
///
/// The stage executor shares one build cache across every concurrently
/// executing stage. A single `Mutex<BuildCache>` serializes all probes and
/// stores of a wide stage graph on one lock; sharding by the first digest
/// nibble keeps contention local to the 1/16th of key space two stages
/// happen to collide on. Chain digests are SHA-256 output, so keys spread
/// uniformly across shards.
///
/// Hit/miss statistics live in `AtomicU64`s on the wrapper: reading them
/// never takes a shard lock (the old implementation summed per-shard
/// counters under all sixteen locks).
#[derive(Debug, Default)]
pub struct ShardedBuildCache {
    shards: [Mutex<BuildCache>; CACHE_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedBuildCache {
    /// Empty sharded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty sharded cache whose total entry count is capped at `capacity`
    /// (split evenly across shards, rounded up).
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = Self::default();
        cache.set_capacity(Some(capacity));
        cache
    }

    /// Sets (or removes) the total entry cap, splitting it across shards.
    /// Shrinking evicts LRU entries immediately; entries pinned by in-flight
    /// stages are never dropped.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let per_shard = capacity.map(|c| c.div_ceil(CACHE_SHARDS).max(1));
        for s in &self.shards {
            s.lock()
                .expect("build cache poisoned")
                .set_capacity(per_shard);
        }
    }

    /// The shard owning `id` (first nibble of the digest's leading byte).
    fn shard(&self, id: &Digest) -> &Mutex<BuildCache> {
        &self.shards[(id.0[0] & (CACHE_SHARDS as u8 - 1)) as usize]
    }

    /// Looks up a state in its shard, counting the hit or miss atomically.
    pub fn lookup(&self, id: &Digest) -> Option<Arc<CachedState>> {
        let hit = self
            .shard(id)
            .lock()
            .expect("build cache poisoned")
            .probe(id);
        match hit.is_some() {
            true => self.hits.fetch_add(1, Ordering::Relaxed),
            false => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores a state in its shard (evicting LRU entries past the cap).
    pub fn store(&self, state: CachedState) {
        self.shard(&state.state_id)
            .lock()
            .expect("build cache poisoned")
            .store(state);
    }

    /// Number of cached states across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("build cache poisoned").len())
            .sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far (one relaxed atomic load; no shard locks).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed) as usize
    }

    /// Cache misses so far (one relaxed atomic load; no shard locks).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed) as usize
    }

    /// Entries evicted so far, summed across shards.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("build cache poisoned").evictions())
            .sum()
    }

    /// Clears every shard (including statistics).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("build cache poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_state(id: Digest) -> CachedState {
        CachedState {
            fs: Filesystem::new_local(),
            config: ImageConfig::default(),
            fakeroot_db: LieDatabase::new(),
            state_id: id,
        }
    }

    #[test]
    fn state_id_chains() {
        let a = BuildCache::state_id(None, "FROM centos:7");
        let b = BuildCache::state_id(Some(&a), "RUN echo hello");
        let b2 = BuildCache::state_id(Some(&a), "RUN echo hello");
        assert_eq!(b, b2);
        assert_ne!(a, b);
        // Different parent -> different id for the same instruction.
        let other_parent = BuildCache::state_id(None, "FROM debian:buster");
        assert_ne!(
            BuildCache::state_id(Some(&other_parent), "RUN echo hello"),
            b
        );
    }

    #[test]
    fn lookup_hit_and_miss_counting() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        assert!(cache.lookup(&id).is_none());
        cache.store(dummy_state(id));
        assert!(cache.lookup(&id).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "x");
        cache.store(dummy_state(id));
        cache.lookup(&id);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn hit_path_shares_file_bytes_and_mutations_do_not_leak_back() {
        use hpcc_kernel::{Credentials, Gid, Uid, UserNamespace};
        use hpcc_vfs::{Actor, Mode};

        let creds = Credentials::host_root();
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);

        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file("/bin/tool", vec![9u8; 8192], Uid(0), Gid(0), Mode::EXEC_755)
            .unwrap();
        let mut cache = BuildCache::new();
        cache.store(state);

        // A hit hands out a filesystem whose file bytes are the cached ones —
        // shared, not deep-copied.
        let hit = cache.lookup(&id).unwrap();
        let mut working = hit.fs.clone();
        let cached_bytes = hit.fs.file_bytes(&actor, "/bin/tool").unwrap();
        let working_bytes = working.file_bytes(&actor, "/bin/tool").unwrap();
        assert!(cached_bytes.shares_buffer_with(&working_bytes));

        // Building on top of the snapshot never writes back into the cache.
        working
            .write_file(&actor, "/bin/tool", b"overwritten".to_vec(), Mode::EXEC_755)
            .unwrap();
        working
            .write_file(&actor, "/extra", b"x".to_vec(), Mode::FILE_644)
            .unwrap();
        let hit2 = cache.lookup(&id).unwrap();
        assert_eq!(
            hit2.fs.read_file(&actor, "/bin/tool").unwrap(),
            vec![9u8; 8192]
        );
        assert!(!hit2.fs.exists(&actor, "/extra"));
    }

    #[test]
    fn sharded_cache_spreads_keys_and_sums_stats() {
        let cache = ShardedBuildCache::new();
        let mut shard_indices = std::collections::HashSet::new();
        let mut ids = Vec::new();
        for i in 0..64 {
            let id = BuildCache::state_id(None, &format!("RUN step {}", i));
            shard_indices.insert((id.0[0] & (CACHE_SHARDS as u8 - 1)) as usize);
            cache.store(dummy_state(id));
            ids.push(id);
        }
        // SHA-256 output spreads across many shards, not one.
        assert!(
            shard_indices.len() > CACHE_SHARDS / 2,
            "{:?}",
            shard_indices
        );
        assert_eq!(cache.len(), 64);
        for id in &ids {
            assert!(cache.lookup(id).is_some());
        }
        assert!(cache
            .lookup(&BuildCache::state_id(None, "missing"))
            .is_none());
        assert_eq!(cache.hits(), 64);
        assert_eq!(cache.misses(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn sharded_cache_concurrent_store_lookup() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedBuildCache::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..32 {
                        let id = BuildCache::state_id(None, &format!("t{} i{}", t, i));
                        cache.store(dummy_state(id));
                        assert!(cache.lookup(&id).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4 * 32);
        assert_eq!(cache.hits(), 4 * 32);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let mut cache = BuildCache::with_capacity(3);
        let ids: Vec<Digest> = (0..4)
            .map(|i| BuildCache::state_id(None, &format!("RUN step {}", i)))
            .collect();
        for &id in &ids[..3] {
            cache.store(dummy_state(id));
        }
        // Touch id 0 so id 1 becomes the least recently used.
        assert!(cache.lookup(&ids[0]).is_some());
        cache.store(dummy_state(ids[3]));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&ids[1]).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&ids[0]).is_some());
        assert!(cache.lookup(&ids[3]).is_some());
    }

    #[test]
    fn eviction_never_drops_entries_pinned_by_in_flight_stages() {
        let mut cache = BuildCache::with_capacity(2);
        let pinned_id = BuildCache::state_id(None, "FROM centos:7");
        cache.store(dummy_state(pinned_id));
        // An in-flight stage holds the snapshot it adopted from the cache.
        let pinned = cache.lookup(&pinned_id).expect("just stored");
        // Flood the cache well past capacity.
        for i in 0..8 {
            cache.store(dummy_state(BuildCache::state_id(
                None,
                &format!("RUN flood {}", i),
            )));
        }
        assert!(
            cache.lookup(&pinned_id).is_some(),
            "pinned entry survived eviction pressure"
        );
        assert!(cache.len() <= 3, "unpinned entries were evicted");
        assert!(cache.evictions() >= 6);
        drop(pinned);
        // Once unpinned, the entry is evictable like any other.
        cache.set_capacity(Some(1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn when_everything_is_pinned_capacity_is_exceeded_not_violated() {
        let mut cache = BuildCache::new();
        let a = BuildCache::state_id(None, "a");
        let b = BuildCache::state_id(None, "b");
        cache.store(dummy_state(a));
        cache.store(dummy_state(b));
        let pin_a = cache.lookup(&a).unwrap();
        let pin_b = cache.lookup(&b).unwrap();
        // Both entries pinned by in-flight stages: shrinking the capacity
        // finds nothing evictable and the cache exceeds the cap instead.
        cache.set_capacity(Some(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a).is_some() && cache.lookup(&b).is_some());
        drop(pin_a);
        // One entry unpinned: the next store can now evict down toward the
        // cap (the unpinned LRU entry goes first).
        let c = BuildCache::state_id(None, "c");
        cache.store(dummy_state(c));
        assert!(cache.lookup(&a).is_none(), "unpinned LRU entry evicted");
        assert!(cache.lookup(&b).is_some(), "pinned entry survived");
        drop(pin_b);
    }

    #[test]
    fn sharded_capacity_splits_across_shards_and_counts_atomically() {
        let cache = ShardedBuildCache::with_capacity(16);
        for i in 0..256 {
            cache.store(dummy_state(BuildCache::state_id(
                None,
                &format!("RUN fill {}", i),
            )));
        }
        // Each shard holds at most ceil(16/16) = 1 entry.
        assert!(cache.len() <= CACHE_SHARDS, "len = {}", cache.len());
        assert!(cache.evictions() >= 200);
        // Atomic counters: reads do not require consistent shard locks.
        let before_hits = cache.hits();
        assert!(cache
            .lookup(&BuildCache::state_id(None, "definitely missing"))
            .is_none());
        assert_eq!(cache.hits(), before_hits);
        assert!(cache.misses() >= 1);
    }

    #[test]
    fn hit_returns_shared_snapshot_without_deep_copy() {
        let mut cache = BuildCache::new();
        let id = BuildCache::state_id(None, "FROM centos:7");
        let mut state = dummy_state(id);
        state
            .fs
            .install_file(
                "/etc/os-release",
                b"CentOS 7".to_vec(),
                hpcc_kernel::Uid(0),
                hpcc_kernel::Gid(0),
                hpcc_vfs::Mode::FILE_644,
            )
            .unwrap();
        cache.store(state);
        let a = cache.lookup(&id).unwrap();
        let b = cache.lookup(&id).unwrap();
        // Both hits share one allocation of the cached state.
        assert!(Arc::ptr_eq(&a, &b));
    }
}
