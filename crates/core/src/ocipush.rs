//! Pushing built images to an OCI distribution registry (`hpcc-oci`), with
//! single-layer or base-plus-diff layering and the §6.2.5 flatten marking.
//!
//! The paper contrasts Charliecloud's single-layer, ownership-flattened push
//! with the multi-layer pushes of Podman and Docker (§6.1 disadvantage 2) and
//! proposes an explicit image marking for ownership flattening (§6.2.5). This
//! module implements both: a built image can be exported either as one
//! squashed layer or as the base-image layer plus a diff layer, and the
//! image's `LABEL org.hpc.container.ownership.flatten=<policy>` (the
//! Dockerfile-language half of the §6.2.5 proposal) travels to the registry
//! as a manifest annotation.

use hpcc_distro::base_image;
use hpcc_image::{Digest, Image, ImageConfig, Layer, OwnershipMode};
use hpcc_kernel::{Credentials, UserNamespace};
use hpcc_oci::{ApiError, DistributionRegistry, FlattenPolicy, Platform, FLATTEN_ANNOTATION};
use hpcc_vfs::{tar, Actor, Filesystem};

use crate::builder::{Builder, BuilderKind, BuiltImage};

/// How to slice the built filesystem into layers for push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerMode {
    /// One squashed layer, ownership flattened — the Charliecloud push (§6.1).
    SingleFlattened,
    /// Two layers — the unmodified base image plus a diff of everything the
    /// build changed — with namespace-view ownership preserved, as multi-layer
    /// builders push.
    BaseAndDiff,
}

/// The outcome of an OCI push.
#[derive(Debug, Clone)]
pub struct OciPushReport {
    /// Manifest digest in the registry.
    pub manifest_digest: Digest,
    /// Number of layers pushed.
    pub layer_count: usize,
    /// Total layer bytes offered to the registry.
    pub bytes_offered: u64,
    /// The flatten policy requested by the image's LABEL (if any).
    pub requested_policy: FlattenPolicy,
}

/// The flatten policy requested by the image itself via
/// `LABEL org.hpc.container.ownership.flatten=...` — the Dockerfile-language
/// half of the §6.2.5 proposal. Absent or unparsable labels mean "allow".
pub fn requested_flatten_policy(built: &BuiltImage) -> FlattenPolicy {
    built
        .config
        .labels
        .get(FLATTEN_ANNOTATION)
        .and_then(|v| FlattenPolicy::parse(v).ok())
        .unwrap_or_default()
}

/// Maps the builder's architecture string (`uname -m` vocabulary) to an OCI
/// platform.
pub fn platform_for_arch(arch: &str) -> Platform {
    Platform::from_uname(arch).unwrap_or_else(Platform::linux_amd64)
}

fn push_actor(builder: &Builder) -> (Credentials, UserNamespace) {
    match &builder.kind {
        BuilderKind::Docker => (Credentials::host_root(), UserNamespace::initial()),
        BuilderKind::RootlessPodman { subuid, .. } => {
            let range = subuid.ranges_for(&builder.invoker.name).first().copied();
            let ns = match range {
                Some(r) => {
                    UserNamespace::type2(builder.invoker.uid, builder.invoker.gid, r.start, r.count)
                }
                None => UserNamespace::type3(builder.invoker.uid, builder.invoker.gid),
            };
            (builder.invoker.host_creds().entered_own_namespace(), ns)
        }
        BuilderKind::ChImage => (
            builder.invoker.host_creds().entered_own_namespace(),
            UserNamespace::type3(builder.invoker.uid, builder.invoker.gid),
        ),
    }
}

/// Computes the diff of `built` relative to `base`: every path that is new or
/// whose content, size, or *in-container* ownership/mode changed, copied into
/// a fresh filesystem.
///
/// Ownership is compared in the namespace view (`uid_view`/`gid_view`), not in
/// host IDs: a Type III build stores every file as the invoking user on the
/// host, but inside the container those files still *appear* root-owned, and
/// it is the container-visible identity that decides whether a layer needs to
/// record the file again.
fn diff_filesystem(base: &Filesystem, built: &Filesystem, built_actor: &Actor) -> Filesystem {
    let root_creds = Credentials::host_root();
    let host_ns = UserNamespace::initial();
    let base_actor = Actor::new(&root_creds, &host_ns);
    let mut diff = Filesystem::new_local();
    for (path, _) in built.walk() {
        let new_stat = match built.lstat(built_actor, &path) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let changed = match base.lstat(&base_actor, &path) {
            Err(_) => true,
            Ok(old_stat) => {
                old_stat.uid_view != new_stat.uid_view
                    || old_stat.gid_view != new_stat.gid_view
                    || old_stat.mode != new_stat.mode
                    || old_stat.size != new_stat.size
                    || match (
                        base.read_file(&base_actor, &path),
                        built.read_file(built_actor, &path),
                    ) {
                        (Ok(a), Ok(b)) => a != b,
                        _ => false,
                    }
            }
        };
        if !changed || new_stat.file_type.is_device() {
            continue;
        }
        // Copy only this node: the walk visits every descendant separately, so
        // copying subtrees here would drag unchanged base files into the diff.
        if new_stat.file_type == hpcc_vfs::FileType::Directory {
            let _ = diff.install_dir(&path, new_stat.uid_host, new_stat.gid_host, new_stat.mode);
        } else {
            let _ = diff.copy_tree_from(built, &path, &path);
        }
    }
    diff
}

/// Pushes a locally built image to an OCI distribution registry.
///
/// * `repo`/`reference_tag` name the target (`repo:tag` in the registry).
/// * `layer_mode` selects single-layer flattened vs base-plus-diff preserved.
/// * The §6.2.5 annotation is attached from the image's LABEL; the registry
///   additionally enforces its own per-repository policy and may reject the
///   push with [`ApiError::Unsupported`].
pub fn push_to_oci(
    builder: &Builder,
    tag: &str,
    registry: &mut DistributionRegistry,
    repo: &str,
    reference_tag: &str,
    layer_mode: LayerMode,
) -> Result<OciPushReport, ApiError> {
    let built = builder.image(tag).ok_or(ApiError::NameUnknown)?;
    let (creds, userns) = push_actor(builder);
    let actor = Actor::new(&creds, &userns);
    let mut cfg: ImageConfig = built.config.clone();
    cfg.architecture = built.arch.clone();
    let requested = requested_flatten_policy(built);
    let reference = format!("{}/{}:{}", registry.host(), repo, reference_tag);

    let image = match layer_mode {
        LayerMode::SingleFlattened => Image::from_fs_flattened(&reference, &built.fs, &actor, cfg)
            .map_err(|_| ApiError::ManifestInvalid)?,
        LayerMode::BaseAndDiff => {
            let base =
                base_image(&built.base_reference, &built.arch).ok_or(ApiError::ManifestInvalid)?;
            let root_creds = Credentials::host_root();
            let host_ns = UserNamespace::initial();
            let root = Actor::new(&root_creds, &host_ns);
            let opts = tar::PackOptions {
                ownership: tar::OwnershipPolicy::NamespaceView,
                skip_devices: true,
                clear_setid: false,
            };
            // Layers are hashed while the tar stream is produced; file bytes
            // flow from the copy-on-write store without materializing copies.
            let base_layer = Layer::pack_from_fs(&base.fs, &root, "/", &opts)
                .map_err(|_| ApiError::ManifestInvalid)?;
            let diff_fs = diff_filesystem(&base.fs, &built.fs, &actor);
            let diff_layer = Layer::pack_from_fs(&diff_fs, &actor, "/", &opts)
                .map_err(|_| ApiError::ManifestInvalid)?;
            Image {
                reference,
                config: cfg,
                layers: vec![base_layer, diff_layer],
                ownership: OwnershipMode::Preserved,
            }
        }
    };
    requested.check(image.ownership)?;

    let platform = platform_for_arch(&built.arch);
    let bytes_offered = image.total_size() as u64;
    let layer_count = image.layers.len();
    let manifest_digest =
        registry.push_image(&builder.invoker.name, repo, reference_tag, platform, &image)?;
    Ok(OciPushReport {
        manifest_digest,
        layer_count,
        bytes_offered,
        requested_policy: requested,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, Builder};
    use crate::dockerfile::centos7_dockerfile;
    use hpcc_runtime::Invoker;

    fn built_builder(force: bool) -> Builder {
        let alice = Invoker::user("alice", 1000, 1000);
        let mut b = Builder::ch_image(alice);
        let mut opts = BuildOptions::new("foo");
        if force {
            opts = opts.with_force();
        }
        let report = b.build(centos7_dockerfile(), &opts, None);
        assert!(report.success, "{}", report.transcript_text());
        b
    }

    fn registry() -> DistributionRegistry {
        DistributionRegistry::new("registry.example.gov", &["alice"])
    }

    #[test]
    fn single_flattened_push_has_one_layer() {
        let b = built_builder(true);
        let mut reg = registry();
        let report = push_to_oci(
            &b,
            "foo",
            &mut reg,
            "hpc/foo",
            "1.0",
            LayerMode::SingleFlattened,
        )
        .unwrap();
        assert_eq!(report.layer_count, 1);
        assert_eq!(report.requested_policy, FlattenPolicy::Allow);
        assert_eq!(reg.tags("hpc/foo").unwrap(), vec!["1.0"]);
    }

    #[test]
    fn base_and_diff_push_has_two_layers_and_smaller_diff() {
        let b = built_builder(true);
        let mut reg = registry();
        let report = push_to_oci(
            &b,
            "foo",
            &mut reg,
            "hpc/foo",
            "2.0",
            LayerMode::BaseAndDiff,
        )
        .unwrap();
        assert_eq!(report.layer_count, 2);
        let pulled = reg
            .pull_for_platform("alice", "hpc/foo", "2.0", &Platform::linux_amd64())
            .unwrap();
        assert_eq!(pulled.image.layers.len(), 2);
        // The diff layer records only what the build changed: base-image files
        // the build never touched appear in the base layer but not the diff.
        let base_entries = tar::list(&pulled.image.layers[0].tar).unwrap();
        let diff_entries = tar::list(&pulled.image.layers[1].tar).unwrap();
        assert!(base_entries
            .iter()
            .any(|e| e.path.contains("redhat-release")));
        assert!(!diff_entries
            .iter()
            .any(|e| e.path.contains("redhat-release")));
        // And the diff is not empty — the yum install added real payload.
        assert!(!diff_entries.is_empty());
    }

    #[test]
    fn flatten_label_is_respected() {
        // A built image whose Dockerfile requested `disallow` cannot be pushed
        // flattened — the Type III builder cannot satisfy it (§6.2.5).
        let alice = Invoker::user("alice", 1000, 1000);
        let mut b = Builder::ch_image(alice);
        let df = format!(
            "FROM centos:7\nLABEL {}=disallow\nRUN echo hello\n",
            FLATTEN_ANNOTATION
        );
        let report = b.build(&df, &BuildOptions::new("marked"), None);
        assert!(report.success);
        let mut reg = registry();
        let err = push_to_oci(
            &b,
            "marked",
            &mut reg,
            "hpc/marked",
            "1.0",
            LayerMode::SingleFlattened,
        )
        .unwrap_err();
        assert_eq!(err, ApiError::Unsupported);
        // The same image pushes fine preserved (base+diff).
        push_to_oci(
            &b,
            "marked",
            &mut reg,
            "hpc/marked",
            "1.0",
            LayerMode::BaseAndDiff,
        )
        .unwrap();
    }

    #[test]
    fn unknown_tag_is_name_unknown() {
        let b = built_builder(true);
        let mut reg = registry();
        assert_eq!(
            push_to_oci(&b, "nope", &mut reg, "x/y", "1", LayerMode::SingleFlattened).unwrap_err(),
            ApiError::NameUnknown
        );
    }

    #[test]
    fn platform_mapping_covers_hpc_architectures() {
        assert_eq!(platform_for_arch("aarch64"), Platform::linux_arm64());
        assert_eq!(platform_for_arch("x86_64"), Platform::linux_amd64());
        assert_eq!(platform_for_arch("ppc64le"), Platform::linux_ppc64le());
    }
}
