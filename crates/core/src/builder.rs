//! Container image builders for the three privilege types.
//!
//! * [`BuilderKind::Docker`] — Type I baseline (privileged daemon build).
//! * [`BuilderKind::RootlessPodman`] — Type II: privileged user-namespace
//!   maps via `newuidmap`/`newgidmap`, no Dockerfile changes needed (paper §4).
//! * [`BuilderKind::ChImage`] — Type III: fully unprivileged, with optional
//!   `--force` automatic injection of `fakeroot(1)` (paper §5).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use hpcc_distro::{base_image, catalog_for, Catalog};
use hpcc_fakeroot::LieDatabase;
use hpcc_image::{Digest, Image, ImageConfig, Registry};
use hpcc_kernel::{Credentials, Sysctl, UserNamespace};
use hpcc_runtime::{Container, Invoker, PrivilegeType, StorageDriver, SubIdDb};
use hpcc_vfs::{Actor, Filesystem, FsBackend};

use crate::cache::{lock_recover, ShardedBuildCache};
use crate::error::BuildError;
use crate::executor::run_graph;
use crate::graph::BuildGraph;
use crate::ir::BuildIr;

/// Which build tool (and therefore privilege model) to emulate.
#[derive(Debug, Clone)]
pub enum BuilderKind {
    /// Docker-style Type I build: requires host root.
    Docker,
    /// Rootless-Podman-style Type II build.
    RootlessPodman {
        /// `/etc/subuid` / `/etc/subgid` contents.
        subuid: SubIdDb,
        /// Storage driver.
        driver: StorageDriver,
        /// Backend for container storage.
        backend: FsBackend,
        /// Kernel configuration of the build node.
        sysctl: Sysctl,
    },
    /// Charliecloud-style Type III build (`ch-image`).
    ChImage,
}

/// Options for one build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Tag for the resulting image (e.g. `foo`).
    pub tag: String,
    /// Enable `--force` fakeroot injection (Type III only).
    pub force: bool,
    /// Enable the per-instruction build cache.
    pub use_cache: bool,
    /// Target CPU architecture.
    pub arch: String,
    /// Build independent stages of a multi-stage Dockerfile concurrently
    /// (default). Disable for a serial topological-order baseline.
    pub parallel: bool,
    /// `--build-arg`-style overrides: values here override the defaults of
    /// declared `ARG`s during IR lowering, and the substituted text is what
    /// cache keys bind to.
    pub build_args: BTreeMap<String, String>,
    /// Total build-cache entry cap (across shards). When set, the builder's
    /// cache is capped before the build and least-recently-used entries are
    /// evicted — except entries still pinned by an in-flight stage. `None`
    /// (default) leaves the builder's current capacity unchanged.
    pub cache_capacity: Option<usize>,
}

impl BuildOptions {
    /// Options with a tag and defaults (no force, no cache, x86-64,
    /// parallel stage execution).
    pub fn new(tag: &str) -> Self {
        BuildOptions {
            tag: tag.to_string(),
            force: false,
            use_cache: false,
            arch: "x86_64".to_string(),
            parallel: true,
            build_args: BTreeMap::new(),
            cache_capacity: None,
        }
    }

    /// Enables `--force`.
    pub fn with_force(mut self) -> Self {
        self.force = true;
        self
    }

    /// Enables the build cache.
    pub fn with_cache(mut self) -> Self {
        self.use_cache = true;
        self
    }

    /// Sets the architecture.
    pub fn with_arch(mut self, arch: &str) -> Self {
        self.arch = arch.to_string();
        self
    }

    /// Disables parallel stage execution (serial topological order).
    pub fn with_serial_stages(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Adds a `--build-arg NAME=value` override.
    pub fn with_build_arg(mut self, name: &str, value: &str) -> Self {
        self.build_args.insert(name.to_string(), value.to_string());
        self
    }

    /// Caps the build cache at `capacity` entries (LRU eviction).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }
}

/// A locally stored built image.
#[derive(Debug, Clone)]
pub struct BuiltImage {
    /// Tag.
    pub tag: String,
    /// Image filesystem as built.
    pub fs: Filesystem,
    /// Image configuration.
    pub config: ImageConfig,
    /// Fakeroot lie database accumulated during the build (Type III).
    pub fakeroot_db: LieDatabase,
    /// The base image reference used by `FROM`.
    pub base_reference: String,
    /// Architecture.
    pub arch: String,
    /// Privilege type used.
    pub privilege: PrivilegeType,
}

/// Report of one build: the transcript reproduces the shape of the paper's
/// figures.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Transcript lines.
    pub transcript: Vec<String>,
    /// Whether the build succeeded.
    pub success: bool,
    /// The tag built.
    pub tag: String,
    /// Total instructions executed.
    pub instructions_total: usize,
    /// RUN instructions rewritten by `--force`.
    pub instructions_modified: usize,
    /// RUN instructions that *could* be rewritten.
    pub modifiable_runs: usize,
    /// Name of the matched force configuration, if any.
    pub force_config: Option<String>,
    /// Cache hits during this build.
    pub cache_hits: usize,
    /// Cache misses during this build.
    pub cache_misses: usize,
    /// Wall-clock execution time. For a per-stage report this is the stage's
    /// own execution time; a merged multi-stage report sums its stages (total
    /// work, not makespan — concurrent stages overlap).
    pub elapsed: std::time::Duration,
    /// The error if the build failed.
    pub error: Option<BuildError>,
}

impl BuildReport {
    /// The transcript as one string.
    pub fn transcript_text(&self) -> String {
        self.transcript.join("\n")
    }

    /// The error rendered as text, if the build failed.
    pub fn error_text(&self) -> Option<String> {
        self.error.as_ref().map(|e| e.to_string())
    }

    /// A failed report carrying a front-end or planner error.
    pub(crate) fn from_error(tag: &str, error: BuildError) -> Self {
        BuildReport {
            transcript: vec![format!("error: {}", error)],
            success: false,
            tag: tag.to_string(),
            instructions_total: 0,
            instructions_modified: 0,
            modifiable_runs: 0,
            force_config: None,
            cache_hits: 0,
            cache_misses: 0,
            elapsed: std::time::Duration::ZERO,
            error: Some(error),
        }
    }
}

/// Ownership policy when pushing a built image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOwnership {
    /// Flatten to root:root, clear setuid/setgid (Charliecloud default, §6.1).
    Flatten,
    /// Preserve the namespace view of ownership (Podman/Docker).
    Preserve,
    /// Reconstruct ownership from the fakeroot lie database (§6.2.2 item 2).
    FromFakerootDb,
}

/// A container image builder.
pub struct Builder {
    /// The build tool emulated.
    pub kind: BuilderKind,
    /// The invoking user.
    pub invoker: Invoker,
    /// The per-instruction build cache, shared across the concurrently
    /// executing stages of a build (and across builds by this builder).
    /// Sharded 16-way by digest prefix so wide stage graphs don't serialize
    /// their probes and stores on a single lock.
    pub(crate) cache: Arc<ShardedBuildCache>,
    store: HashMap<String, BuiltImage>,
    /// Launched base-image environments memoized per `(reference, arch)`,
    /// shareable across builders (see [`BaseEnvMemo`]).
    base_envs: Arc<BaseEnvMemo>,
}

/// Memoized result of launching a base image: the launched rootfs plus the
/// exact credentials/namespace the container runtime produced.
struct BaseEnvTemplate {
    fs: Filesystem,
    creds: Credentials,
    userns: UserNamespace,
    catalog: Catalog,
    base_reference: String,
}

/// Memo key: `(builder launch identity, base reference, arch)`. The identity
/// component binds everything that shapes the launched environment —
/// privilege type, invoker, subuid ranges — so builders with different
/// privilege models sharing one memo can never adopt each other's
/// credentials.
type EnvKey = (String, String, String);

/// One memo slot: derivation state plus a condvar waiters block on while the
/// leader launches the base environment.
struct EnvSlot {
    state: Mutex<EnvSlotState>,
    cv: Condvar,
}

enum EnvSlotState {
    /// A leader is deriving; waiters block on the condvar.
    Pending,
    /// Derivation finished; every caller adopts this template.
    Ready(Arc<BaseEnvTemplate>),
    /// Derivation failed (or the leader panicked); waiters propagate the
    /// message. The slot was removed from the map, so a later call retries.
    Failed(String),
}

impl EnvSlot {
    fn new() -> Self {
        EnvSlot {
            state: Mutex::new(EnvSlotState::Pending),
            cv: Condvar::new(),
        }
    }
}

/// Restores a memo slot to a sane state if the deriving leader panics:
/// waiters are failed over instead of blocking forever on the condvar.
struct LeaderGuard<'a> {
    memo: &'a BaseEnvMemo,
    key: &'a EnvKey,
    slot: &'a Arc<EnvSlot>,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.memo.fail_slot(
                self.key,
                self.slot,
                "error: base environment derivation panicked".to_string(),
            );
        }
    }
}

/// Process-wide memo of launched base-image environments, keyed by
/// `(reference, arch)`.
///
/// Constructing a base tree, packaging it as an image, and launching a build
/// container is deterministic for a fixed builder kind, so cold
/// (instruction-cache-off) builds after the first adopt a CoW snapshot of the
/// launched rootfs instead of repeating the pack/unpack round trip — the
/// dominant cost of an uncached `FROM` (PERF.md §6). Historically this memo
/// lived per-[`Builder`], so concurrent tenants on a build farm re-derived
/// identical base environments; it is now a shared handle
/// ([`Builder::with_shared`]) with in-flight dedup: when N builders race on
/// the same key, one leads the derivation and the rest block until the
/// leader's template is ready, so the launch happens exactly once.
///
/// This is image-environment storage, not the instruction cache: `--no-cache`
/// semantics (fresh instruction execution) are unaffected. All locks recover
/// from poisoning, so a panicked build thread cannot wedge the memo for other
/// tenants.
#[derive(Default)]
pub struct BaseEnvMemo {
    slots: Mutex<HashMap<EnvKey, Arc<EnvSlot>>>,
    derivations: AtomicU64,
}

impl BaseEnvMemo {
    /// An empty memo.
    pub fn new() -> Self {
        BaseEnvMemo::default()
    }

    /// Number of base environments actually derived (launched) through this
    /// memo — concurrent requests for the same key count once.
    pub fn derivations(&self) -> usize {
        self.derivations.load(Ordering::Relaxed) as usize
    }

    /// Number of memoized (ready or in-flight) environments.
    pub fn len(&self) -> usize {
        lock_recover(&self.slots).len()
    }

    /// Whether the memo holds no environments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized environment. In-flight derivations complete on
    /// their existing slots (waiters still see the result); the next request
    /// for any key re-derives.
    pub fn clear(&self) {
        lock_recover(&self.slots).clear();
    }

    /// Returns the memoized template for `key`, deriving it via `derive` if
    /// absent. Exactly one concurrent caller runs `derive`; the others block
    /// until the leader finishes and then share the leader's template (or
    /// propagate its error).
    fn get_or_derive<F>(&self, key: &EnvKey, derive: F) -> Result<Arc<BaseEnvTemplate>, String>
    where
        F: FnOnce() -> Result<BaseEnvTemplate, String>,
    {
        let (slot, lead) = {
            let mut slots = lock_recover(&self.slots);
            match slots.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(EnvSlot::new());
                    slots.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if lead {
            // Derive outside the map lock so unrelated keys proceed, with a
            // drop guard so a panicking derivation fails waiters over
            // instead of stranding them on the condvar.
            let mut guard = LeaderGuard {
                memo: self,
                key,
                slot: &slot,
                armed: true,
            };
            let result = derive();
            guard.armed = false;
            drop(guard);
            return match result {
                Ok(template) => {
                    let template = Arc::new(template);
                    self.derivations.fetch_add(1, Ordering::Relaxed);
                    *lock_recover(&slot.state) = EnvSlotState::Ready(Arc::clone(&template));
                    slot.cv.notify_all();
                    Ok(template)
                }
                Err(message) => {
                    self.fail_slot(key, &slot, message.clone());
                    Err(message)
                }
            };
        }
        let mut state = lock_recover(&slot.state);
        while matches!(*state, EnvSlotState::Pending) {
            state = slot
                .cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        match &*state {
            EnvSlotState::Ready(template) => Ok(Arc::clone(template)),
            EnvSlotState::Failed(message) => Err(message.clone()),
            EnvSlotState::Pending => unreachable!("condvar loop exits only on a settled slot"),
        }
    }

    /// Marks a slot failed, removes it from the map (so later calls retry),
    /// and wakes every waiter.
    fn fail_slot(&self, key: &EnvKey, slot: &Arc<EnvSlot>, message: String) {
        lock_recover(&self.slots).remove(key);
        *lock_recover(&slot.state) = EnvSlotState::Failed(message);
        slot.cv.notify_all();
    }
}

impl std::fmt::Debug for BaseEnvMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseEnvMemo")
            .field("len", &self.len())
            .field("derivations", &self.derivations())
            .finish()
    }
}

/// The mutable environment a stage executes in.
pub(crate) struct BuildEnv {
    pub(crate) fs: Filesystem,
    pub(crate) creds: Credentials,
    pub(crate) userns: UserNamespace,
    pub(crate) catalog: Catalog,
    pub(crate) base_reference: String,
}

impl Builder {
    /// Creates a builder with its own private cache and base-env memo.
    pub fn new(kind: BuilderKind, invoker: Invoker) -> Self {
        Builder::with_shared(
            kind,
            invoker,
            Arc::new(ShardedBuildCache::new()),
            Arc::new(BaseEnvMemo::new()),
        )
    }

    /// Creates a builder over a *shared* instruction cache and base-env memo.
    ///
    /// This is the multi-tenant constructor: a build farm hands every
    /// tenant's builder the same two `Arc`s, so identical instruction
    /// prefixes dedup across tenants (same digest keys) and identical base
    /// environments are derived once process-wide instead of once per
    /// builder.
    pub fn with_shared(
        kind: BuilderKind,
        invoker: Invoker,
        cache: Arc<ShardedBuildCache>,
        base_envs: Arc<BaseEnvMemo>,
    ) -> Self {
        Builder {
            kind,
            invoker,
            cache,
            store: HashMap::new(),
            base_envs,
        }
    }

    /// The builder's instruction cache handle (shareable across builders).
    pub fn shared_cache(&self) -> Arc<ShardedBuildCache> {
        Arc::clone(&self.cache)
    }

    /// The builder's base-environment memo handle (shareable across
    /// builders).
    pub fn base_env_memo(&self) -> Arc<BaseEnvMemo> {
        Arc::clone(&self.base_envs)
    }

    /// Convenience: a `ch-image` (Type III) builder for an unprivileged user.
    pub fn ch_image(invoker: Invoker) -> Self {
        Builder::new(BuilderKind::ChImage, invoker)
    }

    /// Convenience: a rootless Podman (Type II) builder with sensible
    /// defaults (local storage, VFS driver as on RHEL 7, Figure 4 subuid map).
    pub fn rootless_podman(invoker: Invoker, subuid: SubIdDb) -> Self {
        Builder::new(
            BuilderKind::RootlessPodman {
                subuid,
                driver: StorageDriver::Vfs,
                backend: FsBackend::LocalDisk,
                sysctl: Sysctl::rhel76(),
            },
            invoker,
        )
    }

    /// Convenience: a Docker (Type I) builder; the invoker must be root.
    pub fn docker() -> Self {
        Builder::new(BuilderKind::Docker, Invoker::root())
    }

    /// The privilege type this builder operates at.
    pub fn privilege_type(&self) -> PrivilegeType {
        match self.kind {
            BuilderKind::Docker => PrivilegeType::TypeI,
            BuilderKind::RootlessPodman { .. } => PrivilegeType::TypeII,
            BuilderKind::ChImage => PrivilegeType::TypeIII,
        }
    }

    /// A previously built image by tag.
    pub fn image(&self, tag: &str) -> Option<&BuiltImage> {
        self.store.get(tag)
    }

    /// Tags of all locally stored images.
    pub fn tags(&self) -> Vec<String> {
        let mut t: Vec<String> = self.store.keys().cloned().collect();
        t.sort();
        t
    }

    /// Clears the per-instruction build cache and the memoized base-image
    /// environments.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.base_envs.clear();
    }

    pub(crate) fn setup_from(&self, reference: &str, arch: &str) -> Result<BuildEnv, String> {
        // Local tag takes precedence over remote base images (the LANL
        // three-stage pipeline chains FROM on locally built tags, §5.3.3).
        if let Some(built) = self.store.get(reference) {
            let catalog = catalog_for(&built.base_reference, arch)
                .ok_or_else(|| format!("no catalog for {}", built.base_reference))?;
            return Ok(BuildEnv {
                fs: built.fs.clone(),
                creds: self.container_creds(),
                userns: self.container_userns(),
                catalog,
                base_reference: built.base_reference.clone(),
            });
        }
        // Memoized launch: the second and later cold builds from the same
        // base adopt a CoW snapshot of the launched rootfs (a refcount bump)
        // instead of rebuilding the base tree and tar round-tripping it
        // through a fresh container. The memo is shared across builders, so
        // under a build farm the first tenant to reach a base leads the
        // derivation and concurrent tenants wait and adopt.
        let key = (
            self.launch_identity(),
            reference.to_string(),
            arch.to_string(),
        );
        let template = self
            .base_envs
            .get_or_derive(&key, || self.derive_base_env(reference, arch))?;
        Ok(BuildEnv {
            fs: template.fs.clone(),
            creds: template.creds.clone(),
            userns: template.userns.clone(),
            catalog: template.catalog.clone(),
            base_reference: template.base_reference.clone(),
        })
    }

    /// The launch-identity component of this builder's [`EnvKey`]s: privilege
    /// type plus everything about the invoker that shapes the launched
    /// credentials and user namespace. Two builders share memoized
    /// environments only when a container launched by either would be
    /// byte-identical.
    pub(crate) fn launch_identity(&self) -> String {
        match &self.kind {
            BuilderKind::Docker => "type1".to_string(),
            BuilderKind::RootlessPodman { subuid, .. } => {
                let range = subuid.ranges_for(&self.invoker.name).first().copied();
                format!(
                    "type2|{}|{:?}|{:?}|{:?}",
                    self.invoker.name,
                    self.invoker.uid,
                    self.invoker.gid,
                    range.map(|r| (r.start, r.count))
                )
            }
            BuilderKind::ChImage => {
                format!("type3|{:?}|{:?}", self.invoker.uid, self.invoker.gid)
            }
        }
    }

    /// Derives a base environment from scratch: build the canonical base
    /// tree, package it as an image, launch a build container under this
    /// builder's privilege type, and capture the result as a template.
    fn derive_base_env(&self, reference: &str, arch: &str) -> Result<BaseEnvTemplate, String> {
        let base = base_image(reference, arch)
            .ok_or_else(|| format!("error: no base image: {}", reference))?;
        // Package the canonical root-owned base tree as an image, then let
        // the runtime instantiate it under the right privilege type.
        let root_creds = Credentials::host_root();
        let host_ns = UserNamespace::initial();
        let actor = Actor::new(&root_creds, &host_ns);
        let cfg = ImageConfig {
            architecture: arch.to_string(),
            ..Default::default()
        };
        let image = Image::from_fs_preserved(reference, &base.fs, &actor, cfg)
            .map_err(|e| format!("error: cannot package base image: {}", e))?;
        let container = match &self.kind {
            BuilderKind::Docker => Container::launch_type1(&image, None),
            BuilderKind::RootlessPodman {
                subuid,
                driver,
                backend,
                sysctl,
            } => Container::launch_type2(&image, &self.invoker, subuid, *driver, *backend, sysctl),
            BuilderKind::ChImage => Container::launch_type3(&image, &self.invoker),
        }
        .map_err(|e| format!("error: cannot create build container: {}", e))?;
        Ok(BaseEnvTemplate {
            fs: container.rootfs,
            creds: container.creds,
            userns: container.userns,
            catalog: base.catalog,
            base_reference: reference.to_string(),
        })
    }

    /// Builds the environment for a `FROM` instruction served from the build
    /// cache: the cached filesystem is adopted as-is (copy-on-write), so the
    /// base-image tree is never reconstructed and no container is launched.
    pub(crate) fn env_for_cached_from(
        &self,
        reference: &str,
        arch: &str,
        cached_fs: &Filesystem,
    ) -> Result<BuildEnv, String> {
        let base_reference = match self.store.get(reference) {
            Some(built) => built.base_reference.clone(),
            None => reference.to_string(),
        };
        let catalog = catalog_for(&base_reference, arch)
            .ok_or_else(|| format!("error: no base image: {}", reference))?;
        Ok(BuildEnv {
            fs: cached_fs.clone(),
            creds: self.container_creds(),
            userns: self.container_userns(),
            catalog,
            base_reference,
        })
    }

    pub(crate) fn container_creds(&self) -> Credentials {
        match self.kind {
            BuilderKind::Docker => Credentials::host_root(),
            _ => self.invoker.host_creds().entered_own_namespace(),
        }
    }

    pub(crate) fn container_userns(&self) -> UserNamespace {
        match &self.kind {
            BuilderKind::Docker => UserNamespace::initial(),
            BuilderKind::RootlessPodman { subuid, .. } => {
                let range = subuid.ranges_for(&self.invoker.name).first().copied();
                match range {
                    Some(r) => {
                        UserNamespace::type2(self.invoker.uid, self.invoker.gid, r.start, r.count)
                    }
                    None => UserNamespace::type3(self.invoker.uid, self.invoker.gid),
                }
            }
            BuilderKind::ChImage => UserNamespace::type3(self.invoker.uid, self.invoker.gid),
        }
    }

    /// Builds a Dockerfile through the stage graph. `context` is the
    /// build-context filesystem used by `COPY` instructions.
    ///
    /// A multi-stage Dockerfile is planned into a DAG whose independent
    /// stages execute concurrently; only the *final* stage's image is stored,
    /// under `options.tag`, and the returned report concatenates the
    /// per-stage transcripts. Single-stage Dockerfiles behave exactly as
    /// before. Use [`crate::multistage::build_multistage`] to keep the
    /// per-stage reports separate.
    pub fn build(
        &mut self,
        dockerfile_text: &str,
        options: &BuildOptions,
        context: Option<&Filesystem>,
    ) -> BuildReport {
        if options.cache_capacity.is_some() {
            self.cache.set_capacity(options.cache_capacity);
        }
        let (ir, graph) = match Self::plan_with_args(dockerfile_text, &options.build_args) {
            Ok(p) => p,
            Err(e) => return BuildReport::from_error(&options.tag, e),
        };
        let mut run = run_graph(self, &ir, &graph, options, context);
        let report = Self::merge_reports(&ir, &mut run, options);
        if run.success {
            let final_index = ir.stage_count() - 1;
            if let Some(artifact) = run.artifacts[final_index].take() {
                self.store_artifact(&options.tag, &options.arch, artifact);
            }
        }
        report
    }

    /// Front end + planner: parse to IR, lower to a validated stage DAG
    /// (no `--build-arg` overrides; exercised directly by tests).
    #[cfg(test)]
    pub(crate) fn plan(text: &str) -> Result<(BuildIr, BuildGraph), BuildError> {
        Self::plan_with_args(text, &BTreeMap::new())
    }

    /// Front end + planner with `--build-arg`-style overrides applied during
    /// IR lowering: parse to IR, lower to a validated stage DAG. Exposed so
    /// external schedulers (the build farm) can plan a Dockerfile up front
    /// and drive stage execution themselves.
    pub fn plan_with_args(
        text: &str,
        build_args: &BTreeMap<String, String>,
    ) -> Result<(BuildIr, BuildGraph), BuildError> {
        let ir = BuildIr::parse_with_args(text, build_args)?;
        let graph = BuildGraph::plan(&ir)?;
        Ok((ir, graph))
    }

    /// Stores a finished stage artifact as a locally tagged image. Exposed
    /// so external schedulers (the build farm) can finalize builds whose
    /// stages they executed themselves.
    pub fn store_artifact(
        &mut self,
        tag: &str,
        arch: &str,
        artifact: crate::executor::StageArtifact,
    ) {
        self.store.insert(
            tag.to_string(),
            BuiltImage {
                tag: tag.to_string(),
                fs: artifact.fs,
                config: artifact.config,
                fakeroot_db: artifact.fakeroot_db,
                base_reference: artifact.base_reference,
                arch: arch.to_string(),
                privilege: self.privilege_type(),
            },
        );
    }

    /// Folds a graph run into one report. A single-stage build returns its
    /// stage report unchanged; a multi-stage build concatenates transcripts
    /// (with stage headers) and sums the counters.
    fn merge_reports(
        ir: &BuildIr,
        run: &mut crate::executor::GraphRun,
        options: &BuildOptions,
    ) -> BuildReport {
        if ir.stage_count() == 1 {
            return run.reports[0]
                .take()
                .unwrap_or_else(|| BuildReport::from_error(&options.tag, BuildError::NoStages));
        }
        let mut merged = BuildReport {
            transcript: Vec::new(),
            success: run.success,
            tag: options.tag.clone(),
            instructions_total: 0,
            instructions_modified: 0,
            modifiable_runs: 0,
            force_config: None,
            cache_hits: 0,
            cache_misses: 0,
            elapsed: std::time::Duration::ZERO,
            error: run.error.clone(),
        };
        for (i, slot) in run.reports.iter().enumerate() {
            let Some(r) = slot else { continue };
            let alias = ir.stages[i]
                .alias
                .as_deref()
                .map(|a| format!(" ({})", a))
                .unwrap_or_default();
            merged
                .transcript
                .push(format!(">>> stage {}/{}{}", i + 1, ir.stage_count(), alias));
            merged.transcript.extend(r.transcript.iter().cloned());
            merged.instructions_total += r.instructions_total;
            merged.instructions_modified += r.instructions_modified;
            merged.modifiable_runs += r.modifiable_runs;
            merged.cache_hits += r.cache_hits;
            merged.cache_misses += r.cache_misses;
            merged.elapsed += r.elapsed;
            if merged.force_config.is_none() {
                merged.force_config = r.force_config.clone();
            }
        }
        merged
    }

    /// Pushes a built image to a registry under `reference`, applying the
    /// chosen ownership policy (paper §6.1, §6.2.2).
    pub fn push(
        &mut self,
        tag: &str,
        reference: &str,
        registry: &mut Registry,
        ownership: PushOwnership,
    ) -> Result<Digest, String> {
        let built = self
            .store
            .get(tag)
            .ok_or_else(|| format!("no such image: {}", tag))?;
        let creds = self.container_creds();
        let userns = self.container_userns();
        let actor = Actor::new(&creds, &userns);
        let mut cfg = built.config.clone();
        cfg.architecture = built.arch.clone();
        let image = match ownership {
            PushOwnership::Flatten => Image::from_fs_flattened(reference, &built.fs, &actor, cfg),
            PushOwnership::Preserve => Image::from_fs_preserved(reference, &built.fs, &actor, cfg),
            PushOwnership::FromFakerootDb => Image::from_fs_with_ownership_db(
                reference,
                &built.fs,
                &actor,
                cfg,
                built.fakeroot_db.ownership_map(),
            ),
        }
        .map_err(|e| format!("push failed: {}", e))?;
        registry
            .push(&self.invoker.name, &image)
            .map_err(|e| format!("push failed: {}", e))
    }

    /// Pulls an image from a registry and stores it locally under `tag`,
    /// unpacking it per this builder's privilege type (a Type III pull
    /// changes ownership to the invoking user, paper §5.2).
    pub fn pull(
        &mut self,
        registry: &mut Registry,
        reference: &str,
        tag: &str,
    ) -> Result<(), String> {
        let image = registry.pull(reference).map_err(|e| e.to_string())?;
        let force_owner = match self.kind {
            BuilderKind::Docker => None,
            _ => Some((self.invoker.uid, self.invoker.gid)),
        };
        let fs = image.unpack(force_owner).map_err(|e| e.to_string())?;
        self.store.insert(
            tag.to_string(),
            BuiltImage {
                tag: tag.to_string(),
                fs,
                config: image.config.clone(),
                fakeroot_db: LieDatabase::new(),
                base_reference: reference.to_string(),
                arch: image.config.architecture.clone(),
                privilege: self.privilege_type(),
            },
        );
        Ok(())
    }
}

/// Figure-4 style default subuid database for one user.
pub fn default_subuid_for(user: &str) -> SubIdDb {
    let mut db = SubIdDb::new();
    db.add_range(user, 200_000, 65_536);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dockerfile::{
        centos7_dockerfile, centos7_fr_dockerfile, debian10_dockerfile, debian10_fr_dockerfile,
    };
    use hpcc_kernel::{Gid, Uid};
    use hpcc_vfs::Mode;

    fn alice() -> Invoker {
        Invoker::user("alice", 1000, 1000)
    }

    #[test]
    fn figure2_plain_type3_build_fails_on_chown() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("foo"), None);
        assert!(!r.success);
        let t = r.transcript_text();
        assert!(t.contains("1 FROM centos:7"));
        assert!(t.contains("2 RUN [ '/bin/sh', '-c', 'echo hello' ]"));
        assert!(t.contains("hello"));
        assert!(t.contains("Error unpacking rpm package openssh-7.4p1-21.el7.x86_64"));
        assert!(t.contains("cpio: chown"));
        assert!(t.contains("error: build failed: RUN command exited with 1"));
        // The hint the paper mentions was omitted from Figure 2.
        assert!(t.contains("--force may fix"));
    }

    #[test]
    fn figure3_plain_type3_debian_build_fails_on_privilege_drop() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            debian10_dockerfile(),
            &BuildOptions::new("foo").with_arch("amd64"),
            None,
        );
        assert!(!r.success);
        let t = r.transcript_text();
        assert!(t.contains("E: setgroups 65534 failed - setgroups (1: Operation not permitted)"));
        assert!(t.contains("E: setegid 65534 failed - setegid (22: Invalid argument)"));
        assert!(t.contains("E: seteuid 100 failed - seteuid (22: Invalid argument)"));
        assert!(t.contains("error: build failed: RUN command exited with 100"));
    }

    #[test]
    fn figure8_manually_modified_centos_dockerfile_succeeds() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(centos7_fr_dockerfile(), &BuildOptions::new("foo"), None);
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("Complete!"));
        assert!(t.contains("grown in 5 instructions: foo"));
        assert_eq!(r.instructions_modified, 0, "no automatic modification");
    }

    #[test]
    fn figure9_manually_modified_debian_dockerfile_succeeds() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            debian10_fr_dockerfile(),
            &BuildOptions::new("foo").with_arch("amd64"),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("Setting up pseudo (1.9.0+git20180920-1) ..."));
        assert!(t.contains("W: chown to root:adm of file /var/log/apt/term.log failed"));
        assert!(t.contains("Setting up openssh-client (1:7.9p1-10+deb10u2) ..."));
        assert!(t.contains("grown in 6 instructions: foo"));
    }

    #[test]
    fn figure10_force_build_centos_unmodified_dockerfile() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("foo").with_force(),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("will use --force: rhel7: CentOS/RHEL 7"));
        assert!(t.contains("workarounds: init step 1: checking: $ command -v fakeroot"));
        assert!(t.contains("workarounds: init step 1: $ set -ex;"));
        assert!(t.contains("+ yum install -y epel-release"));
        assert!(t.contains(
            "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', 'yum install -y openssh' ]"
        ));
        assert!(t.contains("--force: init OK & modified 1 RUN instructions"));
        assert!(t.contains("grown in 3 instructions: foo"));
        assert_eq!(r.force_config.as_deref(), Some("rhel7"));
        assert_eq!(r.instructions_modified, 1);
    }

    #[test]
    fn figure11_force_build_debian_unmodified_dockerfile() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            debian10_dockerfile(),
            &BuildOptions::new("foo").with_force().with_arch("amd64"),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("will use --force: debderiv: Debian (9, 10) or Ubuntu (16, 18, 20)"));
        assert!(t.contains("workarounds: init step 1: checking: $ apt-config dump"));
        assert!(t.contains("workarounds: init step 1: $ echo 'APT::Sandbox::User"));
        assert!(t.contains("workarounds: init step 2: checking: $ command -v fakeroot"));
        assert!(
            t.contains("workarounds: init step 2: $ apt-get update && apt-get install -y pseudo")
        );
        assert!(t.contains("Setting up pseudo (1.9.0+git20180920-1) ..."));
        assert!(t.contains(
            "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', 'apt-get update' ]"
        ));
        assert!(t.contains(
            "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', 'apt-get install -y openssh-client' ]"
        ));
        assert!(t.contains("--force: init OK & modified 2 RUN instructions"));
        assert!(t.contains("grown in 4 instructions: foo"));
        assert_eq!(r.instructions_modified, 2);
    }

    #[test]
    fn rootless_podman_builds_both_dockerfiles_unmodified() {
        // Paper §4.1: "the examples detailed in Figures 2 and 3 will both
        // succeed as expected" under properly configured rootless Podman.
        let mut b = Builder::rootless_podman(alice(), default_subuid_for("alice"));
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("c7"), None);
        assert!(r.success, "{}", r.transcript_text());
        assert_eq!(r.instructions_modified, 0);
        let r = b.build(
            debian10_dockerfile(),
            &BuildOptions::new("d10").with_arch("amd64"),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        // Ownership inside the image really is multi-UID (subordinate IDs).
        let img = b.image("c7").unwrap();
        assert!(img.fs.distinct_owner_uids().len() > 1);
    }

    #[test]
    fn docker_type1_builds_but_requires_root() {
        let mut b = Builder::docker();
        assert_eq!(b.privilege_type(), PrivilegeType::TypeI);
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("c7"), None);
        assert!(r.success, "{}", r.transcript_text());
        let img = b.image("c7").unwrap();
        // Type I keeps real root ownership.
        assert!(img.fs.distinct_owner_uids().contains(&Uid(0)));
    }

    #[test]
    fn podman_without_subuid_ranges_fails_to_create_container() {
        let mut b = Builder::rootless_podman(alice(), SubIdDb::new());
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("c7"), None);
        assert!(!r.success);
        assert!(r
            .transcript_text()
            .contains("cannot create build container"));
    }

    #[test]
    fn build_cache_hits_on_rebuild() {
        let mut b = Builder::ch_image(alice());
        let opts = BuildOptions::new("foo").with_force().with_cache();
        let first = b.build(centos7_dockerfile(), &opts, None);
        assert!(first.success);
        assert_eq!(first.cache_hits, 0);
        let second = b.build(centos7_dockerfile(), &opts, None);
        assert!(second.success, "{}", second.transcript_text());
        assert_eq!(second.cache_hits, 3, "{}", second.transcript_text());
        assert!(second.transcript_text().contains("(cached)"));
        // Extending the Dockerfile reuses the prefix.
        let extended = format!("{}RUN echo extra\n", centos7_dockerfile());
        let third = b.build(&extended, &opts, None);
        assert!(third.success);
        assert_eq!(third.cache_hits, 3);
        assert!(third.transcript_text().contains("echo extra"));
    }

    #[test]
    fn global_arg_substitutes_into_from_parse_plan_execute() {
        // Parse: the global ARG's default lands in the FROM reference.
        let df = "ARG BASE=centos:7\nFROM ${BASE}\nRUN echo hi\n";
        let (ir, graph) = Builder::plan(df).expect("plan");
        // Plan: one stage, rooted on the concrete base image (not treated as
        // an alias or an unknown stage reference).
        assert_eq!(ir.global_args.len(), 1);
        assert_eq!(ir.stages[0].base, "centos:7");
        assert_eq!(graph.stage_count(), 1);
        // Execute: the build runs against the substituted base.
        let mut b = Builder::ch_image(alice());
        let r = b.build(df, &BuildOptions::new("argsub"), None);
        assert!(r.success, "{}", r.transcript_text());
        assert!(r.transcript_text().contains("FROM centos:7"));
        assert_eq!(b.image("argsub").unwrap().base_reference, "centos:7");
        // An ARG-substituted FROM also chains the cache: rebuilding with a
        // different spelling of the same resolved reference hits.
        let opts = BuildOptions::new("argsub").with_cache();
        let first = b.build(df, &opts, None);
        assert!(first.success);
        let direct = b.build("FROM centos:7\nRUN echo hi\n", &opts, None);
        assert!(direct.success);
        assert_eq!(direct.cache_misses, 0, "{}", direct.transcript_text());
    }

    #[test]
    fn build_args_substitute_into_run_and_invalidate_cache_keys() {
        // The global ARG is redeclared inside the stage (Docker scoping).
        let df = "ARG PKG=openssh\nFROM centos:7\nARG PKG\nRUN yum install -y ${PKG}\n";
        let mut b = Builder::ch_image(alice());
        let opts = BuildOptions::new("pkg").with_force().with_cache();
        let first = b.build(df, &opts, None);
        assert!(first.success, "{}", first.transcript_text());
        assert!(first.transcript_text().contains("yum install -y openssh"));
        // Same Dockerfile, same args: full cache hit.
        let second = b.build(df, &opts, None);
        assert_eq!(second.cache_misses, 0, "{}", second.transcript_text());
        // Overriding the ARG changes the substituted text, so the RUN key
        // misses — the cache can never serve a stale package set.
        let overridden = b.build(df, &opts.clone().with_build_arg("PKG", "openmpi"), None);
        assert!(overridden.success, "{}", overridden.transcript_text());
        assert!(overridden
            .transcript_text()
            .contains("yum install -y openmpi"));
        assert!(
            overridden.cache_misses > 0,
            "{}",
            overridden.transcript_text()
        );
    }

    #[test]
    fn cold_builds_reuse_memoized_base_env_without_cache_semantics_change() {
        // Two cache-off builds: the second adopts the memoized base env and
        // must behave identically (fresh RUN execution, same transcript
        // shape, isolated image filesystems).
        let mut b = Builder::ch_image(alice());
        let r1 = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("one").with_force(),
            None,
        );
        assert!(r1.success, "{}", r1.transcript_text());
        let r2 = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("two").with_force(),
            None,
        );
        assert!(r2.success, "{}", r2.transcript_text());
        assert_eq!(r2.cache_hits, 0, "cache off: every instruction re-ran");
        // Mutating one image never leaks into the other (CoW adoption).
        let creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);
        let img_two = b.image("two").unwrap().fs.clone();
        let mut img_one = b.image("one").unwrap().fs.clone();
        img_one
            .write_file(&actor, "/etc/marker", b"one".to_vec(), Mode::FILE_644)
            .unwrap();
        assert!(!img_two.exists(&actor, "/etc/marker"));
        // clear_cache also drops the memoized base envs.
        b.clear_cache();
        let r3 = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("three").with_force(),
            None,
        );
        assert!(r3.success);
    }

    #[test]
    fn copy_uses_build_context() {
        let mut ctx = Filesystem::new_local();
        ctx.install_file(
            "/app.c",
            b"int main(){}".to_vec(),
            Uid(0),
            Gid(0),
            Mode::FILE_644,
        )
        .unwrap();
        let mut b = Builder::ch_image(alice());
        let df = "FROM centos:7\nCOPY app.c /src/app.c\nRUN gcc -o /src/app /src/app.c\n";
        let r = b.build(df, &BuildOptions::new("app"), Some(&ctx));
        assert!(!r.success, "gcc is not installed in the base image");
        let df2 = "FROM centos:7\nRUN yum install -y gcc\nCOPY app.c /src/app.c\nRUN gcc -o /src/app /src/app.c\n";
        let r = b.build(df2, &BuildOptions::new("app"), Some(&ctx));
        assert!(r.success, "{}", r.transcript_text());
        let img = b.image("app").unwrap();
        let actor_creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
        let ns = UserNamespace::initial();
        let actor = Actor::new(&actor_creds, &ns);
        assert!(img.fs.exists(&actor, "/src/app.c"));
    }

    #[test]
    fn from_local_tag_chains_builds() {
        let mut b = Builder::ch_image(alice());
        let base = "FROM centos:7\nRUN yum install -y openmpi\n";
        assert!(b.build(base, &BuildOptions::new("stage1"), None).success);
        let app = "FROM stage1\nRUN yum install -y spack\nENV STACK=atse\n";
        let r = b.build(app, &BuildOptions::new("stage2"), None);
        assert!(r.success, "{}", r.transcript_text());
        let img = b.image("stage2").unwrap();
        assert_eq!(img.config.env.get("STACK").unwrap(), "atse");
        let creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);
        assert!(img.fs.exists(&actor, "/usr/lib64/openmpi/bin/mpirun"));
        assert!(img.fs.exists(&actor, "/opt/spack/bin/spack"));
    }

    #[test]
    fn push_flatten_and_pull_roundtrip() {
        let mut registry = Registry::new("registry.lanl.example");
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("foo").with_force(),
            None,
        );
        assert!(r.success);
        let digest = b
            .push(
                "foo",
                "hpc/openssh:1.0",
                &mut registry,
                PushOwnership::Flatten,
            )
            .unwrap();
        assert!(digest.to_oci_string().starts_with("sha256:"));
        // Pull back as a different user.
        let mut b2 = Builder::ch_image(Invoker::user("bob", 1001, 1001));
        b2.pull(&mut registry, "hpc/openssh:1.0", "openssh")
            .unwrap();
        let img = b2.image("openssh").unwrap();
        // Every unpacked entry (not counting the filesystem root inode) is
        // owned by the pulling user.
        for (path, ino) in img.fs.walk() {
            assert_eq!(img.fs.inode(ino).unwrap().uid, Uid(1001), "{}", path);
        }
    }

    #[test]
    fn push_with_fakeroot_db_preserves_intended_ownership() {
        let mut registry = Registry::new("r");
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("foo").with_force(),
            None,
        );
        assert!(r.success);
        b.push(
            "foo",
            "hpc/openssh:ids",
            &mut registry,
            PushOwnership::FromFakerootDb,
        )
        .unwrap();
        let image = registry.pull("hpc/openssh:ids").unwrap();
        // The ssh-keysign helper's intended group (999) survives the push.
        let entries = hpcc_vfs::tar::list(&image.layers[0].tar).unwrap();
        let keysign = entries
            .iter()
            .find(|e| e.path == "usr/libexec/openssh/ssh-keysign")
            .unwrap();
        assert_eq!(keysign.gid, 999);
    }

    #[test]
    fn two_builders_sharing_a_memo_observe_one_derivation() {
        let memo = Arc::new(BaseEnvMemo::new());
        let cache = Arc::new(ShardedBuildCache::new());
        let mut a = Builder::with_shared(
            BuilderKind::ChImage,
            alice(),
            Arc::clone(&cache),
            Arc::clone(&memo),
        );
        let mut b = Builder::with_shared(
            BuilderKind::ChImage,
            alice(),
            Arc::clone(&cache),
            Arc::clone(&memo),
        );
        let opts = BuildOptions::new("foo").with_force();
        assert!(a.build(centos7_dockerfile(), &opts, None).success);
        assert_eq!(memo.derivations(), 1);
        // The second builder adopts the first's launched base environment —
        // no second derivation.
        assert!(b.build(centos7_dockerfile(), &opts, None).success);
        assert_eq!(memo.derivations(), 1);
        assert_eq!(memo.len(), 1);
        // A different base is a different key.
        let r = b.build(
            debian10_fr_dockerfile(),
            &BuildOptions::new("d10").with_arch("amd64"),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        assert_eq!(memo.derivations(), 2);
    }

    #[test]
    fn builders_with_different_invokers_do_not_share_base_envs() {
        // The launched environment embeds the invoker's uid/gid (Type III),
        // so a shared memo must key on launch identity — tenant bob must
        // never adopt tenant alice's credentials.
        let memo = Arc::new(BaseEnvMemo::new());
        let cache = Arc::new(ShardedBuildCache::new());
        let mut a = Builder::with_shared(
            BuilderKind::ChImage,
            alice(),
            Arc::clone(&cache),
            Arc::clone(&memo),
        );
        let mut b = Builder::with_shared(
            BuilderKind::ChImage,
            Invoker::user("bob", 1001, 1001),
            Arc::clone(&cache),
            Arc::clone(&memo),
        );
        assert!(
            a.build(centos7_fr_dockerfile(), &BuildOptions::new("a"), None)
                .success
        );
        assert!(
            b.build(centos7_fr_dockerfile(), &BuildOptions::new("b"), None)
                .success
        );
        assert_eq!(memo.derivations(), 2, "distinct invokers, distinct envs");
    }

    #[test]
    fn concurrent_builders_dedup_one_base_env_derivation() {
        let memo = Arc::new(BaseEnvMemo::new());
        let cache = Arc::new(ShardedBuildCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let memo = Arc::clone(&memo);
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let mut b = Builder::with_shared(BuilderKind::ChImage, alice(), cache, memo);
                    let r = b.build(centos7_fr_dockerfile(), &BuildOptions::new("x"), None);
                    assert!(r.success, "{}", r.transcript_text());
                });
            }
        });
        assert_eq!(
            memo.derivations(),
            1,
            "one leader derived; three waiters adopted"
        );
    }

    #[test]
    fn failed_base_env_derivation_fails_over_and_retries() {
        let memo = Arc::new(BaseEnvMemo::new());
        let cache = Arc::new(ShardedBuildCache::new());
        let mut b = Builder::with_shared(
            BuilderKind::ChImage,
            alice(),
            Arc::clone(&cache),
            Arc::clone(&memo),
        );
        let r = b.build(
            "FROM alpine:3.14\nRUN echo hi\n",
            &BuildOptions::new("x"),
            None,
        );
        assert!(!r.success);
        // The failed slot was removed, not memoized: the memo is empty and a
        // later (valid) build is unaffected.
        assert_eq!(memo.len(), 0);
        assert!(
            b.build(centos7_fr_dockerfile(), &BuildOptions::new("y"), None)
                .success
        );
    }

    #[test]
    fn unknown_base_image_reports_error() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            "FROM alpine:3.14\nRUN echo hi\n",
            &BuildOptions::new("x"),
            None,
        );
        assert!(!r.success);
        assert!(r.transcript_text().contains("no base image"));
    }
}
