//! Container image builders for the three privilege types.
//!
//! * [`BuilderKind::Docker`] — Type I baseline (privileged daemon build).
//! * [`BuilderKind::RootlessPodman`] — Type II: privileged user-namespace
//!   maps via `newuidmap`/`newgidmap`, no Dockerfile changes needed (paper §4).
//! * [`BuilderKind::ChImage`] — Type III: fully unprivileged, with optional
//!   `--force` automatic injection of `fakeroot(1)` (paper §5).

use std::collections::HashMap;

use hpcc_distro::{base_image, catalog_for, Catalog};
use hpcc_fakeroot::LieDatabase;
use hpcc_image::{Digest, Image, ImageConfig, Registry};
use hpcc_kernel::{Credentials, Sysctl, UserNamespace};
use hpcc_runtime::{Container, Invoker, PrivilegeType, StorageDriver, SubIdDb};
use hpcc_shell::ExecEnv;
use hpcc_vfs::{Actor, Filesystem, FsBackend, Mode};

use crate::cache::{BuildCache, CachedState};
use crate::dockerfile::{Dockerfile, Instruction};
use crate::force::{detect_config, ForceConfig};

/// Which build tool (and therefore privilege model) to emulate.
#[derive(Debug, Clone)]
pub enum BuilderKind {
    /// Docker-style Type I build: requires host root.
    Docker,
    /// Rootless-Podman-style Type II build.
    RootlessPodman {
        /// `/etc/subuid` / `/etc/subgid` contents.
        subuid: SubIdDb,
        /// Storage driver.
        driver: StorageDriver,
        /// Backend for container storage.
        backend: FsBackend,
        /// Kernel configuration of the build node.
        sysctl: Sysctl,
    },
    /// Charliecloud-style Type III build (`ch-image`).
    ChImage,
}

/// Options for one build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Tag for the resulting image (e.g. `foo`).
    pub tag: String,
    /// Enable `--force` fakeroot injection (Type III only).
    pub force: bool,
    /// Enable the per-instruction build cache.
    pub use_cache: bool,
    /// Target CPU architecture.
    pub arch: String,
}

impl BuildOptions {
    /// Options with a tag and defaults (no force, no cache, x86-64).
    pub fn new(tag: &str) -> Self {
        BuildOptions {
            tag: tag.to_string(),
            force: false,
            use_cache: false,
            arch: "x86_64".to_string(),
        }
    }

    /// Enables `--force`.
    pub fn with_force(mut self) -> Self {
        self.force = true;
        self
    }

    /// Enables the build cache.
    pub fn with_cache(mut self) -> Self {
        self.use_cache = true;
        self
    }

    /// Sets the architecture.
    pub fn with_arch(mut self, arch: &str) -> Self {
        self.arch = arch.to_string();
        self
    }
}

/// A locally stored built image.
#[derive(Debug, Clone)]
pub struct BuiltImage {
    /// Tag.
    pub tag: String,
    /// Image filesystem as built.
    pub fs: Filesystem,
    /// Image configuration.
    pub config: ImageConfig,
    /// Fakeroot lie database accumulated during the build (Type III).
    pub fakeroot_db: LieDatabase,
    /// The base image reference used by `FROM`.
    pub base_reference: String,
    /// Architecture.
    pub arch: String,
    /// Privilege type used.
    pub privilege: PrivilegeType,
}

/// Report of one build: the transcript reproduces the shape of the paper's
/// figures.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Transcript lines.
    pub transcript: Vec<String>,
    /// Whether the build succeeded.
    pub success: bool,
    /// The tag built.
    pub tag: String,
    /// Total instructions executed.
    pub instructions_total: usize,
    /// RUN instructions rewritten by `--force`.
    pub instructions_modified: usize,
    /// RUN instructions that *could* be rewritten.
    pub modifiable_runs: usize,
    /// Name of the matched force configuration, if any.
    pub force_config: Option<String>,
    /// Cache hits during this build.
    pub cache_hits: usize,
    /// Cache misses during this build.
    pub cache_misses: usize,
    /// Error message if the build failed.
    pub error: Option<String>,
}

impl BuildReport {
    /// The transcript as one string.
    pub fn transcript_text(&self) -> String {
        self.transcript.join("\n")
    }
}

/// Ownership policy when pushing a built image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOwnership {
    /// Flatten to root:root, clear setuid/setgid (Charliecloud default, §6.1).
    Flatten,
    /// Preserve the namespace view of ownership (Podman/Docker).
    Preserve,
    /// Reconstruct ownership from the fakeroot lie database (§6.2.2 item 2).
    FromFakerootDb,
}

/// A container image builder.
pub struct Builder {
    /// The build tool emulated.
    pub kind: BuilderKind,
    /// The invoking user.
    pub invoker: Invoker,
    cache: BuildCache,
    store: HashMap<String, BuiltImage>,
}

struct BuildEnv {
    fs: Filesystem,
    creds: Credentials,
    userns: UserNamespace,
    catalog: Catalog,
    base_reference: String,
}

impl Builder {
    /// Creates a builder.
    pub fn new(kind: BuilderKind, invoker: Invoker) -> Self {
        Builder {
            kind,
            invoker,
            cache: BuildCache::new(),
            store: HashMap::new(),
        }
    }

    /// Convenience: a `ch-image` (Type III) builder for an unprivileged user.
    pub fn ch_image(invoker: Invoker) -> Self {
        Builder::new(BuilderKind::ChImage, invoker)
    }

    /// Convenience: a rootless Podman (Type II) builder with sensible
    /// defaults (local storage, VFS driver as on RHEL 7, Figure 4 subuid map).
    pub fn rootless_podman(invoker: Invoker, subuid: SubIdDb) -> Self {
        Builder::new(
            BuilderKind::RootlessPodman {
                subuid,
                driver: StorageDriver::Vfs,
                backend: FsBackend::LocalDisk,
                sysctl: Sysctl::rhel76(),
            },
            invoker,
        )
    }

    /// Convenience: a Docker (Type I) builder; the invoker must be root.
    pub fn docker() -> Self {
        Builder::new(BuilderKind::Docker, Invoker::root())
    }

    /// The privilege type this builder operates at.
    pub fn privilege_type(&self) -> PrivilegeType {
        match self.kind {
            BuilderKind::Docker => PrivilegeType::TypeI,
            BuilderKind::RootlessPodman { .. } => PrivilegeType::TypeII,
            BuilderKind::ChImage => PrivilegeType::TypeIII,
        }
    }

    /// A previously built image by tag.
    pub fn image(&self, tag: &str) -> Option<&BuiltImage> {
        self.store.get(tag)
    }

    /// Tags of all locally stored images.
    pub fn tags(&self) -> Vec<String> {
        let mut t: Vec<String> = self.store.keys().cloned().collect();
        t.sort();
        t
    }

    /// Clears the per-instruction build cache.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    fn setup_from(&self, reference: &str, arch: &str) -> Result<BuildEnv, String> {
        // Local tag takes precedence over remote base images (the LANL
        // three-stage pipeline chains FROM on locally built tags, §5.3.3).
        if let Some(built) = self.store.get(reference) {
            let catalog = catalog_for(&built.base_reference, arch)
                .ok_or_else(|| format!("no catalog for {}", built.base_reference))?;
            return Ok(BuildEnv {
                fs: built.fs.clone(),
                creds: self.container_creds(),
                userns: self.container_userns(),
                catalog,
                base_reference: built.base_reference.clone(),
            });
        }
        let base = base_image(reference, arch)
            .ok_or_else(|| format!("error: no base image: {}", reference))?;
        // Package the canonical root-owned base tree as an image, then let
        // the runtime instantiate it under the right privilege type.
        let root_creds = Credentials::host_root();
        let host_ns = UserNamespace::initial();
        let actor = Actor::new(&root_creds, &host_ns);
        let cfg = ImageConfig {
            architecture: arch.to_string(),
            ..Default::default()
        };
        let image = Image::from_fs_preserved(reference, &base.fs, &actor, cfg)
            .map_err(|e| format!("error: cannot package base image: {}", e))?;
        let container = match &self.kind {
            BuilderKind::Docker => Container::launch_type1(&image, None),
            BuilderKind::RootlessPodman {
                subuid,
                driver,
                backend,
                sysctl,
            } => Container::launch_type2(&image, &self.invoker, subuid, *driver, *backend, sysctl),
            BuilderKind::ChImage => Container::launch_type3(&image, &self.invoker),
        }
        .map_err(|e| format!("error: cannot create build container: {}", e))?;
        Ok(BuildEnv {
            fs: container.rootfs,
            creds: container.creds,
            userns: container.userns,
            catalog: base.catalog,
            base_reference: reference.to_string(),
        })
    }

    /// Builds the environment for a `FROM` instruction served from the build
    /// cache: the cached filesystem is adopted as-is (copy-on-write), so the
    /// base-image tree is never reconstructed and no container is launched.
    fn env_for_cached_from(
        &self,
        reference: &str,
        arch: &str,
        cached_fs: &Filesystem,
    ) -> Result<BuildEnv, String> {
        let base_reference = match self.store.get(reference) {
            Some(built) => built.base_reference.clone(),
            None => reference.to_string(),
        };
        let catalog = catalog_for(&base_reference, arch)
            .ok_or_else(|| format!("error: no base image: {}", reference))?;
        Ok(BuildEnv {
            fs: cached_fs.clone(),
            creds: self.container_creds(),
            userns: self.container_userns(),
            catalog,
            base_reference,
        })
    }

    fn container_creds(&self) -> Credentials {
        match self.kind {
            BuilderKind::Docker => Credentials::host_root(),
            _ => self.invoker.host_creds().entered_own_namespace(),
        }
    }

    fn container_userns(&self) -> UserNamespace {
        match &self.kind {
            BuilderKind::Docker => UserNamespace::initial(),
            BuilderKind::RootlessPodman { subuid, .. } => {
                let range = subuid.ranges_for(&self.invoker.name).first().copied();
                match range {
                    Some(r) => UserNamespace::type2(self.invoker.uid, self.invoker.gid, r.start, r.count),
                    None => UserNamespace::type3(self.invoker.uid, self.invoker.gid),
                }
            }
            BuilderKind::ChImage => UserNamespace::type3(self.invoker.uid, self.invoker.gid),
        }
    }

    /// Builds a Dockerfile. `context` is the build-context filesystem used by
    /// `COPY` instructions.
    pub fn build(
        &mut self,
        dockerfile_text: &str,
        options: &BuildOptions,
        context: Option<&Filesystem>,
    ) -> BuildReport {
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let mut report = BuildReport {
            transcript: Vec::new(),
            success: false,
            tag: options.tag.clone(),
            instructions_total: 0,
            instructions_modified: 0,
            modifiable_runs: 0,
            force_config: None,
            cache_hits: 0,
            cache_misses: 0,
            error: None,
        };
        let dockerfile = match Dockerfile::parse(dockerfile_text) {
            Ok(d) => d,
            Err(e) => {
                report.error = Some(e.to_string());
                report.transcript.push(format!("error: {}", e));
                return report;
            }
        };

        let mut env: Option<BuildEnv> = None;
        let mut config = ImageConfig {
            architecture: options.arch.clone(),
            ..Default::default()
        };
        let mut fakeroot_db = LieDatabase::new();
        let mut force_cfg: Option<ForceConfig> = None;
        let mut force_initialized = false;
        let mut parent: Option<Digest> = None;

        for (idx, instruction) in dockerfile.instructions.iter().enumerate() {
            let n = idx + 1;
            report.instructions_total = n;
            let display = Self::display_instruction(n, instruction);
            let cache_key_text = format!(
                "{:?}|force={}|{}",
                self.privilege_type(),
                options.force,
                Self::instruction_key(instruction)
            );
            let state_id = BuildCache::state_id(parent.as_ref(), &cache_key_text);

            if options.use_cache {
                if let Some(hit) = self.cache.lookup(&state_id) {
                    report.transcript.push(format!("{} (cached)", display));
                    if let Some(e) = env.as_mut() {
                        // Copy-on-write snapshot: a refcount bump, not a deep
                        // copy of the image tree.
                        e.fs = hit.fs.clone();
                    } else if let Instruction::From { image, .. } = instruction {
                        // FROM served from cache: build the env around the
                        // cached filesystem directly — no base image is
                        // constructed and no container is launched on the
                        // fully cached path.
                        match self.env_for_cached_from(image, &options.arch, &hit.fs) {
                            Ok(fresh) => env = Some(fresh),
                            Err(msg) => {
                                report.error = Some(msg.clone());
                                report.transcript.push(msg);
                                return report;
                            }
                        }
                    }
                    config = hit.config.clone();
                    fakeroot_db = hit.fakeroot_db.clone();
                    parent = Some(state_id);
                    // Force-config detection still applies after FROM.
                    if let (Instruction::From { .. }, BuilderKind::ChImage) =
                        (instruction, &self.kind)
                    {
                        if let Some(e) = &env {
                            force_cfg = detect_config(&e.fs, &e.creds, &e.userns);
                            if options.force {
                                if let Some(cfg) = &force_cfg {
                                    report.force_config = Some(cfg.name.to_string());
                                    report.transcript.push(format!(
                                        "will use --force: {}: {}",
                                        cfg.name, cfg.description
                                    ));
                                }
                            }
                            force_initialized = {
                                // If fakeroot is already in the cached image the
                                // init phase is satisfied.
                                let actor = Actor::new(&e.creds, &e.userns);
                                e.fs.exists(&actor, "/usr/bin/fakeroot")
                            };
                        }
                    }
                    continue;
                }
            }

            match instruction {
                Instruction::From { image, .. } => {
                    report.transcript.push(display.clone());
                    match self.setup_from(image, &options.arch) {
                        Ok(e) => {
                            if let BuilderKind::ChImage = self.kind {
                                force_cfg = detect_config(&e.fs, &e.creds, &e.userns);
                                if options.force {
                                    if let Some(cfg) = &force_cfg {
                                        report.force_config = Some(cfg.name.to_string());
                                        report.transcript.push(format!(
                                            "will use --force: {}: {}",
                                            cfg.name, cfg.description
                                        ));
                                    }
                                }
                            }
                            env = Some(e);
                        }
                        Err(msg) => {
                            report.error = Some(msg.clone());
                            report.transcript.push(msg);
                            return report;
                        }
                    }
                }
                Instruction::Run(cmd) => {
                    report.transcript.push(display.clone());
                    let Some(e) = env.as_mut() else {
                        report.error = Some("error: RUN before FROM".to_string());
                        report.transcript.push("error: RUN before FROM".to_string());
                        return report;
                    };
                    let modifiable = force_cfg
                        .as_ref()
                        .map(|c| c.run_is_modifiable(cmd))
                        .unwrap_or(false);
                    if modifiable {
                        report.modifiable_runs += 1;
                    }
                    let wrap = matches!(self.kind, BuilderKind::ChImage) && options.force && modifiable;

                    let mut shell = ExecEnv::new(
                        &mut e.fs,
                        e.creds.clone(),
                        &e.userns,
                        &e.catalog,
                        &options.arch,
                    );
                    shell.fakeroot_db = fakeroot_db.clone();

                    // --force initialization before the first modified RUN.
                    if wrap && !force_initialized {
                        let cfg = force_cfg.as_ref().expect("wrap implies config");
                        let mut init_failed = None;
                        for (i, step) in cfg.init_steps.iter().enumerate() {
                            report.transcript.push(format!(
                                "workarounds: init step {}: checking: $ {}",
                                i + 1,
                                step.check
                            ));
                            let check = shell.run_command(&step.check);
                            if check.success() {
                                continue;
                            }
                            report
                                .transcript
                                .push(format!("workarounds: init step {}: $ {}", i + 1, step.apply));
                            let apply = shell.run_command(&step.apply);
                            report.transcript.extend(apply.lines.clone());
                            if !apply.success() {
                                init_failed = Some(apply.status);
                                break;
                            }
                        }
                        if let Some(status) = init_failed {
                            let msg = format!(
                                "error: build failed: --force initialization exited with {}",
                                status
                            );
                            report.error = Some(msg.clone());
                            report.transcript.push(msg);
                            return report;
                        }
                        force_initialized = true;
                    }

                    let result = if wrap {
                        report.instructions_modified += 1;
                        report.transcript.push(format!(
                            "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', '{}' ]",
                            cmd
                        ));
                        shell.run_wrapped(cmd)
                    } else {
                        shell.run_command(cmd)
                    };
                    fakeroot_db = shell.fakeroot_db.clone();
                    report.transcript.extend(result.lines.clone());
                    if !result.success() {
                        let msg =
                            format!("error: build failed: RUN command exited with {}", result.status);
                        report.transcript.push(msg.clone());
                        if matches!(self.kind, BuilderKind::ChImage)
                            && !options.force
                            && force_cfg.is_some()
                            && report.modifiable_runs > 0
                        {
                            report.transcript.push(
                                "hint: --force may fix this failure; see ch-image(1)".to_string(),
                            );
                        }
                        report.error = Some(msg);
                        report.cache_hits = self.cache.hits() - hits_before;
                        report.cache_misses = self.cache.misses() - misses_before;
                        return report;
                    }
                }
                Instruction::Copy { sources, dest } => {
                    report.transcript.push(display.clone());
                    let Some(e) = env.as_mut() else {
                        report.error = Some("error: COPY before FROM".to_string());
                        return report;
                    };
                    let Some(ctx) = context else {
                        let msg = format!("error: COPY {}: no build context", sources.join(" "));
                        report.error = Some(msg.clone());
                        report.transcript.push(msg);
                        return report;
                    };
                    for src in sources {
                        let dst = if dest.ends_with('/') {
                            format!("{}{}", dest, src.rsplit('/').next().unwrap_or(src))
                        } else {
                            dest.clone()
                        };
                        let root_creds = Credentials::host_root();
                        let host_ns = UserNamespace::initial();
                        let actor = Actor::new(&root_creds, &host_ns);
                        match ctx.file_bytes(&actor, &format!("/{}", src.trim_start_matches('/'))) {
                            Ok(content) => {
                                e.fs
                                    .install_file(
                                        &dst,
                                        content,
                                        e.creds.euid,
                                        e.creds.egid,
                                        Mode::FILE_644,
                                    )
                                    .ok();
                            }
                            Err(_) => {
                                let msg = format!("error: COPY {}: not found in context", src);
                                report.error = Some(msg.clone());
                                report.transcript.push(msg);
                                return report;
                            }
                        }
                    }
                }
                Instruction::Env { key, value } => {
                    report.transcript.push(display.clone());
                    config.env.insert(key.clone(), value.clone());
                }
                Instruction::Workdir(path) => {
                    report.transcript.push(display.clone());
                    config.workdir = path.clone();
                    if let Some(e) = env.as_mut() {
                        let actor = Actor::new(&e.creds, &e.userns);
                        if !e.fs.exists(&actor, path) {
                            let _ = e.fs.install_dir(path, e.creds.euid, e.creds.egid, Mode::DIR_755);
                        }
                    }
                }
                Instruction::Label { key, value } => {
                    report.transcript.push(display.clone());
                    config.labels.insert(key.clone(), value.clone());
                }
                Instruction::Cmd(args) => {
                    report.transcript.push(display.clone());
                    config.cmd = args.clone();
                }
                Instruction::Entrypoint(args) => {
                    report.transcript.push(display.clone());
                    config.entrypoint = args.clone();
                }
                Instruction::User(_)
                | Instruction::Arg { .. }
                | Instruction::Expose(_)
                | Instruction::Volume(_) => {
                    report.transcript.push(display.clone());
                }
            }

            if options.use_cache {
                if let Some(e) = &env {
                    self.cache.store(CachedState {
                        fs: e.fs.clone(),
                        config: config.clone(),
                        fakeroot_db: fakeroot_db.clone(),
                        state_id,
                    });
                }
            }
            parent = Some(state_id);
        }

        let Some(e) = env else {
            report.error = Some("error: Dockerfile has no FROM".to_string());
            return report;
        };
        if matches!(self.kind, BuilderKind::ChImage) && options.force && report.force_config.is_some()
        {
            report.transcript.push(format!(
                "--force: init OK & modified {} RUN instructions",
                report.instructions_modified
            ));
        }
        report.transcript.push(format!(
            "grown in {} instructions: {}",
            report.instructions_total, options.tag
        ));
        self.store.insert(
            options.tag.clone(),
            BuiltImage {
                tag: options.tag.clone(),
                fs: e.fs,
                config,
                fakeroot_db,
                base_reference: e.base_reference,
                arch: options.arch.clone(),
                privilege: self.privilege_type(),
            },
        );
        report.success = true;
        report.cache_hits = self.cache.hits() - hits_before;
        report.cache_misses = self.cache.misses() - misses_before;
        report
    }

    fn instruction_key(instruction: &Instruction) -> String {
        format!("{:?}", instruction)
    }

    fn display_instruction(n: usize, instruction: &Instruction) -> String {
        match instruction {
            Instruction::From { image, alias } => match alias {
                Some(a) => format!("{} FROM {} AS {}", n, image, a),
                None => format!("{} FROM {}", n, image),
            },
            Instruction::Run(cmd) => format!("{} RUN [ '/bin/sh', '-c', '{}' ]", n, cmd),
            Instruction::Copy { sources, dest } => {
                format!("{} COPY {} {}", n, sources.join(" "), dest)
            }
            Instruction::Env { key, value } => format!("{} ENV {}={}", n, key, value),
            Instruction::Arg { name, .. } => format!("{} ARG {}", n, name),
            Instruction::Workdir(p) => format!("{} WORKDIR {}", n, p),
            Instruction::User(u) => format!("{} USER {}", n, u),
            Instruction::Label { key, value } => format!("{} LABEL {}={}", n, key, value),
            Instruction::Cmd(args) => format!("{} CMD {:?}", n, args),
            Instruction::Entrypoint(args) => format!("{} ENTRYPOINT {:?}", n, args),
            Instruction::Expose(p) => format!("{} EXPOSE {}", n, p),
            Instruction::Volume(v) => format!("{} VOLUME {}", n, v),
        }
    }

    /// Pushes a built image to a registry under `reference`, applying the
    /// chosen ownership policy (paper §6.1, §6.2.2).
    pub fn push(
        &mut self,
        tag: &str,
        reference: &str,
        registry: &mut Registry,
        ownership: PushOwnership,
    ) -> Result<Digest, String> {
        let built = self
            .store
            .get(tag)
            .ok_or_else(|| format!("no such image: {}", tag))?;
        let creds = self.container_creds();
        let userns = self.container_userns();
        let actor = Actor::new(&creds, &userns);
        let mut cfg = built.config.clone();
        cfg.architecture = built.arch.clone();
        let image = match ownership {
            PushOwnership::Flatten => Image::from_fs_flattened(reference, &built.fs, &actor, cfg),
            PushOwnership::Preserve => Image::from_fs_preserved(reference, &built.fs, &actor, cfg),
            PushOwnership::FromFakerootDb => Image::from_fs_with_ownership_db(
                reference,
                &built.fs,
                &actor,
                cfg,
                built.fakeroot_db.ownership_map(),
            ),
        }
        .map_err(|e| format!("push failed: {}", e))?;
        registry
            .push(&self.invoker.name, &image)
            .map_err(|e| format!("push failed: {}", e))
    }

    /// Pulls an image from a registry and stores it locally under `tag`,
    /// unpacking it per this builder's privilege type (a Type III pull
    /// changes ownership to the invoking user, paper §5.2).
    pub fn pull(
        &mut self,
        registry: &mut Registry,
        reference: &str,
        tag: &str,
    ) -> Result<(), String> {
        let image = registry.pull(reference).map_err(|e| e.to_string())?;
        let force_owner = match self.kind {
            BuilderKind::Docker => None,
            _ => Some((self.invoker.uid, self.invoker.gid)),
        };
        let fs = image.unpack(force_owner).map_err(|e| e.to_string())?;
        self.store.insert(
            tag.to_string(),
            BuiltImage {
                tag: tag.to_string(),
                fs,
                config: image.config.clone(),
                fakeroot_db: LieDatabase::new(),
                base_reference: reference.to_string(),
                arch: image.config.architecture.clone(),
                privilege: self.privilege_type(),
            },
        );
        Ok(())
    }
}

/// Figure-4 style default subuid database for one user.
pub fn default_subuid_for(user: &str) -> SubIdDb {
    let mut db = SubIdDb::new();
    db.add_range(user, 200_000, 65_536);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dockerfile::{
        centos7_dockerfile, centos7_fr_dockerfile, debian10_dockerfile, debian10_fr_dockerfile,
    };
    use hpcc_kernel::{Gid, Uid};

    fn alice() -> Invoker {
        Invoker::user("alice", 1000, 1000)
    }

    #[test]
    fn figure2_plain_type3_build_fails_on_chown() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("foo"), None);
        assert!(!r.success);
        let t = r.transcript_text();
        assert!(t.contains("1 FROM centos:7"));
        assert!(t.contains("2 RUN [ '/bin/sh', '-c', 'echo hello' ]"));
        assert!(t.contains("hello"));
        assert!(t.contains("Error unpacking rpm package openssh-7.4p1-21.el7.x86_64"));
        assert!(t.contains("cpio: chown"));
        assert!(t.contains("error: build failed: RUN command exited with 1"));
        // The hint the paper mentions was omitted from Figure 2.
        assert!(t.contains("--force may fix"));
    }

    #[test]
    fn figure3_plain_type3_debian_build_fails_on_privilege_drop() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            debian10_dockerfile(),
            &BuildOptions::new("foo").with_arch("amd64"),
            None,
        );
        assert!(!r.success);
        let t = r.transcript_text();
        assert!(t.contains("E: setgroups 65534 failed - setgroups (1: Operation not permitted)"));
        assert!(t.contains("E: setegid 65534 failed - setegid (22: Invalid argument)"));
        assert!(t.contains("E: seteuid 100 failed - seteuid (22: Invalid argument)"));
        assert!(t.contains("error: build failed: RUN command exited with 100"));
    }

    #[test]
    fn figure8_manually_modified_centos_dockerfile_succeeds() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(centos7_fr_dockerfile(), &BuildOptions::new("foo"), None);
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("Complete!"));
        assert!(t.contains("grown in 5 instructions: foo"));
        assert_eq!(r.instructions_modified, 0, "no automatic modification");
    }

    #[test]
    fn figure9_manually_modified_debian_dockerfile_succeeds() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            debian10_fr_dockerfile(),
            &BuildOptions::new("foo").with_arch("amd64"),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("Setting up pseudo (1.9.0+git20180920-1) ..."));
        assert!(t.contains("W: chown to root:adm of file /var/log/apt/term.log failed"));
        assert!(t.contains("Setting up openssh-client (1:7.9p1-10+deb10u2) ..."));
        assert!(t.contains("grown in 6 instructions: foo"));
    }

    #[test]
    fn figure10_force_build_centos_unmodified_dockerfile() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("foo").with_force(),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("will use --force: rhel7: CentOS/RHEL 7"));
        assert!(t.contains("workarounds: init step 1: checking: $ command -v fakeroot"));
        assert!(t.contains("workarounds: init step 1: $ set -ex;"));
        assert!(t.contains("+ yum install -y epel-release"));
        assert!(t.contains(
            "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', 'yum install -y openssh' ]"
        ));
        assert!(t.contains("--force: init OK & modified 1 RUN instructions"));
        assert!(t.contains("grown in 3 instructions: foo"));
        assert_eq!(r.force_config.as_deref(), Some("rhel7"));
        assert_eq!(r.instructions_modified, 1);
    }

    #[test]
    fn figure11_force_build_debian_unmodified_dockerfile() {
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            debian10_dockerfile(),
            &BuildOptions::new("foo").with_force().with_arch("amd64"),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        let t = r.transcript_text();
        assert!(t.contains("will use --force: debderiv: Debian (9, 10) or Ubuntu (16, 18, 20)"));
        assert!(t.contains("workarounds: init step 1: checking: $ apt-config dump"));
        assert!(t.contains("workarounds: init step 1: $ echo 'APT::Sandbox::User"));
        assert!(t.contains("workarounds: init step 2: checking: $ command -v fakeroot"));
        assert!(t.contains("workarounds: init step 2: $ apt-get update && apt-get install -y pseudo"));
        assert!(t.contains("Setting up pseudo (1.9.0+git20180920-1) ..."));
        assert!(t.contains(
            "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', 'apt-get update' ]"
        ));
        assert!(t.contains(
            "workarounds: RUN: new command: [ 'fakeroot', '/bin/sh', '-c', 'apt-get install -y openssh-client' ]"
        ));
        assert!(t.contains("--force: init OK & modified 2 RUN instructions"));
        assert!(t.contains("grown in 4 instructions: foo"));
        assert_eq!(r.instructions_modified, 2);
    }

    #[test]
    fn rootless_podman_builds_both_dockerfiles_unmodified() {
        // Paper §4.1: "the examples detailed in Figures 2 and 3 will both
        // succeed as expected" under properly configured rootless Podman.
        let mut b = Builder::rootless_podman(alice(), default_subuid_for("alice"));
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("c7"), None);
        assert!(r.success, "{}", r.transcript_text());
        assert_eq!(r.instructions_modified, 0);
        let r = b.build(
            debian10_dockerfile(),
            &BuildOptions::new("d10").with_arch("amd64"),
            None,
        );
        assert!(r.success, "{}", r.transcript_text());
        // Ownership inside the image really is multi-UID (subordinate IDs).
        let img = b.image("c7").unwrap();
        assert!(img.fs.distinct_owner_uids().len() > 1);
    }

    #[test]
    fn docker_type1_builds_but_requires_root() {
        let mut b = Builder::docker();
        assert_eq!(b.privilege_type(), PrivilegeType::TypeI);
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("c7"), None);
        assert!(r.success, "{}", r.transcript_text());
        let img = b.image("c7").unwrap();
        // Type I keeps real root ownership.
        assert!(img.fs.distinct_owner_uids().contains(&Uid(0)));
    }

    #[test]
    fn podman_without_subuid_ranges_fails_to_create_container() {
        let mut b = Builder::rootless_podman(alice(), SubIdDb::new());
        let r = b.build(centos7_dockerfile(), &BuildOptions::new("c7"), None);
        assert!(!r.success);
        assert!(r.transcript_text().contains("cannot create build container"));
    }

    #[test]
    fn build_cache_hits_on_rebuild() {
        let mut b = Builder::ch_image(alice());
        let opts = BuildOptions::new("foo").with_force().with_cache();
        let first = b.build(centos7_dockerfile(), &opts, None);
        assert!(first.success);
        assert_eq!(first.cache_hits, 0);
        let second = b.build(centos7_dockerfile(), &opts, None);
        assert!(second.success, "{}", second.transcript_text());
        assert_eq!(second.cache_hits, 3, "{}", second.transcript_text());
        assert!(second.transcript_text().contains("(cached)"));
        // Extending the Dockerfile reuses the prefix.
        let extended = format!("{}RUN echo extra\n", centos7_dockerfile());
        let third = b.build(&extended, &opts, None);
        assert!(third.success);
        assert_eq!(third.cache_hits, 3);
        assert!(third.transcript_text().contains("echo extra"));
    }

    #[test]
    fn copy_uses_build_context() {
        let mut ctx = Filesystem::new_local();
        ctx.install_file("/app.c", b"int main(){}".to_vec(), Uid(0), Gid(0), Mode::FILE_644)
            .unwrap();
        let mut b = Builder::ch_image(alice());
        let df = "FROM centos:7\nCOPY app.c /src/app.c\nRUN gcc -o /src/app /src/app.c\n";
        let r = b.build(df, &BuildOptions::new("app"), Some(&ctx));
        assert!(!r.success, "gcc is not installed in the base image");
        let df2 = "FROM centos:7\nRUN yum install -y gcc\nCOPY app.c /src/app.c\nRUN gcc -o /src/app /src/app.c\n";
        let r = b.build(df2, &BuildOptions::new("app"), Some(&ctx));
        assert!(r.success, "{}", r.transcript_text());
        let img = b.image("app").unwrap();
        let actor_creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
        let ns = UserNamespace::initial();
        let actor = Actor::new(&actor_creds, &ns);
        assert!(img.fs.exists(&actor, "/src/app.c"));
    }

    #[test]
    fn from_local_tag_chains_builds() {
        let mut b = Builder::ch_image(alice());
        let base = "FROM centos:7\nRUN yum install -y openmpi\n";
        assert!(b.build(base, &BuildOptions::new("stage1"), None).success);
        let app = "FROM stage1\nRUN yum install -y spack\nENV STACK=atse\n";
        let r = b.build(app, &BuildOptions::new("stage2"), None);
        assert!(r.success, "{}", r.transcript_text());
        let img = b.image("stage2").unwrap();
        assert_eq!(img.config.env.get("STACK").unwrap(), "atse");
        let creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);
        assert!(img.fs.exists(&actor, "/usr/lib64/openmpi/bin/mpirun"));
        assert!(img.fs.exists(&actor, "/opt/spack/bin/spack"));
    }

    #[test]
    fn push_flatten_and_pull_roundtrip() {
        let mut registry = Registry::new("registry.lanl.example");
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("foo").with_force(),
            None,
        );
        assert!(r.success);
        let digest = b
            .push("foo", "hpc/openssh:1.0", &mut registry, PushOwnership::Flatten)
            .unwrap();
        assert!(digest.to_oci_string().starts_with("sha256:"));
        // Pull back as a different user.
        let mut b2 = Builder::ch_image(Invoker::user("bob", 1001, 1001));
        b2.pull(&mut registry, "hpc/openssh:1.0", "openssh").unwrap();
        let img = b2.image("openssh").unwrap();
        // Every unpacked entry (not counting the filesystem root inode) is
        // owned by the pulling user.
        for (path, ino) in img.fs.walk() {
            assert_eq!(img.fs.inode(ino).unwrap().uid, Uid(1001), "{}", path);
        }
    }

    #[test]
    fn push_with_fakeroot_db_preserves_intended_ownership() {
        let mut registry = Registry::new("r");
        let mut b = Builder::ch_image(alice());
        let r = b.build(
            centos7_dockerfile(),
            &BuildOptions::new("foo").with_force(),
            None,
        );
        assert!(r.success);
        b.push("foo", "hpc/openssh:ids", &mut registry, PushOwnership::FromFakerootDb)
            .unwrap();
        let image = registry.pull("hpc/openssh:ids").unwrap();
        // The ssh-keysign helper's intended group (999) survives the push.
        let entries = hpcc_vfs::tar::list(&image.layers[0].tar).unwrap();
        let keysign = entries
            .iter()
            .find(|e| e.path == "usr/libexec/openssh/ssh-keysign")
            .unwrap();
        assert_eq!(keysign.gid, 999);
    }

    #[test]
    fn unknown_base_image_reports_error() {
        let mut b = Builder::ch_image(alice());
        let r = b.build("FROM alpine:3.14\nRUN echo hi\n", &BuildOptions::new("x"), None);
        assert!(!r.success);
        assert!(r.transcript_text().contains("no base image"));
    }
}
