//! Stage-aware intermediate representation of a Dockerfile.
//!
//! [`crate::dockerfile::Dockerfile::parse`] is the *only* tokenizer; this
//! module lowers its flat instruction list into a [`BuildIr`] — stages split
//! on `FROM` boundaries, with aliases, per-instruction source spans, and the
//! raw `COPY --from=` references that the planner ([`crate::graph`]) resolves
//! into DAG edges. The multi-stage path used to re-tokenize the Dockerfile
//! text with its own line-based parser; that duplicate is gone.

use std::collections::BTreeMap;

use crate::dockerfile::{Dockerfile, InstrSpan, Instruction};
use crate::error::BuildError;

/// One stage of a (possibly multi-stage) Dockerfile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrStage {
    /// 0-based stage index, in order of appearance.
    pub index: usize,
    /// `FROM ... AS <alias>` alias, if present.
    pub alias: Option<String>,
    /// The raw `FROM` reference (base image, local tag, or earlier stage
    /// alias — resolved by the planner, not here).
    pub base: String,
    /// The stage's instructions; element 0 is always the `FROM`.
    pub instructions: Vec<Instruction>,
    /// Source span of each instruction (parallel to `instructions`).
    pub spans: Vec<InstrSpan>,
}

impl IrStage {
    /// Raw `--from=` references made by this stage's `COPY` instructions,
    /// with the index of the instruction making each.
    pub fn copy_from_refs(&self) -> Vec<(usize, &str)> {
        self.instructions
            .iter()
            .enumerate()
            .filter_map(|(i, instr)| match instr {
                Instruction::Copy { from: Some(r), .. } => Some((i, r.as_str())),
                _ => None,
            })
            .collect()
    }
}

/// The stage-aware IR: what the planner and executor consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildIr {
    /// `ARG` instructions appearing before the first `FROM` (Docker's global
    /// build args). Recorded but not executed.
    pub global_args: Vec<Instruction>,
    /// Stages in order of appearance.
    pub stages: Vec<IrStage>,
}

impl BuildIr {
    /// Parses Dockerfile text straight to IR (single tokenizer:
    /// [`Dockerfile::parse`]), with no per-build `ARG` overrides.
    pub fn parse(text: &str) -> Result<BuildIr, BuildError> {
        BuildIr::parse_with_args(text, &BTreeMap::new())
    }

    /// Like [`BuildIr::parse`], but with `--build-arg`-style overrides: a
    /// value in `build_args` overrides the default of any *declared* `ARG`
    /// of that name (overrides for undeclared names are ignored, as Docker
    /// does).
    pub fn parse_with_args(
        text: &str,
        build_args: &BTreeMap<String, String>,
    ) -> Result<BuildIr, BuildError> {
        let df = Dockerfile::parse(text)?;
        BuildIr::from_dockerfile_with_args(&df, build_args)
    }

    /// Lowers a parsed [`Dockerfile`] into stages without overrides.
    pub fn from_dockerfile(df: &Dockerfile) -> Result<BuildIr, BuildError> {
        BuildIr::from_dockerfile_with_args(df, &BTreeMap::new())
    }

    /// Lowers a parsed [`Dockerfile`] into stages.
    ///
    /// `ARG` substitution happens here, at lowering time, so the planner
    /// sees concrete `FROM` references and the executor's cache keys bind to
    /// the *substituted* instruction text (a rebuild with different
    /// `--build-arg` values can never hit a stale entry):
    ///
    /// * global `ARG`s (before the first `FROM`) substitute into `FROM`
    ///   image references — Docker's "ARG before FROM" semantics — but are
    ///   **not** visible inside a stage unless redeclared there (`ARG NAME`
    ///   with no default inherits the global value), exactly as Docker
    ///   scopes them;
    /// * `ARG`s declared inside a stage join that stage's scope from that
    ///   instruction on, shadowing any global of the same name, and every
    ///   `FROM` starts an empty stage scope;
    /// * `RUN` commands, `ENV` values, and `COPY` sources/destination are
    ///   substituted against the scope in effect;
    /// * values from `build_args` override declared defaults (global or
    ///   stage-local).
    pub fn from_dockerfile_with_args(
        df: &Dockerfile,
        build_args: &BTreeMap<String, String>,
    ) -> Result<BuildIr, BuildError> {
        let mut global_args = Vec::new();
        let mut arg_values: BTreeMap<String, String> = BTreeMap::new();
        // Per-stage scope, reset to empty at each FROM: globals must be
        // redeclared inside the stage to become visible (Docker semantics).
        let mut stage_args: BTreeMap<String, String> = BTreeMap::new();
        let mut stages: Vec<IrStage> = Vec::new();
        let effective = |name: &str, default: &Option<String>| -> Option<String> {
            build_args.get(name).or(default.as_ref()).cloned()
        };
        for (i, instruction) in df.instructions.iter().enumerate() {
            let span = df
                .spans
                .get(i)
                .copied()
                .unwrap_or(InstrSpan { start: 0, end: 0 });
            if let Instruction::From { image, alias } = instruction {
                let image = substitute_args(image, &arg_values);
                stage_args = BTreeMap::new();
                stages.push(IrStage {
                    index: stages.len(),
                    alias: alias.clone(),
                    base: image.clone(),
                    instructions: vec![Instruction::From {
                        image,
                        alias: alias.clone(),
                    }],
                    spans: vec![span],
                });
                continue;
            }
            match stages.last_mut() {
                Some(stage) => {
                    let lowered = match instruction {
                        Instruction::Arg { name, default } => {
                            // Redeclaration: override > stage default >
                            // global value (a default-less `ARG NAME`
                            // inherits the global declaration, as Docker's
                            // scoping rules specify).
                            let value =
                                effective(name, default).or_else(|| arg_values.get(name).cloned());
                            if let Some(value) = value {
                                stage_args.insert(name.clone(), value);
                            }
                            instruction.clone()
                        }
                        Instruction::Run(cmd) => {
                            Instruction::Run(substitute_args(cmd, &stage_args))
                        }
                        Instruction::Env { key, value } => Instruction::Env {
                            key: key.clone(),
                            value: substitute_args(value, &stage_args),
                        },
                        Instruction::Copy {
                            sources,
                            dest,
                            from,
                        } => Instruction::Copy {
                            sources: sources
                                .iter()
                                .map(|s| substitute_args(s, &stage_args))
                                .collect(),
                            dest: substitute_args(dest, &stage_args),
                            from: from.clone(),
                        },
                        other => other.clone(),
                    };
                    stage.instructions.push(lowered);
                    stage.spans.push(span);
                }
                None => {
                    // Docker permits global ARGs before the first FROM;
                    // anything else there is an error.
                    if let Instruction::Arg { name, default } = instruction {
                        if let Some(value) = effective(name, default) {
                            arg_values.insert(name.clone(), value);
                        }
                        global_args.push(instruction.clone());
                    } else {
                        return Err(BuildError::BeforeFirstFrom {
                            instruction: keyword(instruction).to_string(),
                        });
                    }
                }
            }
        }
        if stages.is_empty() {
            return Err(BuildError::NoStages);
        }
        Ok(BuildIr {
            global_args,
            stages,
        })
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// True if the Dockerfile has more than one stage.
    pub fn is_multistage(&self) -> bool {
        self.stages.len() > 1
    }

    /// Resolves a stage reference — an alias (`builder`) or a 0-based index
    /// (`0`) — to a stage index, without any position validation (the planner
    /// enforces backward-only references).
    pub fn resolve_stage(&self, reference: &str) -> Option<usize> {
        if let Ok(idx) = reference.parse::<usize>() {
            return (idx < self.stages.len()).then_some(idx);
        }
        self.stages
            .iter()
            .find(|s| s.alias.as_deref() == Some(reference))
            .map(|s| s.index)
    }
}

/// Substitutes `${NAME}` and `$NAME` references in `reference` with values
/// from `args`. Unknown names are left verbatim so the error surfaces later
/// as an unknown image reference instead of a silent empty string.
pub fn substitute_args(reference: &str, args: &BTreeMap<String, String>) -> String {
    let bytes = reference.as_bytes();
    let mut out = String::with_capacity(reference.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'$' {
            let start = i;
            while i < bytes.len() && bytes[i] != b'$' {
                i += 1;
            }
            // '$' is ASCII, so these are valid UTF-8 boundaries.
            out.push_str(&reference[start..i]);
            continue;
        }
        let braced = i + 1 < bytes.len() && bytes[i + 1] == b'{';
        let name_start = if braced { i + 2 } else { i + 1 };
        let mut j = name_start;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        let name = &reference[name_start..j];
        let closed = !braced || (j < bytes.len() && bytes[j] == b'}');
        if name.is_empty() || !closed {
            out.push('$');
            i += 1;
            continue;
        }
        match args.get(name) {
            Some(value) => {
                out.push_str(value);
                i = if braced { j + 1 } else { j };
            }
            None => {
                out.push('$');
                i += 1;
            }
        }
    }
    out
}

fn keyword(instruction: &Instruction) -> &'static str {
    match instruction {
        Instruction::From { .. } => "FROM",
        Instruction::Run(_) => "RUN",
        Instruction::Copy { .. } => "COPY",
        Instruction::Env { .. } => "ENV",
        Instruction::Arg { .. } => "ARG",
        Instruction::Workdir(_) => "WORKDIR",
        Instruction::User(_) => "USER",
        Instruction::Label { .. } => "LABEL",
        Instruction::Cmd(_) => "CMD",
        Instruction::Entrypoint(_) => "ENTRYPOINT",
        Instruction::Expose(_) => "EXPOSE",
        Instruction::Volume(_) => "VOLUME",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_STAGE: &str = "\
FROM centos:7 AS builder
RUN echo compiling
RUN mkdir -p /opt/app/bin && echo binary > /opt/app/bin/app

FROM centos:7
COPY --from=builder /opt/app/bin/app /usr/local/bin/app
RUN echo runtime ready
";

    #[test]
    fn splits_stages_and_extracts_copy_from() {
        let ir = BuildIr::parse(TWO_STAGE).unwrap();
        assert_eq!(ir.stage_count(), 2);
        assert!(ir.is_multistage());
        assert_eq!(ir.stages[0].alias.as_deref(), Some("builder"));
        assert_eq!(ir.stages[0].base, "centos:7");
        assert_eq!(ir.stages[1].copy_from_refs(), vec![(1, "builder")]);
        assert_eq!(ir.resolve_stage("builder"), Some(0));
        assert_eq!(ir.resolve_stage("0"), Some(0));
        assert_eq!(ir.resolve_stage("1"), Some(1));
        assert_eq!(ir.resolve_stage("2"), None);
        assert_eq!(ir.resolve_stage("missing"), None);
    }

    #[test]
    fn single_stage_keeps_all_instructions() {
        let ir = BuildIr::parse("FROM centos:7\nRUN echo hi\nENV A=b\n").unwrap();
        assert_eq!(ir.stage_count(), 1);
        assert!(!ir.is_multistage());
        assert_eq!(ir.stages[0].instructions.len(), 3);
        assert_eq!(ir.stages[0].spans.len(), 3);
        assert!(matches!(
            ir.stages[0].instructions[0],
            Instruction::From { .. }
        ));
    }

    #[test]
    fn instruction_before_first_from_is_an_error() {
        assert_eq!(
            BuildIr::parse("RUN echo hi\nFROM centos:7\n").unwrap_err(),
            BuildError::BeforeFirstFrom {
                instruction: "RUN".into()
            }
        );
        assert_eq!(
            BuildIr::parse("# comment only\n").unwrap_err(),
            BuildError::NoStages
        );
    }

    #[test]
    fn global_args_before_first_from_are_kept_aside() {
        let ir = BuildIr::parse("ARG VERSION=1\nFROM centos:7\nRUN echo hi\n").unwrap();
        assert_eq!(ir.global_args.len(), 1);
        assert_eq!(ir.stages[0].instructions.len(), 2);
    }

    #[test]
    fn global_arg_substitutes_into_from_reference() {
        let ir = BuildIr::parse("ARG BASE=centos:7\nFROM ${BASE}\nRUN echo hi\n").unwrap();
        assert_eq!(ir.stages[0].base, "centos:7");
        // The stored FROM instruction carries the substituted reference too,
        // so cache keys and transcripts bind to the concrete image.
        assert_eq!(
            ir.stages[0].instructions[0],
            Instruction::From {
                image: "centos:7".into(),
                alias: None
            }
        );
        // Unbraced form and partial substitution.
        let ir = BuildIr::parse("ARG TAG=7\nFROM centos:$TAG\n").unwrap();
        assert_eq!(ir.stages[0].base, "centos:7");
        // ARG without a default (or unknown name) leaves the reference as-is.
        let ir = BuildIr::parse("ARG BASE\nFROM ${BASE}\n").unwrap();
        assert_eq!(ir.stages[0].base, "${BASE}");
    }

    #[test]
    fn substitute_args_edge_cases() {
        let mut args = BTreeMap::new();
        args.insert("BASE".to_string(), "centos".to_string());
        args.insert("TAG".to_string(), "7".to_string());
        assert_eq!(substitute_args("${BASE}:${TAG}", &args), "centos:7");
        assert_eq!(substitute_args("$BASE:$TAG", &args), "centos:7");
        assert_eq!(substitute_args("plain:ref", &args), "plain:ref");
        // Unknown name, unterminated brace, trailing dollar: all verbatim.
        assert_eq!(substitute_args("${NOPE}", &args), "${NOPE}");
        assert_eq!(substitute_args("${BASE", &args), "${BASE");
        assert_eq!(substitute_args("x$", &args), "x$");
    }

    #[test]
    fn args_substitute_into_run_env_copy_operands() {
        // Globals are redeclared inside the stage (Docker scoping); the
        // default-less redeclarations inherit the global defaults.
        let df = "\
ARG PKG=openssh
ARG PREFIX=/opt
FROM centos:7
ARG PKG
ARG PREFIX
ARG EXTRA=vim
RUN yum install -y ${PKG} $EXTRA
ENV TOOLDIR=${PREFIX}/tools
COPY ${PKG}.conf ${PREFIX}/etc/
";
        let ir = BuildIr::parse(df).unwrap();
        let instrs = &ir.stages[0].instructions;
        assert_eq!(
            instrs[4],
            Instruction::Run("yum install -y openssh vim".into())
        );
        assert_eq!(
            instrs[5],
            Instruction::Env {
                key: "TOOLDIR".into(),
                value: "/opt/tools".into()
            }
        );
        assert_eq!(
            instrs[6],
            Instruction::Copy {
                sources: vec!["openssh.conf".into()],
                dest: "/opt/etc/".into(),
                from: None,
            }
        );
    }

    #[test]
    fn global_args_invisible_in_stage_without_redeclaration() {
        // The documented gap vs Docker is closed: a global ARG substitutes
        // into FROM but is NOT visible inside the stage unless redeclared.
        let df = "\
ARG BASE=centos:7
ARG PKG=openssh
FROM ${BASE}
RUN yum install -y ${PKG}
";
        let ir = BuildIr::parse(df).unwrap();
        assert_eq!(ir.stages[0].base, "centos:7");
        assert_eq!(
            ir.stages[0].instructions[1],
            Instruction::Run("yum install -y ${PKG}".into()),
            "undeclared use stays verbatim"
        );
        // Even a --build-arg override cannot reach an unredeclared name.
        let mut ov = BTreeMap::new();
        ov.insert("PKG".to_string(), "gcc".to_string());
        let ir = BuildIr::parse_with_args(df, &ov).unwrap();
        assert_eq!(
            ir.stages[0].instructions[1],
            Instruction::Run("yum install -y ${PKG}".into())
        );
    }

    #[test]
    fn stage_redeclaration_inherits_and_shadows_global() {
        let df = "\
ARG PKG=openssh
FROM centos:7 AS first
ARG PKG
RUN echo ${PKG}
FROM centos:7
ARG PKG=vim
RUN echo ${PKG}
";
        let ir = BuildIr::parse(df).unwrap();
        // Default-less redeclaration inherits the global default.
        assert_eq!(
            ir.stages[0].instructions[2],
            Instruction::Run("echo openssh".into())
        );
        // A stage default shadows the global one.
        assert_eq!(
            ir.stages[1].instructions[2],
            Instruction::Run("echo vim".into())
        );
        // An override beats both the stage and global defaults.
        let mut ov = BTreeMap::new();
        ov.insert("PKG".to_string(), "tmux".to_string());
        let ir = BuildIr::parse_with_args(df, &ov).unwrap();
        assert_eq!(
            ir.stages[0].instructions[2],
            Instruction::Run("echo tmux".into())
        );
        assert_eq!(
            ir.stages[1].instructions[2],
            Instruction::Run("echo tmux".into())
        );
    }

    #[test]
    fn arg_scoping_survives_planning() {
        // Parse → plan: ARG-substituted FROMs and aliases still produce a
        // valid DAG, and the unredeclared global never leaks into stage
        // instructions that the planner walks for COPY --from references.
        let df = "\
ARG BASE=centos:7
FROM ${BASE} AS builder
ARG OUT=/opt/app
RUN mkdir -p ${OUT}
FROM ${BASE}
COPY --from=builder /opt/app /opt/app
RUN echo ${OUT}
";
        let ir = BuildIr::parse(df).unwrap();
        assert_eq!(ir.stages[0].base, "centos:7");
        assert_eq!(ir.stages[1].base, "centos:7");
        assert_eq!(
            ir.stages[0].instructions[2],
            Instruction::Run("mkdir -p /opt/app".into())
        );
        // OUT was stage-0-local: stage 1 sees it verbatim.
        assert_eq!(
            ir.stages[1].instructions[2],
            Instruction::Run("echo ${OUT}".into())
        );
        let graph = crate::graph::BuildGraph::plan(&ir).expect("plans");
        assert_eq!(graph.stage_count(), 2);
    }

    #[test]
    fn build_arg_overrides_replace_declared_defaults_only() {
        let df =
            "ARG PKG=openssh\nFROM centos:7\nARG PKG\nRUN yum install -y ${PKG} ${UNDECLARED}\n";
        let mut overrides = BTreeMap::new();
        overrides.insert("PKG".to_string(), "gcc".to_string());
        // Overrides for undeclared ARGs are ignored (Docker semantics).
        overrides.insert("UNDECLARED".to_string(), "nope".to_string());
        let ir = BuildIr::parse_with_args(df, &overrides).unwrap();
        assert_eq!(
            ir.stages[0].instructions[2],
            Instruction::Run("yum install -y gcc ${UNDECLARED}".into())
        );
        // An override can supply a value for a default-less declared ARG.
        let df2 = "FROM centos:7\nARG TARGET\nRUN echo building for ${TARGET}\n";
        let mut ov2 = BTreeMap::new();
        ov2.insert("TARGET".to_string(), "aarch64".to_string());
        let ir2 = BuildIr::parse_with_args(df2, &ov2).unwrap();
        assert_eq!(
            ir2.stages[0].instructions[2],
            Instruction::Run("echo building for aarch64".into())
        );
        // Without the override the default-less reference stays verbatim.
        let ir3 = BuildIr::parse(df2).unwrap();
        assert_eq!(
            ir3.stages[0].instructions[2],
            Instruction::Run("echo building for ${TARGET}".into())
        );
    }

    #[test]
    fn stage_scope_resets_at_from_boundaries() {
        // A stage-local ARG does not leak into the next stage, and the
        // global BASE is invisible inside both stages (never redeclared).
        let df = "\
ARG BASE=centos:7
FROM ${BASE} AS builder
ARG LOCAL=one
RUN echo ${LOCAL} ${BASE}
FROM ${BASE}
RUN echo ${LOCAL} ${BASE}
";
        let ir = BuildIr::parse(df).unwrap();
        assert_eq!(
            ir.stages[0].instructions[2],
            Instruction::Run("echo one ${BASE}".into())
        );
        assert_eq!(
            ir.stages[1].instructions[1],
            Instruction::Run("echo ${LOCAL} ${BASE}".into())
        );
    }

    #[test]
    fn spans_survive_lowering() {
        let ir = BuildIr::parse(TWO_STAGE).unwrap();
        // Stage 1's FROM is on physical line 5.
        assert_eq!(ir.stages[1].spans[0].start, 5);
        assert_eq!(ir.stages[1].spans[1].start, 6);
    }
}
