//! Dockerfile parser.
//!
//! Supports the instruction subset exercised by the paper's examples and by
//! typical HPC application Dockerfiles: `FROM`, `RUN`, `COPY`, `ADD`, `ENV`,
//! `ARG`, `WORKDIR`, `USER`, `LABEL`, `CMD`, `ENTRYPOINT`, `EXPOSE`,
//! `VOLUME`, comments, and backslash line continuations.

/// One parsed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// `FROM image[:tag] [AS name]`
    From {
        /// Image reference.
        image: String,
        /// Optional stage alias.
        alias: Option<String>,
    },
    /// `RUN command`
    Run(String),
    /// `COPY [--from=stage] src... dst`
    Copy {
        /// Source paths (build-context relative, or stage-image relative when
        /// `from` is set).
        sources: Vec<String>,
        /// Destination path in the image.
        dest: String,
        /// `--from=` stage reference (alias or 0-based index), if present.
        from: Option<String>,
    },
    /// `ENV key value` / `ENV key=value`
    Env {
        /// Variable name.
        key: String,
        /// Value.
        value: String,
    },
    /// `ARG name[=default]`
    Arg {
        /// Argument name.
        name: String,
        /// Default value.
        default: Option<String>,
    },
    /// `WORKDIR path`
    Workdir(String),
    /// `USER name`
    User(String),
    /// `LABEL key=value`
    Label {
        /// Label key.
        key: String,
        /// Label value.
        value: String,
    },
    /// `CMD ...`
    Cmd(Vec<String>),
    /// `ENTRYPOINT ...`
    Entrypoint(Vec<String>),
    /// `EXPOSE port`
    Expose(u16),
    /// `VOLUME path`
    Volume(String),
}

/// Parse error with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line number.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Source location of one instruction: the physical line range it was parsed
/// from (1-based, inclusive; `start < end` only for continuation lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrSpan {
    /// First physical line of the instruction.
    pub start: usize,
    /// Last physical line of the instruction.
    pub end: usize,
}

/// A parsed Dockerfile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dockerfile {
    /// Instructions in order.
    pub instructions: Vec<Instruction>,
    /// Source span of each instruction (parallel to `instructions`).
    pub spans: Vec<InstrSpan>,
}

fn parse_exec_or_shell_form(rest: &str) -> Vec<String> {
    let rest = rest.trim();
    if rest.starts_with('[') && rest.ends_with(']') {
        rest[1..rest.len() - 1]
            .split(',')
            .map(|s| s.trim().trim_matches('"').trim_matches('\'').to_string())
            .filter(|s| !s.is_empty())
            .collect()
    } else {
        vec!["/bin/sh".to_string(), "-c".to_string(), rest.to_string()]
    }
}

impl Dockerfile {
    /// Parses Dockerfile text.
    pub fn parse(text: &str) -> Result<Dockerfile, ParseError> {
        let mut instructions = Vec::new();
        let mut spans = Vec::new();
        // Join continuation lines first, remembering original line ranges.
        let mut logical: Vec<(InstrSpan, String)> = Vec::new();
        let mut pending: Option<(usize, String)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim_end();
            match pending.take() {
                Some((start, mut acc)) => {
                    let cont = line.trim_start();
                    if let Some(stripped) = cont.strip_suffix('\\') {
                        acc.push(' ');
                        acc.push_str(stripped.trim_end());
                        pending = Some((start, acc));
                    } else {
                        acc.push(' ');
                        acc.push_str(cont);
                        logical.push((
                            InstrSpan {
                                start,
                                end: line_no,
                            },
                            acc,
                        ));
                    }
                }
                None => {
                    let trimmed = line.trim_start();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    if let Some(stripped) = trimmed.strip_suffix('\\') {
                        pending = Some((line_no, stripped.trim_end().to_string()));
                    } else {
                        logical.push((
                            InstrSpan {
                                start: line_no,
                                end: line_no,
                            },
                            trimmed.to_string(),
                        ));
                    }
                }
            }
        }
        if let Some((start, acc)) = pending {
            logical.push((
                InstrSpan {
                    start,
                    end: text.lines().count(),
                },
                acc,
            ));
        }

        for (span, line) in logical {
            let line_no = span.start;
            let (word, rest) = match line.split_once(char::is_whitespace) {
                Some((w, r)) => (w, r.trim()),
                None => (line.as_str(), ""),
            };
            let instr = match word.to_ascii_uppercase().as_str() {
                "FROM" => {
                    let mut parts = rest.split_whitespace();
                    let image = parts.next().map(|s| s.to_string()).ok_or(ParseError {
                        line: line_no,
                        message: "FROM requires an image".to_string(),
                    })?;
                    let alias = match (parts.next(), parts.next()) {
                        (Some(kw), Some(name)) if kw.eq_ignore_ascii_case("as") => {
                            Some(name.to_string())
                        }
                        _ => None,
                    };
                    Instruction::From { image, alias }
                }
                "RUN" => {
                    if rest.is_empty() {
                        return Err(ParseError {
                            line: line_no,
                            message: "RUN requires a command".to_string(),
                        });
                    }
                    let args = parse_exec_or_shell_form(rest);
                    // Normalize exec form back to a shell string.
                    if args.len() >= 3 && args[0] == "/bin/sh" && args[1] == "-c" {
                        Instruction::Run(args[2..].join(" "))
                    } else {
                        Instruction::Run(args.join(" "))
                    }
                }
                "COPY" | "ADD" => {
                    let mut from = None;
                    let mut parts: Vec<String> = Vec::new();
                    for p in rest.split_whitespace() {
                        if let Some(r) = p.strip_prefix("--from=") {
                            if r.is_empty() {
                                return Err(ParseError {
                                    line: line_no,
                                    message: "--from= requires a stage reference".to_string(),
                                });
                            }
                            from = Some(r.to_string());
                        } else if !p.starts_with("--") {
                            parts.push(p.to_string());
                        }
                    }
                    if parts.len() < 2 {
                        return Err(ParseError {
                            line: line_no,
                            message: format!("{} requires source and destination", word),
                        });
                    }
                    let dest = parts.pop().expect("checked length above");
                    Instruction::Copy {
                        sources: parts,
                        dest,
                        from,
                    }
                }
                "ENV" => {
                    let (k, v) = if let Some((k, v)) = rest.split_once('=') {
                        (k.trim(), v.trim())
                    } else if let Some((k, v)) = rest.split_once(char::is_whitespace) {
                        (k.trim(), v.trim())
                    } else {
                        (rest, "")
                    };
                    Instruction::Env {
                        key: k.to_string(),
                        value: v.trim_matches('"').to_string(),
                    }
                }
                "ARG" => {
                    let (name, default) = match rest.split_once('=') {
                        Some((n, d)) => (n.trim().to_string(), Some(d.trim().to_string())),
                        None => (rest.to_string(), None),
                    };
                    Instruction::Arg { name, default }
                }
                "WORKDIR" => Instruction::Workdir(rest.to_string()),
                "USER" => Instruction::User(rest.to_string()),
                "LABEL" => {
                    let (k, v) = rest.split_once('=').unwrap_or((rest, ""));
                    Instruction::Label {
                        key: k.trim().trim_matches('"').to_string(),
                        value: v.trim().trim_matches('"').to_string(),
                    }
                }
                "CMD" => Instruction::Cmd(parse_exec_or_shell_form(rest)),
                "ENTRYPOINT" => Instruction::Entrypoint(parse_exec_or_shell_form(rest)),
                "EXPOSE" => {
                    Instruction::Expose(rest.split('/').next().unwrap_or("0").parse().map_err(
                        |_| ParseError {
                            line: line_no,
                            message: format!("invalid port: {}", rest),
                        },
                    )?)
                }
                "VOLUME" => {
                    Instruction::Volume(rest.trim_matches(['[', ']', '"'].as_ref()).to_string())
                }
                "MAINTAINER" | "SHELL" | "STOPSIGNAL" | "HEALTHCHECK" | "ONBUILD" => continue,
                other => {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("unknown instruction: {}", other),
                    })
                }
            };
            instructions.push(instr);
            spans.push(span);
        }
        Ok(Dockerfile {
            instructions,
            spans,
        })
    }

    /// The base image of the first `FROM`.
    pub fn base_image(&self) -> Option<&str> {
        self.instructions.iter().find_map(|i| match i {
            Instruction::From { image, .. } => Some(image.as_str()),
            _ => None,
        })
    }

    /// Number of RUN instructions.
    pub fn run_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Run(_)))
            .count()
    }
}

/// The paper's Figure 2 Dockerfile (`centos7.dockerfile`).
pub fn centos7_dockerfile() -> &'static str {
    "FROM centos:7\nRUN echo hello\nRUN yum install -y openssh\n"
}

/// The paper's Figure 3 Dockerfile (`debian10.dockerfile`).
pub fn debian10_dockerfile() -> &'static str {
    "FROM debian:buster\nRUN echo hello\nRUN apt-get update\nRUN apt-get install -y openssh-client\n"
}

/// The paper's Figure 8 Dockerfile (`centos7-fr.dockerfile`): manually
/// modified to install and use `fakeroot(1)`.
pub fn centos7_fr_dockerfile() -> &'static str {
    "FROM centos:7\n\
     RUN yum install -y epel-release\n\
     RUN yum install -y fakeroot\n\
     RUN echo hello\n\
     RUN fakeroot yum install -y openssh\n"
}

/// The paper's Figure 9 Dockerfile (`debian10-fr.dockerfile`): manually
/// modified to disable the APT sandbox and use `fakeroot(1)` (pseudo).
pub fn debian10_fr_dockerfile() -> &'static str {
    "FROM debian:buster\n\
     RUN echo 'APT::Sandbox::User \"root\"; ' > /etc/apt/apt.conf.d/no-sandbox\n\
     RUN echo hello\n\
     RUN apt-get update\n\
     RUN apt-get install -y pseudo\n\
     RUN fakeroot apt-get install -y openssh-client\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_dockerfile() {
        let df = Dockerfile::parse(centos7_dockerfile()).unwrap();
        assert_eq!(df.instructions.len(), 3);
        assert_eq!(df.base_image(), Some("centos:7"));
        assert_eq!(df.run_count(), 2);
        assert_eq!(
            df.instructions[2],
            Instruction::Run("yum install -y openssh".to_string())
        );
    }

    #[test]
    fn parses_figure9_dockerfile() {
        let df = Dockerfile::parse(debian10_fr_dockerfile()).unwrap();
        assert_eq!(df.run_count(), 5);
        assert!(matches!(&df.instructions[1], Instruction::Run(c) if c.contains("no-sandbox")));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let df =
            Dockerfile::parse("# a comment\n\nFROM centos:7\n# another\nRUN echo hi\n").unwrap();
        assert_eq!(df.instructions.len(), 2);
    }

    #[test]
    fn line_continuations_join() {
        let df =
            Dockerfile::parse("FROM centos:7\nRUN yum install -y \\\n    openmpi \\\n    gcc\n")
                .unwrap();
        assert_eq!(
            df.instructions[1],
            Instruction::Run("yum install -y openmpi gcc".to_string())
        );
    }

    #[test]
    fn exec_form_run_normalizes() {
        let df = Dockerfile::parse("FROM centos:7\nRUN [\"/bin/sh\", \"-c\", \"echo hello\"]\n")
            .unwrap();
        assert_eq!(
            df.instructions[1],
            Instruction::Run("echo hello".to_string())
        );
    }

    #[test]
    fn env_workdir_label_cmd() {
        let text = "FROM centos:7\nENV PATH=/opt/bin\nENV MPI_HOME /usr/lib64/openmpi\nWORKDIR /opt/app\nUSER builder\nLABEL version=\"1.2\"\nCMD [\"/bin/sh\", \"-c\", \"mpirun app\"]\nEXPOSE 8080\nVOLUME /scratch\n";
        let df = Dockerfile::parse(text).unwrap();
        assert!(df.instructions.contains(&Instruction::Env {
            key: "PATH".into(),
            value: "/opt/bin".into()
        }));
        assert!(df.instructions.contains(&Instruction::Env {
            key: "MPI_HOME".into(),
            value: "/usr/lib64/openmpi".into()
        }));
        assert!(df
            .instructions
            .contains(&Instruction::Workdir("/opt/app".into())));
        assert!(df
            .instructions
            .contains(&Instruction::User("builder".into())));
        assert!(df.instructions.contains(&Instruction::Expose(8080)));
    }

    #[test]
    fn copy_with_multiple_sources() {
        let df = Dockerfile::parse("FROM centos:7\nCOPY a.c b.c /src/\n").unwrap();
        assert_eq!(
            df.instructions[1],
            Instruction::Copy {
                sources: vec!["a.c".into(), "b.c".into()],
                dest: "/src/".into(),
                from: None,
            }
        );
    }

    #[test]
    fn copy_from_stage_reference() {
        let df = Dockerfile::parse(
            "FROM centos:7 AS builder\nFROM centos:7\nCOPY --from=builder /a /b\n",
        )
        .unwrap();
        assert_eq!(
            df.instructions[2],
            Instruction::Copy {
                sources: vec!["/a".into()],
                dest: "/b".into(),
                from: Some("builder".into()),
            }
        );
        assert!(Dockerfile::parse("FROM c:7\nCOPY --from= /a /b\n").is_err());
    }

    #[test]
    fn spans_track_physical_lines() {
        let text = "# header\nFROM centos:7\n\nRUN yum install -y \\\n    openmpi \\\n    gcc\nRUN echo done\n";
        let df = Dockerfile::parse(text).unwrap();
        assert_eq!(df.spans.len(), df.instructions.len());
        assert_eq!(df.spans[0], InstrSpan { start: 2, end: 2 });
        // The continued RUN spans lines 4-6.
        assert_eq!(df.spans[1], InstrSpan { start: 4, end: 6 });
        assert_eq!(df.spans[2], InstrSpan { start: 7, end: 7 });
    }

    #[test]
    fn from_with_alias() {
        let df = Dockerfile::parse("FROM centos:7 AS builder\n").unwrap();
        assert_eq!(
            df.instructions[0],
            Instruction::From {
                image: "centos:7".into(),
                alias: Some("builder".into())
            }
        );
    }

    #[test]
    fn unknown_instruction_is_an_error() {
        let err = Dockerfile::parse("FROM centos:7\nFRBO x\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown instruction"));
    }

    #[test]
    fn missing_run_body_is_an_error() {
        assert!(Dockerfile::parse("FROM centos:7\nRUN\n").is_err());
    }
}
