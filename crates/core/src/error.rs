//! Build errors.
//!
//! One error type spans the whole pipeline — front end ([`crate::ir`]),
//! planner ([`crate::graph`]), and executor (`crate::executor`) — so both
//! the single-stage and multi-stage entry points report failures the same
//! way instead of smuggling strings through unrelated fields.

use crate::dockerfile::ParseError;

/// An error from parsing, planning, or executing a build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The Dockerfile text failed to parse.
    Parse(ParseError),
    /// The Dockerfile contains no `FROM` instruction.
    NoStages,
    /// A non-`ARG` instruction appears before the first `FROM`.
    BeforeFirstFrom {
        /// The offending instruction's keyword (e.g. `RUN`).
        instruction: String,
    },
    /// `COPY --from=` or `FROM` names a stage that does not exist.
    UnknownStage {
        /// Stage index where the reference appears.
        stage: usize,
        /// The unresolved reference text.
        reference: String,
    },
    /// A stage references a *later* stage, which cannot have been built yet.
    ForwardReference {
        /// Stage index where the reference appears.
        stage: usize,
        /// The offending reference text.
        reference: String,
    },
    /// A stage references itself.
    SelfReference {
        /// Stage index where the reference appears.
        stage: usize,
        /// The offending reference text.
        reference: String,
    },
    /// Two stages declare the same `AS <alias>`, making references to it
    /// ambiguous.
    DuplicateAlias {
        /// The later stage re-declaring the alias.
        stage: usize,
        /// The duplicated alias.
        alias: String,
    },
    /// The stage graph contains a dependency cycle (defensive: backward-only
    /// edges cannot form one today, but the planner checks anyway).
    Cycle {
        /// Stage indices left unschedulable by the cycle.
        stages: Vec<usize>,
    },
    /// A stage was skipped because one of its dependencies failed.
    DependencyFailed {
        /// The stage that never ran.
        stage: usize,
        /// The dependency that failed.
        dependency: usize,
    },
    /// An instruction failed while executing.
    Execution {
        /// Stage index the failure occurred in.
        stage: usize,
        /// Human-readable failure message (transcript style).
        message: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{}", e),
            BuildError::NoStages => write!(f, "Dockerfile has no FROM"),
            BuildError::BeforeFirstFrom { instruction } => {
                write!(f, "instruction before first FROM: {}", instruction)
            }
            BuildError::UnknownStage { reference, .. } => {
                write!(f, "unknown build stage: {}", reference)
            }
            BuildError::ForwardReference { stage, reference } => write!(
                f,
                "stage {}: --from={} references a later stage",
                stage, reference
            ),
            BuildError::SelfReference { stage, reference } => {
                write!(f, "stage {}: --from={} references itself", stage, reference)
            }
            BuildError::DuplicateAlias { stage, alias } => {
                write!(f, "stage {}: duplicate stage alias: {}", stage, alias)
            }
            BuildError::Cycle { stages } => {
                write!(f, "stage graph contains a cycle through {:?}", stages)
            }
            BuildError::DependencyFailed { stage, dependency } => write!(
                f,
                "stage {} skipped: dependency stage {} failed",
                stage, dependency
            ),
            BuildError::Execution { message, .. } => write!(f, "{}", message),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_transcript_style() {
        assert_eq!(BuildError::NoStages.to_string(), "Dockerfile has no FROM");
        assert_eq!(
            BuildError::UnknownStage {
                stage: 1,
                reference: "missing".into()
            }
            .to_string(),
            "unknown build stage: missing"
        );
        let e = BuildError::Execution {
            stage: 0,
            message: "error: build failed: RUN command exited with 1".into(),
        };
        assert!(e.to_string().contains("exited with 1"));
    }

    #[test]
    fn parse_error_wraps_with_source() {
        let p = ParseError {
            line: 3,
            message: "unknown instruction: FRBO".into(),
        };
        let e: BuildError = p.clone().into();
        assert_eq!(e.to_string(), p.to_string());
        assert!(std::error::Error::source(&e).is_some());
    }
}
