//! `hpcc-core`: low-privilege HPC container build — the paper's primary
//! contribution.
//!
//! A Dockerfile interpreter plus three builders matching the privilege
//! taxonomy: a Docker-style Type I baseline, a rootless-Podman-style Type II
//! builder (privileged user-namespace maps), and a Charliecloud `ch-image`
//! style Type III builder with optional `--force` automatic injection of
//! `fakeroot(1)` workarounds (paper §5.3), a per-instruction build cache
//! (§6.1 item 3), and registry push/pull with ownership flattening (§6.1) or
//! fakeroot-database ownership reconstruction (§6.2.2).
//!
//! Two extension modules cover the paper's forward-looking material:
//! [`multistage`] builds multi-stage Dockerfiles (the single-file form of the
//! §5.3.3 chained-Dockerfile pipeline) and [`ocipush`] exports built images to
//! an OCI distribution registry as single flattened layers or base-plus-diff
//! layer stacks, carrying the §6.2.5 flatten annotation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod cache;
pub mod dockerfile;
pub mod force;
pub mod multistage;
pub mod ocipush;

pub use builder::{
    default_subuid_for, BuildOptions, BuildReport, Builder, BuilderKind, BuiltImage, PushOwnership,
};
pub use cache::{BuildCache, CachedState};
pub use dockerfile::{
    centos7_dockerfile, centos7_fr_dockerfile, debian10_dockerfile, debian10_fr_dockerfile,
    Dockerfile, Instruction, ParseError,
};
pub use force::{detect_config, ForceConfig, InitStep};
pub use multistage::{build_multistage, MultiStagePlan, MultiStageReport};
pub use ocipush::{push_to_oci, LayerMode, OciPushReport};
