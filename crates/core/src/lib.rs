//! `hpcc-core`: low-privilege HPC container build — the paper's primary
//! contribution.
//!
//! A Dockerfile interpreter plus three builders matching the privilege
//! taxonomy: a Docker-style Type I baseline, a rootless-Podman-style Type II
//! builder (privileged user-namespace maps), and a Charliecloud `ch-image`
//! style Type III builder with optional `--force` automatic injection of
//! `fakeroot(1)` workarounds (paper §5.3), a per-instruction build cache
//! (§6.1 item 3), and registry push/pull with ownership flattening (§6.1) or
//! fakeroot-database ownership reconstruction (§6.2.2).
//!
//! The build pipeline is three layers over one instruction set:
//!
//! 1. **Front end** — [`dockerfile`] tokenizes (the *only* tokenizer) and
//!    [`ir`] lowers the instruction list into a stage-aware [`ir::BuildIr`].
//! 2. **Planner** — [`graph`] resolves `COPY --from=` / `FROM <alias>`
//!    references into a stage DAG, rejecting unknown, forward, self, and
//!    cyclic references at plan time.
//! 3. **Executor** — per-instruction handlers run each stage, and the graph
//!    scheduler builds independent stages concurrently with a shared
//!    digest-keyed build cache, passing artifacts as CoW snapshots.
//!
//! [`multistage`] is the entry point that keeps per-stage reports separate
//! (the single-file form of the §5.3.3 chained-Dockerfile pipeline);
//! [`ocipush`] exports built images to an OCI distribution registry as
//! single flattened layers or base-plus-diff layer stacks, carrying the
//! §6.2.5 flatten annotation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod cache;
pub mod dockerfile;
pub mod error;
pub mod executor;
pub mod force;
pub mod graph;
pub mod ir;
pub mod multistage;
pub mod ocipush;

pub use builder::{
    default_subuid_for, BaseEnvMemo, BuildOptions, BuildReport, Builder, BuilderKind, BuiltImage,
    PushOwnership,
};
pub use cache::{
    BuildCache, CacheOutcome, CachedState, FlightGuard, ShardedBuildCache, CACHE_SHARDS,
};
pub use dockerfile::{
    centos7_dockerfile, centos7_fr_dockerfile, debian10_dockerfile, debian10_fr_dockerfile,
    Dockerfile, InstrSpan, Instruction, ParseError,
};
pub use error::BuildError;
pub use executor::{execute_stage, StageArtifact};
pub use force::{detect_config, ForceConfig, InitStep};
pub use graph::{BuildGraph, CopyFromEdge, GraphNode, StageBase};
pub use ir::{BuildIr, IrStage};
pub use multistage::{build_multistage, MultiStageReport};
pub use ocipush::{push_to_oci, LayerMode, OciPushReport};
