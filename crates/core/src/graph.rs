//! The build planner: lowers a [`BuildIr`] into a stage DAG.
//!
//! Nodes are stages; edges come from `COPY --from=<stage>` references and
//! from `FROM <alias>` where the alias names an earlier stage. All reference
//! errors — unknown stages, forward references, self references — are
//! detected here at *plan* time, before any instruction executes, and the
//! planner also runs a Kahn topological sort so a cycle can never reach the
//! executor. The resulting [`BuildGraph`] tells the executor which stages
//! are independent (and may build in parallel) and which artifacts each
//! stage consumes.

use crate::error::BuildError;
use crate::ir::BuildIr;

/// What a stage's `FROM` resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageBase {
    /// A base-image reference or locally stored tag, resolved by the builder
    /// at execution time.
    Image(String),
    /// An earlier stage of the same build; the executor adopts that stage's
    /// filesystem as a copy-on-write snapshot.
    Stage(usize),
}

/// One resolved `COPY --from=` edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyFromEdge {
    /// Index of the `COPY` instruction within the stage.
    pub instruction: usize,
    /// The stage the sources are read from.
    pub source_stage: usize,
}

/// One node of the stage graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// The stage this node builds.
    pub stage: usize,
    /// Resolved `FROM`.
    pub base: StageBase,
    /// Resolved `COPY --from=` edges, in instruction order.
    pub copy_from: Vec<CopyFromEdge>,
    /// Stages this one depends on (sorted, deduplicated).
    pub deps: Vec<usize>,
    /// Stages that depend on this one (sorted, deduplicated).
    pub dependents: Vec<usize>,
}

/// The planned stage DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildGraph {
    /// One node per stage, in stage order.
    pub nodes: Vec<GraphNode>,
    levels: Vec<Vec<usize>>,
}

impl BuildGraph {
    /// Plans the DAG for an IR, validating every stage reference.
    pub fn plan(ir: &BuildIr) -> Result<BuildGraph, BuildError> {
        let n = ir.stage_count();
        // Duplicate aliases would make every later reference ambiguous
        // (resolve_stage binds to the first); reject them up front, as
        // BuildKit does.
        for stage in &ir.stages {
            if let Some(alias) = &stage.alias {
                let first = ir
                    .stages
                    .iter()
                    .find(|s| s.alias.as_deref() == Some(alias.as_str()))
                    .expect("alias present");
                if first.index != stage.index {
                    return Err(BuildError::DuplicateAlias {
                        stage: stage.index,
                        alias: alias.clone(),
                    });
                }
            }
        }
        let mut nodes: Vec<GraphNode> = Vec::with_capacity(n);
        for stage in &ir.stages {
            // FROM: an earlier stage's alias wins over an image reference
            // (BuildKit scoping: later aliases are not visible, so a name
            // matching only a later stage is treated as an image).
            let base = match ir
                .stages
                .iter()
                .take(stage.index)
                .find(|s| s.alias.as_deref() == Some(stage.base.as_str()))
            {
                Some(s) => StageBase::Stage(s.index),
                None => StageBase::Image(stage.base.clone()),
            };
            let mut copy_from = Vec::new();
            for (instruction, reference) in stage.copy_from_refs() {
                let source_stage =
                    ir.resolve_stage(reference)
                        .ok_or_else(|| BuildError::UnknownStage {
                            stage: stage.index,
                            reference: reference.to_string(),
                        })?;
                if source_stage == stage.index {
                    return Err(BuildError::SelfReference {
                        stage: stage.index,
                        reference: reference.to_string(),
                    });
                }
                if source_stage > stage.index {
                    return Err(BuildError::ForwardReference {
                        stage: stage.index,
                        reference: reference.to_string(),
                    });
                }
                copy_from.push(CopyFromEdge {
                    instruction,
                    source_stage,
                });
            }
            let mut deps: Vec<usize> = copy_from.iter().map(|e| e.source_stage).collect();
            if let StageBase::Stage(s) = base {
                deps.push(s);
            }
            deps.sort_unstable();
            deps.dedup();
            nodes.push(GraphNode {
                stage: stage.index,
                base,
                copy_from,
                deps,
                dependents: Vec::new(),
            });
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for node in &nodes {
            for &d in &node.deps {
                dependents[d].push(node.stage);
            }
        }
        for (node, deps) in nodes.iter_mut().zip(dependents) {
            node.dependents = deps;
        }
        let levels = topo_levels(&nodes)?;
        Ok(BuildGraph { nodes, levels })
    }

    /// Topological levels: every stage in level `k` depends only on stages in
    /// levels `< k`, so stages within one level are mutually independent.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node for a stage.
    pub fn node(&self, stage: usize) -> &GraphNode {
        &self.nodes[stage]
    }

    /// Stages with no dependencies (the parallel roots).
    pub fn roots(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.deps.is_empty())
            .map(|n| n.stage)
            .collect()
    }

    /// The length of the longest dependency chain — the lower bound on
    /// sequential stage executions even with unlimited parallelism.
    pub fn critical_path_len(&self) -> usize {
        self.levels.len()
    }
}

/// Kahn's algorithm over the stage nodes. Backward-only edges cannot form a
/// cycle today, but the check is kept so a future front-end change (e.g.
/// late-bound aliases) fails here instead of deadlocking the executor.
fn topo_levels(nodes: &[GraphNode]) -> Result<Vec<Vec<usize>>, BuildError> {
    let n = nodes.len();
    let mut pending: Vec<usize> = nodes.iter().map(|node| node.deps.len()).collect();
    let mut scheduled = vec![false; n];
    let mut levels = Vec::new();
    let mut done = 0;
    while done < n {
        let ready: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i] && pending[i] == 0)
            .collect();
        if ready.is_empty() {
            let stuck: Vec<usize> = (0..n).filter(|&i| !scheduled[i]).collect();
            return Err(BuildError::Cycle { stages: stuck });
        }
        for &i in &ready {
            scheduled[i] = true;
            done += 1;
            for &d in &nodes[i].dependents {
                pending[d] -= 1;
            }
        }
        levels.push(ready);
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIAMOND: &str = "\
FROM centos:7 AS base
RUN yum install -y gcc

FROM base AS left
RUN yum install -y openmpi

FROM base AS right
RUN yum install -y spack

FROM centos:7
COPY --from=left /usr/lib64/openmpi /usr/lib64/openmpi
COPY --from=right /opt/spack /opt/spack
";

    fn plan(text: &str) -> Result<BuildGraph, BuildError> {
        BuildGraph::plan(&BuildIr::parse(text).unwrap())
    }

    #[test]
    fn diamond_edges_and_levels() {
        let g = plan(DIAMOND).unwrap();
        assert_eq!(g.stage_count(), 4);
        assert_eq!(g.node(0).deps, Vec::<usize>::new());
        assert_eq!(g.node(1).deps, vec![0]);
        assert_eq!(g.node(2).deps, vec![0]);
        assert_eq!(g.node(3).deps, vec![1, 2]);
        assert_eq!(g.node(0).dependents, vec![1, 2]);
        assert_eq!(g.node(1).base, StageBase::Stage(0));
        assert_eq!(g.node(3).base, StageBase::Image("centos:7".into()));
        // Levels: base | left+right (parallel) | final.
        assert_eq!(g.levels(), &[vec![0], vec![1, 2], vec![3]]);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn copy_from_index_resolves_like_alias() {
        let g =
            plan("FROM centos:7 AS a\nRUN echo x\n\nFROM centos:7\nCOPY --from=0 /x /y\n").unwrap();
        assert_eq!(
            g.node(1).copy_from,
            vec![CopyFromEdge {
                instruction: 1,
                source_stage: 0
            }]
        );
        let by_alias =
            plan("FROM centos:7 AS a\nRUN echo x\n\nFROM centos:7\nCOPY --from=a /x /y\n").unwrap();
        assert_eq!(by_alias.node(1).copy_from, g.node(1).copy_from);
    }

    #[test]
    fn unknown_stage_rejected_at_plan_time() {
        assert_eq!(
            plan("FROM centos:7 AS a\nRUN echo x\n\nFROM centos:7\nCOPY --from=missing /x /y\n")
                .unwrap_err(),
            BuildError::UnknownStage {
                stage: 1,
                reference: "missing".into()
            }
        );
        // An out-of-range index is unknown, not forward.
        assert!(matches!(
            plan("FROM centos:7\nCOPY --from=7 /x /y\n").unwrap_err(),
            BuildError::UnknownStage { .. }
        ));
    }

    #[test]
    fn forward_and_self_references_rejected_at_plan_time() {
        assert_eq!(
            plan("FROM centos:7 AS a\nCOPY --from=1 /x /y\n\nFROM centos:7\nRUN echo x\n")
                .unwrap_err(),
            BuildError::ForwardReference {
                stage: 0,
                reference: "1".into()
            }
        );
        assert_eq!(
            plan("FROM centos:7 AS a\nCOPY --from=a /x /y\n").unwrap_err(),
            BuildError::SelfReference {
                stage: 0,
                reference: "a".into()
            }
        );
        // By alias of a later stage.
        assert!(matches!(
            plan("FROM centos:7 AS a\nCOPY --from=later /x /y\n\nFROM centos:7 AS later\nRUN echo x\n")
                .unwrap_err(),
            BuildError::ForwardReference { .. }
        ));
    }

    #[test]
    fn duplicate_aliases_rejected_at_plan_time() {
        assert_eq!(
            plan("FROM centos:7 AS b\nRUN echo 1\n\nFROM debian:buster AS b\nRUN echo 2\n")
                .unwrap_err(),
            BuildError::DuplicateAlias {
                stage: 1,
                alias: "b".into()
            }
        );
    }

    #[test]
    fn from_alias_of_later_stage_is_an_image_reference() {
        // BuildKit scoping: a FROM name only binds to *earlier* aliases.
        let g =
            plan("FROM app AS first\nRUN echo x\n\nFROM centos:7 AS app\nRUN echo y\n").unwrap();
        assert_eq!(g.node(0).base, StageBase::Image("app".into()));
        assert_eq!(g.node(0).deps, Vec::<usize>::new());
    }

    #[test]
    fn chain_levels_are_sequential() {
        let g =
            plan("FROM centos:7 AS a\nRUN echo 1\nFROM a AS b\nRUN echo 2\nFROM b\nRUN echo 3\n")
                .unwrap();
        assert_eq!(g.levels(), &[vec![0], vec![1], vec![2]]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn cycle_detection_is_defensive() {
        // Construct a cyclic node set directly; plan() can't produce one.
        let nodes = vec![
            GraphNode {
                stage: 0,
                base: StageBase::Image("x".into()),
                copy_from: vec![],
                deps: vec![1],
                dependents: vec![1],
            },
            GraphNode {
                stage: 1,
                base: StageBase::Image("x".into()),
                copy_from: vec![],
                deps: vec![0],
                dependents: vec![0],
            },
        ];
        assert_eq!(
            topo_levels(&nodes).unwrap_err(),
            BuildError::Cycle { stages: vec![0, 1] }
        );
    }
}
