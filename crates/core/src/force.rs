//! `ch-image --force`: automatic injection of `fakeroot(1)` workarounds into
//! unmodified Dockerfiles (paper §5.3).
//!
//! Design principles (paper §5.3): (1) be clear and explicit about what is
//! happening, (2) minimize changes to the build, (3) modify the build only if
//! the user requests it, but otherwise say what could be modified.

use hpcc_kernel::{Credentials, UserNamespace};
use hpcc_vfs::{Actor, Filesystem};

/// One initialization step of a force configuration: a check command (does
/// the step still need doing?) and an apply command (do it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitStep {
    /// Shell command that exits 0 if the step is already satisfied.
    pub check: String,
    /// Shell command that performs the step.
    pub apply: String,
}

/// A distribution-specific force configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForceConfig {
    /// Short name, e.g. `rhel7`.
    pub name: &'static str,
    /// Human-readable description printed in the transcript
    /// (`will use --force: rhel7: CentOS/RHEL 7`).
    pub description: &'static str,
    /// File whose existence + content identifies the distribution. Detection
    /// reads the file directly rather than executing a command in the
    /// container (paper §5.3.1).
    pub detect_file: &'static str,
    /// Substrings, any of which must appear in the detect file.
    pub detect_patterns: &'static [&'static str],
    /// Keywords that mark a RUN instruction as modifiable.
    pub keywords: &'static [&'static str],
    /// Initialization steps executed before the first modified RUN.
    pub init_steps: Vec<InitStep>,
}

impl ForceConfig {
    /// The `rhel7` configuration (paper Figure 10): detects CentOS/RHEL 7 via
    /// `/etc/redhat-release` matching `release 7\.`, installs `fakeroot` from
    /// EPEL (installing EPEL first if needed, then disabling it so it cannot
    /// cause unexpected upgrades).
    pub fn rhel7() -> ForceConfig {
        ForceConfig {
            name: "rhel7",
            description: "CentOS/RHEL 7",
            detect_file: "/etc/redhat-release",
            detect_patterns: &["release 7."],
            keywords: &["yum", "rpm", "dnf"],
            init_steps: vec![InitStep {
                check: "command -v fakeroot > /dev/null".to_string(),
                apply: "set -ex; if ! grep -Eq '\\[epel\\]' /etc/yum.conf /etc/yum.repos.d/*; then yum install -y epel-release; yum-config-manager --disable epel; fi; yum --enablerepo=epel install -y fakeroot;".to_string(),
            }],
        }
    }

    /// The `debderiv` configuration (paper Figure 11): detects Debian 9/10 or
    /// Ubuntu 16/18/20 via `/etc/os-release`, disables the APT sandbox, and
    /// installs `pseudo` (Debian's own fakeroot cannot install the packages
    /// the authors tested, §5.2).
    pub fn debderiv() -> ForceConfig {
        ForceConfig {
            name: "debderiv",
            description: "Debian (9, 10) or Ubuntu (16, 18, 20)",
            detect_file: "/etc/os-release",
            detect_patterns: &["stretch", "buster", "xenial", "bionic", "focal"],
            keywords: &["apt-get", "apt ", "dpkg"],
            init_steps: vec![
                InitStep {
                    check: "apt-config dump | fgrep -q 'APT::Sandbox::User \"root\"' || ! fgrep -q _apt /etc/passwd".to_string(),
                    apply: "echo 'APT::Sandbox::User \"root\"; ' > /etc/apt/apt.conf.d/no-sandbox".to_string(),
                },
                InitStep {
                    check: "command -v fakeroot > /dev/null".to_string(),
                    apply: "apt-get update && apt-get install -y pseudo".to_string(),
                },
            ],
        }
    }

    /// All known configurations, in detection order.
    pub fn all() -> Vec<ForceConfig> {
        vec![ForceConfig::rhel7(), ForceConfig::debderiv()]
    }

    /// True if this configuration matches the image filesystem.
    pub fn matches(&self, fs: &Filesystem, actor: &Actor) -> bool {
        match fs.read_to_string(actor, self.detect_file) {
            Ok(text) => self.detect_patterns.iter().any(|p| text.contains(p)),
            Err(_) => false,
        }
    }

    /// True if the RUN command contains a keyword that triggers modification.
    pub fn run_is_modifiable(&self, command: &str) -> bool {
        self.keywords.iter().any(|k| command.contains(k.trim_end()))
            && !command.trim_start().starts_with("fakeroot ")
    }
}

/// Detects the matching configuration for an image filesystem (the test
/// `ch-image` performs right after `FROM`, paper §5.3.1).
pub fn detect_config(
    fs: &Filesystem,
    creds: &Credentials,
    userns: &UserNamespace,
) -> Option<ForceConfig> {
    let actor = Actor::new(creds, userns);
    ForceConfig::all()
        .into_iter()
        .find(|c| c.matches(fs, &actor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_distro::{centos7, debian10};
    use hpcc_kernel::{Gid, Uid};

    fn detect_for(fs: &Filesystem) -> Option<ForceConfig> {
        let creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)])
            .entered_own_namespace();
        let ns = UserNamespace::type3(Uid(1000), Gid(1000));
        detect_config(fs, &creds, &ns)
    }

    #[test]
    fn detects_rhel7_on_centos_image() {
        let mut img = centos7("x86_64");
        img.fs.flatten_ownership(Uid(1000), Gid(1000));
        let cfg = detect_for(&img.fs).unwrap();
        assert_eq!(cfg.name, "rhel7");
        assert_eq!(cfg.description, "CentOS/RHEL 7");
    }

    #[test]
    fn detects_debderiv_on_debian_image() {
        let mut img = debian10("amd64");
        img.fs.flatten_ownership(Uid(1000), Gid(1000));
        let cfg = detect_for(&img.fs).unwrap();
        assert_eq!(cfg.name, "debderiv");
        assert_eq!(cfg.init_steps.len(), 2);
    }

    #[test]
    fn no_config_for_unknown_distro() {
        let fs = Filesystem::new_local();
        assert!(detect_for(&fs).is_none());
    }

    #[test]
    fn keyword_triggering() {
        let rhel = ForceConfig::rhel7();
        assert!(rhel.run_is_modifiable("yum install -y openssh"));
        assert!(rhel.run_is_modifiable("rpm -ivh pkg.rpm"));
        assert!(!rhel.run_is_modifiable("echo hello"));
        // Already-wrapped commands are not modified again.
        assert!(!rhel.run_is_modifiable("fakeroot yum install -y openssh"));

        let deb = ForceConfig::debderiv();
        assert!(deb.run_is_modifiable("apt-get update"));
        assert!(deb.run_is_modifiable("dpkg -i x.deb"));
        assert!(!deb.run_is_modifiable("echo hello"));
    }

    #[test]
    fn rhel7_init_has_single_step_and_debderiv_two() {
        assert_eq!(ForceConfig::rhel7().init_steps.len(), 1);
        assert_eq!(ForceConfig::debderiv().init_steps.len(), 2);
        // The rhel7 step installs EPEL then disables it (paper §5.3.1).
        let apply = &ForceConfig::rhel7().init_steps[0].apply;
        assert!(apply.contains("yum install -y epel-release"));
        assert!(apply.contains("yum-config-manager --disable epel"));
        assert!(apply.contains("--enablerepo=epel install -y fakeroot"));
    }
}
