//! Multi-stage Dockerfile builds.
//!
//! HPC application images are usually produced by a heavyweight compile
//! environment (compilers, MPI, Spack trees — the stack of the paper's
//! §5.3.3 production pipeline) followed by a much smaller runtime image.
//! Docker expresses this as multi-stage Dockerfiles: several `FROM` blocks,
//! with later stages pulling artifacts out of earlier ones via
//! `COPY --from=<stage>`. The LANL pipeline in the paper achieves the same
//! thing with three chained Dockerfiles; this module supports the single-file
//! form on top of the existing [`Builder`] for all three privilege types, so
//! that unmodified multi-stage recipes build under `ch-image --force` exactly
//! as the paper's single-stage examples do.

use hpcc_kernel::{Credentials, UserNamespace};
use hpcc_vfs::{Actor, Filesystem};

use crate::builder::{BuildOptions, BuildReport, Builder};

/// One `COPY --from=` request found in a later stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyFromSpec {
    /// The stage referenced: an alias (`builder`) or a 0-based index (`0`).
    pub stage_ref: String,
    /// Source path inside the referenced stage's image.
    pub source: String,
    /// Destination path in the stage being built.
    pub dest: String,
}

/// One stage of a multi-stage Dockerfile.
#[derive(Debug, Clone)]
pub struct Stage {
    /// 0-based stage index.
    pub index: usize,
    /// `FROM ... AS <alias>` alias, if present.
    pub alias: Option<String>,
    /// The stage's Dockerfile text with `COPY --from=` lines replaced by
    /// ordinary `COPY` lines that read from the synthesized build context.
    pub text: String,
    /// Cross-stage copies requested by this stage, in order.
    pub copy_from: Vec<CopyFromSpec>,
}

/// A multi-stage build plan.
#[derive(Debug, Clone)]
pub struct MultiStagePlan {
    /// Stages in order of appearance.
    pub stages: Vec<Stage>,
}

/// Report of a multi-stage build.
#[derive(Debug, Clone)]
pub struct MultiStageReport {
    /// Per-stage build reports, in stage order (may be shorter than the plan
    /// if an early stage failed).
    pub stages: Vec<BuildReport>,
    /// Whether every stage succeeded.
    pub success: bool,
    /// The tag of the final image (present only on success).
    pub final_tag: Option<String>,
}

impl MultiStagePlan {
    /// Splits a Dockerfile into stages and extracts `COPY --from=` requests.
    /// A single-stage Dockerfile yields a one-element plan whose text is the
    /// input unchanged.
    pub fn parse(text: &str) -> Result<MultiStagePlan, String> {
        let mut stages: Vec<Stage> = Vec::new();
        for raw in text.lines() {
            let trimmed = raw.trim();
            let is_from = trimmed
                .split_whitespace()
                .next()
                .map(|w| w.eq_ignore_ascii_case("FROM"))
                .unwrap_or(false);
            if is_from {
                let mut parts = trimmed.split_whitespace().skip(1);
                let _image = parts
                    .next()
                    .ok_or_else(|| "FROM requires an image".to_string())?;
                let alias = match (parts.next(), parts.next()) {
                    (Some(kw), Some(name)) if kw.eq_ignore_ascii_case("as") => {
                        Some(name.to_string())
                    }
                    _ => None,
                };
                stages.push(Stage {
                    index: stages.len(),
                    alias,
                    text: format!("{}\n", raw),
                    copy_from: Vec::new(),
                });
                continue;
            }
            let Some(stage) = stages.last_mut() else {
                // Leading comments / ARGs before the first FROM: keep them for
                // the first stage once it appears by ignoring here (comments)
                // — non-comment instructions before FROM are a parse error the
                // per-stage parser will report.
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                return Err(format!("instruction before first FROM: {}", trimmed));
            };
            // Detect `COPY --from=<ref> <src> <dst>`.
            let is_copy_from = trimmed
                .split_whitespace()
                .next()
                .map(|w| w.eq_ignore_ascii_case("COPY"))
                .unwrap_or(false)
                && trimmed.contains("--from=");
            if is_copy_from {
                let mut stage_ref = String::new();
                let mut operands: Vec<String> = Vec::new();
                for word in trimmed.split_whitespace().skip(1) {
                    if let Some(r) = word.strip_prefix("--from=") {
                        stage_ref = r.to_string();
                    } else if !word.starts_with("--") {
                        operands.push(word.to_string());
                    }
                }
                if stage_ref.is_empty() || operands.len() < 2 {
                    return Err(format!("malformed COPY --from: {}", trimmed));
                }
                let dest = operands.pop().expect("checked length above");
                for source in operands {
                    let context_path = source.trim_start_matches('/').to_string();
                    stage.copy_from.push(CopyFromSpec {
                        stage_ref: stage_ref.clone(),
                        source: source.clone(),
                        dest: dest.clone(),
                    });
                    // Rewrite to an ordinary COPY served from the synthesized
                    // context, where `build_multistage` stages the artifact.
                    stage
                        .text
                        .push_str(&format!("COPY {} {}\n", context_path, dest));
                }
                continue;
            }
            stage.text.push_str(raw);
            stage.text.push('\n');
        }
        if stages.is_empty() {
            return Err("Dockerfile has no FROM".to_string());
        }
        Ok(MultiStagePlan { stages })
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// True if the Dockerfile has more than one stage.
    pub fn is_multistage(&self) -> bool {
        self.stages.len() > 1
    }

    /// Resolves a `--from=` reference (alias or index) to a stage index.
    pub fn resolve_stage(&self, reference: &str) -> Option<usize> {
        if let Ok(idx) = reference.parse::<usize>() {
            return (idx < self.stages.len()).then_some(idx);
        }
        self.stages
            .iter()
            .find(|s| s.alias.as_deref() == Some(reference))
            .map(|s| s.index)
    }

    /// The tag an intermediate stage's image is stored under.
    pub fn stage_tag(final_tag: &str, index: usize) -> String {
        format!("{}.stage{}", final_tag, index)
    }
}

/// Runs a multi-stage build with the given builder. Intermediate stages are
/// stored under `<tag>.stage<N>`; the final stage is stored under the tag in
/// `options`. `context` is the user-provided build context for ordinary
/// `COPY` instructions.
pub fn build_multistage(
    builder: &mut Builder,
    dockerfile_text: &str,
    options: &BuildOptions,
    context: Option<&Filesystem>,
) -> MultiStageReport {
    let plan = match MultiStagePlan::parse(dockerfile_text) {
        Ok(p) => p,
        Err(e) => {
            return MultiStageReport {
                stages: vec![],
                success: false,
                final_tag: Some(e),
            }
        }
    };
    let mut reports = Vec::with_capacity(plan.stage_count());
    let root_creds = Credentials::host_root();
    let host_ns = UserNamespace::initial();
    let root = Actor::new(&root_creds, &host_ns);

    for stage in &plan.stages {
        let is_last = stage.index + 1 == plan.stage_count();
        let tag = if is_last {
            options.tag.clone()
        } else {
            MultiStagePlan::stage_tag(&options.tag, stage.index)
        };
        // Synthesize the stage's build context: the caller's context plus any
        // artifacts copied out of earlier stages.
        let mut ctx = context.cloned().unwrap_or_default();
        let mut stage_failed = None;
        for spec in &stage.copy_from {
            let Some(src_index) = plan.resolve_stage(&spec.stage_ref) else {
                stage_failed = Some(format!("unknown build stage: {}", spec.stage_ref));
                break;
            };
            if src_index >= stage.index {
                stage_failed = Some(format!(
                    "COPY --from={} references a later or current stage",
                    spec.stage_ref
                ));
                break;
            }
            let src_tag = MultiStagePlan::stage_tag(&options.tag, src_index);
            let src_tag = if src_index + 1 == plan.stage_count() {
                options.tag.clone()
            } else {
                src_tag
            };
            let Some(src_image) = builder.image(&src_tag) else {
                stage_failed = Some(format!("stage {} has no built image", spec.stage_ref));
                break;
            };
            if !src_image.fs.exists(&root, &spec.source) {
                stage_failed = Some(format!(
                    "COPY --from={} {}: not found in stage image",
                    spec.stage_ref, spec.source
                ));
                break;
            }
            let staged_path = format!("/{}", spec.source.trim_start_matches('/'));
            if let Err(e) = ctx.copy_tree_from(&src_image.fs, &spec.source, &staged_path) {
                stage_failed = Some(format!(
                    "COPY --from={} {}: {}",
                    spec.stage_ref, spec.source, e
                ));
                break;
            }
        }
        if let Some(msg) = stage_failed {
            reports.push(BuildReport {
                transcript: vec![format!("error: {}", msg)],
                success: false,
                tag,
                instructions_total: 0,
                instructions_modified: 0,
                modifiable_runs: 0,
                force_config: None,
                cache_hits: 0,
                cache_misses: 0,
                error: Some(msg),
            });
            return MultiStageReport {
                stages: reports,
                success: false,
                final_tag: None,
            };
        }
        let mut stage_options = options.clone();
        stage_options.tag = tag.clone();
        let report = builder.build(&stage.text, &stage_options, Some(&ctx));
        let ok = report.success;
        reports.push(report);
        if !ok {
            return MultiStageReport {
                stages: reports,
                success: false,
                final_tag: None,
            };
        }
    }
    MultiStageReport {
        stages: reports,
        success: true,
        final_tag: Some(options.tag.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_runtime::Invoker;

    const TWO_STAGE: &str = "\
FROM centos:7 AS builder
RUN echo compiling application
RUN mkdir -p /opt/app/bin && echo binary > /opt/app/bin/app

FROM centos:7
COPY --from=builder /opt/app/bin/app /usr/local/bin/app
RUN echo runtime image ready
";

    #[test]
    fn plan_splits_stages_and_extracts_copy_from() {
        let plan = MultiStagePlan::parse(TWO_STAGE).unwrap();
        assert_eq!(plan.stage_count(), 2);
        assert!(plan.is_multistage());
        assert_eq!(plan.stages[0].alias.as_deref(), Some("builder"));
        assert_eq!(plan.stages[1].copy_from.len(), 1);
        assert_eq!(plan.stages[1].copy_from[0].source, "/opt/app/bin/app");
        assert_eq!(plan.resolve_stage("builder"), Some(0));
        assert_eq!(plan.resolve_stage("0"), Some(0));
        assert_eq!(plan.resolve_stage("missing"), None);
        // The rewritten text contains a plain COPY, no --from.
        assert!(plan.stages[1].text.contains("COPY opt/app/bin/app /usr/local/bin/app"));
        assert!(!plan.stages[1].text.contains("--from"));
    }

    #[test]
    fn single_stage_plan_passes_text_through() {
        let plan = MultiStagePlan::parse("FROM centos:7\nRUN echo hi\n").unwrap();
        assert_eq!(plan.stage_count(), 1);
        assert!(!plan.is_multistage());
        assert!(plan.stages[0].text.contains("RUN echo hi"));
    }

    #[test]
    fn instruction_before_from_is_an_error() {
        assert!(MultiStagePlan::parse("RUN echo hi\nFROM centos:7\n").is_err());
        assert!(MultiStagePlan::parse("# comment only\n").is_err());
    }

    #[test]
    fn two_stage_build_copies_artifact_between_stages() {
        let alice = Invoker::user("alice", 1000, 1000);
        let mut b = Builder::ch_image(alice);
        let report = build_multistage(&mut b, TWO_STAGE, &BuildOptions::new("app"), None);
        assert!(report.success, "{:?}", report.stages.last().map(|r| r.transcript_text()));
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.final_tag.as_deref(), Some("app"));
        // The final image contains the artifact produced in the first stage.
        let built = b.image("app").unwrap();
        let creds = Credentials::host_root();
        let ns = UserNamespace::initial();
        let actor = Actor::new(&creds, &ns);
        assert!(built.fs.exists(&actor, "/usr/local/bin/app"));
        // The intermediate stage is also retained for debugging.
        assert!(b.image("app.stage0").is_some());
    }

    #[test]
    fn copy_from_unknown_stage_fails_cleanly() {
        let text = "FROM centos:7 AS a\nRUN echo x\n\nFROM centos:7\nCOPY --from=missing /x /y\n";
        let alice = Invoker::user("alice", 1000, 1000);
        let mut b = Builder::ch_image(alice);
        let report = build_multistage(&mut b, text, &BuildOptions::new("bad"), None);
        assert!(!report.success);
        assert!(report
            .stages
            .last()
            .unwrap()
            .error
            .as_deref()
            .unwrap()
            .contains("unknown build stage"));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let text = "FROM centos:7 AS a\nCOPY --from=1 /x /y\n\nFROM centos:7\nRUN echo x\n";
        let alice = Invoker::user("alice", 1000, 1000);
        let mut b = Builder::ch_image(alice);
        let report = build_multistage(&mut b, text, &BuildOptions::new("bad"), None);
        assert!(!report.success);
    }
}
