//! Multi-stage Dockerfile builds with per-stage reporting.
//!
//! HPC application images are usually produced by a heavyweight compile
//! environment (compilers, MPI, Spack trees — the stack of the paper's
//! §5.3.3 production pipeline) followed by a much smaller runtime image.
//! Docker expresses this as multi-stage Dockerfiles: several `FROM` blocks,
//! with later stages pulling artifacts out of earlier ones via
//! `COPY --from=<stage>`.
//!
//! The heavy lifting lives elsewhere now: [`crate::ir`] parses the stages
//! (one tokenizer, shared with single-stage builds), [`crate::graph`] plans
//! the DAG, and `crate::executor` runs independent stages concurrently
//! against the shared build cache, handing artifacts downstream as
//! copy-on-write snapshots. This module is the entry point that keeps the
//! per-stage [`BuildReport`]s separate; [`Builder::build`] runs the same
//! engine but folds them into one report. Intermediate stages are *not*
//! tagged — only the final image enters the builder's tag namespace.

use hpcc_vfs::Filesystem;

use crate::builder::{BuildOptions, BuildReport, Builder};
use crate::error::BuildError;
use crate::executor::run_graph;

/// Report of a multi-stage build.
#[derive(Debug, Clone)]
pub struct MultiStageReport {
    /// Per-stage build reports in stage order. Stages that never ran
    /// (dependency failed, or scheduling stopped after an error) are absent,
    /// so this may be shorter than the plan.
    pub stages: Vec<BuildReport>,
    /// Whether every stage succeeded.
    pub success: bool,
    /// The tag of the final image (present only on success).
    pub final_tag: Option<String>,
    /// The first error, if the build failed — parse and plan errors land
    /// here too, never smuggled through `final_tag`.
    pub error: Option<BuildError>,
    /// One [`BuildError::DependencyFailed`] per stage that never ran
    /// because a dependency (or an earlier scheduled stage) failed.
    pub skipped: Vec<BuildError>,
}

impl MultiStageReport {
    fn failed(error: BuildError) -> Self {
        MultiStageReport {
            stages: Vec::new(),
            success: false,
            final_tag: None,
            error: Some(error),
            skipped: Vec::new(),
        }
    }

    /// The error rendered as text, if the build failed.
    pub fn error_text(&self) -> Option<String> {
        self.error.as_ref().map(|e| e.to_string())
    }
}

/// Runs a multi-stage build with the given builder. Independent stages build
/// concurrently (unless `options.parallel` is off); the final stage is
/// stored under the tag in `options`, and intermediate stages stay out of
/// the builder's tag namespace. `context` is the user-provided build context
/// for ordinary `COPY` instructions. A single-stage Dockerfile is simply a
/// one-node graph.
pub fn build_multistage(
    builder: &mut Builder,
    dockerfile_text: &str,
    options: &BuildOptions,
    context: Option<&Filesystem>,
) -> MultiStageReport {
    if options.cache_capacity.is_some() {
        builder.cache.set_capacity(options.cache_capacity);
    }
    let (ir, graph) = match Builder::plan_with_args(dockerfile_text, &options.build_args) {
        Ok(p) => p,
        Err(e) => return MultiStageReport::failed(e),
    };
    let mut run = run_graph(builder, &ir, &graph, options, context);
    if run.success {
        let final_index = ir.stage_count() - 1;
        if let Some(artifact) = run.artifacts[final_index].take() {
            builder.store_artifact(&options.tag, &options.arch, artifact);
        }
    }
    MultiStageReport {
        stages: run.reports.into_iter().flatten().collect(),
        success: run.success,
        final_tag: run.success.then(|| options.tag.clone()),
        error: run.error,
        skipped: run.skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_kernel::{Credentials, UserNamespace};
    use hpcc_runtime::Invoker;
    use hpcc_vfs::Actor;

    const TWO_STAGE: &str = "\
FROM centos:7 AS builder
RUN echo compiling application
RUN mkdir -p /opt/app/bin && echo binary > /opt/app/bin/app

FROM centos:7
COPY --from=builder /opt/app/bin/app /usr/local/bin/app
RUN echo runtime image ready
";

    fn alice() -> Invoker {
        Invoker::user("alice", 1000, 1000)
    }

    fn root_actor() -> (Credentials, UserNamespace) {
        (Credentials::host_root(), UserNamespace::initial())
    }

    #[test]
    fn two_stage_build_copies_artifact_between_stages() {
        let mut b = Builder::ch_image(alice());
        let report = build_multistage(&mut b, TWO_STAGE, &BuildOptions::new("app"), None);
        assert!(
            report.success,
            "{:?}",
            report.stages.last().map(|r| r.transcript_text())
        );
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.final_tag.as_deref(), Some("app"));
        assert!(report.error.is_none());
        // The final image contains the artifact produced in the first stage.
        let built = b.image("app").unwrap();
        let (creds, ns) = root_actor();
        let actor = Actor::new(&creds, &ns);
        assert!(built.fs.exists(&actor, "/usr/local/bin/app"));
        // Intermediate stages stay out of the builder's tag namespace.
        assert_eq!(b.tags(), vec!["app".to_string()]);
    }

    #[test]
    fn serial_and_parallel_execution_agree() {
        let mut parallel = Builder::ch_image(alice());
        let mut serial = Builder::ch_image(alice());
        let p = build_multistage(&mut parallel, TWO_STAGE, &BuildOptions::new("app"), None);
        let s = build_multistage(
            &mut serial,
            TWO_STAGE,
            &BuildOptions::new("app").with_serial_stages(),
            None,
        );
        assert!(p.success && s.success);
        let (creds, ns) = root_actor();
        let actor = Actor::new(&creds, &ns);
        let pf = &parallel.image("app").unwrap().fs;
        let sf = &serial.image("app").unwrap().fs;
        assert_eq!(
            pf.read_file(&actor, "/usr/local/bin/app").unwrap(),
            sf.read_file(&actor, "/usr/local/bin/app").unwrap()
        );
    }

    #[test]
    fn parse_errors_are_typed_not_smuggled() {
        let mut b = Builder::ch_image(alice());
        let report = build_multistage(
            &mut b,
            "RUN echo hi\nFROM centos:7\n",
            &BuildOptions::new("x"),
            None,
        );
        assert!(!report.success);
        assert!(
            report.final_tag.is_none(),
            "final_tag must not carry errors"
        );
        assert_eq!(
            report.error,
            Some(BuildError::BeforeFirstFrom {
                instruction: "RUN".into()
            })
        );
        let report = build_multistage(&mut b, "# comment only\n", &BuildOptions::new("x"), None);
        assert_eq!(report.error, Some(BuildError::NoStages));
    }

    #[test]
    fn copy_from_unknown_stage_fails_at_plan_time() {
        let text = "FROM centos:7 AS a\nRUN echo x\n\nFROM centos:7\nCOPY --from=missing /x /y\n";
        let mut b = Builder::ch_image(alice());
        let report = build_multistage(&mut b, text, &BuildOptions::new("bad"), None);
        assert!(!report.success);
        // Nothing executed: the reference error surfaced before any stage ran.
        assert!(report.stages.is_empty());
        assert!(report.error_text().unwrap().contains("unknown build stage"));
    }

    #[test]
    fn forward_reference_is_rejected_at_plan_time() {
        let text = "FROM centos:7 AS a\nCOPY --from=1 /x /y\n\nFROM centos:7\nRUN echo x\n";
        let mut b = Builder::ch_image(alice());
        let report = build_multistage(&mut b, text, &BuildOptions::new("bad"), None);
        assert!(!report.success);
        assert!(matches!(
            report.error,
            Some(BuildError::ForwardReference { stage: 0, .. })
        ));
    }

    #[test]
    fn copy_from_missing_path_fails_in_executing_stage() {
        let text = "FROM centos:7 AS a\nRUN echo x\n\nFROM centos:7\nCOPY --from=a /nope /y\n";
        let mut b = Builder::ch_image(alice());
        let report = build_multistage(&mut b, text, &BuildOptions::new("bad"), None);
        assert!(!report.success);
        assert!(report
            .error_text()
            .unwrap()
            .contains("not found in stage image"));
        // Stage 0 ran fine; stage 1 carries the failure.
        assert_eq!(report.stages.len(), 2);
        assert!(report.stages[0].success);
        assert!(!report.stages[1].success);
    }

    #[test]
    fn diamond_stages_share_cache_within_one_build() {
        // Stage `c` depends on `b`, so it executes strictly after it — and
        // its FROM + RUN prefix is byte-identical to `b`'s, so both hit the
        // cache entries `b` stored moments earlier in the same build.
        let text = "\
FROM centos:7 AS b
RUN yum install -y gcc
RUN mkdir -p /opt/out && echo b > /opt/out/b

FROM centos:7
RUN yum install -y gcc
COPY --from=b /opt/out/b /opt/in/b
RUN echo done
";
        let mut b = Builder::ch_image(alice());
        let report = build_multistage(&mut b, text, &BuildOptions::new("app").with_cache(), None);
        assert!(report.success, "{:?}", report.error);
        let final_stage = report.stages.last().unwrap();
        assert!(
            final_stage.cache_hits >= 2,
            "FROM and RUN should hit stage b's fresh entries, got {} hits\n{}",
            final_stage.cache_hits,
            final_stage.transcript_text()
        );
        assert!(final_stage.transcript_text().contains("(cached)"));
    }

    #[test]
    fn skipped_stages_report_the_failed_dependency() {
        // Stage 0 fails (unknown base image), so stages 1 and 2 never run
        // and each records a DependencyFailed pointing at stage 0.
        let text = "\
FROM alpine:3.14 AS broken
RUN echo never

FROM broken AS child
RUN echo never

FROM centos:7
COPY --from=child /x /y
";
        let mut b = Builder::ch_image(alice());
        let report = build_multistage(&mut b, text, &BuildOptions::new("bad"), None);
        assert!(!report.success);
        assert_eq!(report.stages.len(), 1);
        assert_eq!(
            report.skipped,
            vec![
                BuildError::DependencyFailed {
                    stage: 1,
                    dependency: 0
                },
                BuildError::DependencyFailed {
                    stage: 2,
                    dependency: 1
                },
            ]
        );
    }

    #[test]
    fn cache_is_keyed_by_architecture() {
        // The same Dockerfile built for two architectures must not share
        // cache entries: the second build would otherwise adopt the first
        // architecture's filesystem and config.
        let mut b = Builder::ch_image(alice());
        let df = "FROM centos:7\nRUN echo hi\n";
        let first = b.build(df, &BuildOptions::new("x").with_cache(), None);
        assert!(first.success);
        let second = b.build(
            df,
            &BuildOptions::new("y").with_cache().with_arch("aarch64"),
            None,
        );
        assert!(second.success);
        assert_eq!(second.cache_hits, 0, "{}", second.transcript_text());
        assert_eq!(b.image("y").unwrap().config.architecture, "aarch64");
    }

    #[test]
    fn cached_rebuild_hits_every_stage() {
        let mut b = Builder::ch_image(alice());
        let opts = BuildOptions::new("app").with_cache();
        let first = build_multistage(&mut b, TWO_STAGE, &opts, None);
        assert!(first.success);
        let second = build_multistage(&mut b, TWO_STAGE, &opts, None);
        assert!(second.success);
        for stage in &second.stages {
            assert_eq!(
                stage.cache_misses,
                0,
                "stage {} missed: {}",
                stage.tag,
                stage.transcript_text()
            );
        }
    }
}
