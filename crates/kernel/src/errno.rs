//! Errno values used by the simulated kernel.
//!
//! Numbers match Linux x86-64 so that transcripts such as
//! `setegid 65534 failed - setegid (22: Invalid argument)` (paper Figure 3)
//! can be reproduced verbatim.

use std::fmt;

/// Error numbers returned by simulated system calls.
///
/// Only the values that the paper's scenarios can produce are included, plus a
/// few that naturally arise from a POSIX-like VFS (e.g. `ENOTDIR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Errno {
    /// Operation not permitted.
    EPERM,
    /// No such file or directory.
    ENOENT,
    /// No such process.
    ESRCH,
    /// Input/output error.
    EIO,
    /// Bad file descriptor.
    EBADF,
    /// Permission denied.
    EACCES,
    /// File exists.
    EEXIST,
    /// Cross-device link.
    EXDEV,
    /// No such device.
    ENODEV,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Invalid argument.
    EINVAL,
    /// Too many open files in system.
    ENFILE,
    /// File too large.
    EFBIG,
    /// No space left on device.
    ENOSPC,
    /// Read-only file system.
    EROFS,
    /// Too many links.
    EMLINK,
    /// Broken pipe.
    EPIPE,
    /// File name too long.
    ENAMETOOLONG,
    /// Function not implemented.
    ENOSYS,
    /// Directory not empty.
    ENOTEMPTY,
    /// Too many symbolic links encountered.
    ELOOP,
    /// Operation not supported.
    EOPNOTSUPP,
    /// Quota exceeded.
    EDQUOT,
    /// No data available (used for missing xattrs).
    ENODATA,
    /// Too many users (used when namespace limits are exhausted).
    EUSERS,
    /// Resource temporarily unavailable.
    EAGAIN,
}

impl Errno {
    /// The numeric value as reported by the Linux kernel on x86-64.
    pub fn code(self) -> i32 {
        match self {
            Errno::EPERM => 1,
            Errno::ENOENT => 2,
            Errno::ESRCH => 3,
            Errno::EIO => 5,
            Errno::EBADF => 9,
            Errno::EAGAIN => 11,
            Errno::EACCES => 13,
            Errno::EEXIST => 17,
            Errno::EXDEV => 18,
            Errno::ENODEV => 19,
            Errno::ENOTDIR => 20,
            Errno::EISDIR => 21,
            Errno::EINVAL => 22,
            Errno::ENFILE => 23,
            Errno::EFBIG => 27,
            Errno::ENOSPC => 28,
            Errno::EROFS => 30,
            Errno::EMLINK => 31,
            Errno::EPIPE => 32,
            Errno::ENAMETOOLONG => 36,
            Errno::ENOSYS => 38,
            Errno::ENOTEMPTY => 39,
            Errno::ELOOP => 40,
            Errno::ENODATA => 61,
            Errno::EUSERS => 87,
            Errno::EOPNOTSUPP => 95,
            Errno::EDQUOT => 122,
        }
    }

    /// The human-readable message, matching `strerror(3)` on glibc.
    pub fn message(self) -> &'static str {
        match self {
            Errno::EPERM => "Operation not permitted",
            Errno::ENOENT => "No such file or directory",
            Errno::ESRCH => "No such process",
            Errno::EIO => "Input/output error",
            Errno::EBADF => "Bad file descriptor",
            Errno::EAGAIN => "Resource temporarily unavailable",
            Errno::EACCES => "Permission denied",
            Errno::EEXIST => "File exists",
            Errno::EXDEV => "Invalid cross-device link",
            Errno::ENODEV => "No such device",
            Errno::ENOTDIR => "Not a directory",
            Errno::EISDIR => "Is a directory",
            Errno::EINVAL => "Invalid argument",
            Errno::ENFILE => "Too many open files in system",
            Errno::EFBIG => "File too large",
            Errno::ENOSPC => "No space left on device",
            Errno::EROFS => "Read-only file system",
            Errno::EMLINK => "Too many links",
            Errno::EPIPE => "Broken pipe",
            Errno::ENAMETOOLONG => "File name too long",
            Errno::ENOSYS => "Function not implemented",
            Errno::ENOTEMPTY => "Directory not empty",
            Errno::ELOOP => "Too many levels of symbolic links",
            Errno::ENODATA => "No data available",
            Errno::EUSERS => "Too many users",
            Errno::EOPNOTSUPP => "Operation not supported",
            Errno::EDQUOT => "Disk quota exceeded",
        }
    }

    /// The symbolic name, e.g. `"EPERM"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::EAGAIN => "EAGAIN",
            Errno::EACCES => "EACCES",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENODEV => "ENODEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EFBIG => "EFBIG",
            Errno::ENOSPC => "ENOSPC",
            Errno::EROFS => "EROFS",
            Errno::EMLINK => "EMLINK",
            Errno::EPIPE => "EPIPE",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOSYS => "ENOSYS",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ELOOP => "ELOOP",
            Errno::ENODATA => "ENODATA",
            Errno::EUSERS => "EUSERS",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
            Errno::EDQUOT => "EDQUOT",
        }
    }

    /// Formats the errno the way tools in the paper's transcripts do,
    /// e.g. `"(1: Operation not permitted)"`.
    pub fn transcript(self) -> String {
        format!("({}: {})", self.code(), self.message())
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.message())
    }
}

impl std::error::Error for Errno {}

/// Result type used throughout the simulated kernel and VFS.
pub type KResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux() {
        assert_eq!(Errno::EPERM.code(), 1);
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EACCES.code(), 13);
        assert_eq!(Errno::EEXIST.code(), 17);
        assert_eq!(Errno::EINVAL.code(), 22);
        assert_eq!(Errno::ENOSYS.code(), 38);
        assert_eq!(Errno::ENOTEMPTY.code(), 39);
    }

    #[test]
    fn messages_match_strerror() {
        assert_eq!(Errno::EPERM.message(), "Operation not permitted");
        assert_eq!(Errno::EINVAL.message(), "Invalid argument");
        assert_eq!(Errno::EACCES.message(), "Permission denied");
    }

    #[test]
    fn transcript_format_matches_figure3() {
        // Paper Figure 3: "setgroups (1: Operation not permitted)"
        assert_eq!(Errno::EPERM.transcript(), "(1: Operation not permitted)");
        // Paper Figure 3: "setegid (22: Invalid argument)"
        assert_eq!(Errno::EINVAL.transcript(), "(22: Invalid argument)");
    }

    #[test]
    fn display_includes_name_and_message() {
        let s = format!("{}", Errno::ENOENT);
        assert!(s.contains("ENOENT"));
        assert!(s.contains("No such file or directory"));
    }

    #[test]
    fn errno_is_error_trait() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(Errno::EIO);
    }

    #[test]
    fn all_variants_have_distinct_codes() {
        let all = [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::ESRCH,
            Errno::EIO,
            Errno::EBADF,
            Errno::EAGAIN,
            Errno::EACCES,
            Errno::EEXIST,
            Errno::EXDEV,
            Errno::ENODEV,
            Errno::ENOTDIR,
            Errno::EISDIR,
            Errno::EINVAL,
            Errno::ENFILE,
            Errno::EFBIG,
            Errno::ENOSPC,
            Errno::EROFS,
            Errno::EMLINK,
            Errno::EPIPE,
            Errno::ENAMETOOLONG,
            Errno::ENOSYS,
            Errno::ENOTEMPTY,
            Errno::ELOOP,
            Errno::ENODATA,
            Errno::EUSERS,
            Errno::EOPNOTSUPP,
            Errno::EDQUOT,
        ];
        let mut codes: Vec<i32> = all.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }
}
