//! User namespaces (paper §2.1).
//!
//! The model is the paper's simplified two-level host/container division: the
//! initial namespace (the host) plus child namespaces created by container
//! runtimes. Each namespace carries a UID map and a GID map; host IDs are used
//! for access control and in-namespace IDs are aliases.

use crate::caps::{Capability, CapabilitySet};
use crate::creds::Credentials;
use crate::errno::{Errno, KResult};
use crate::idmap::{IdMap, IdMapEntry};
use crate::ids::{Gid, Uid};

/// Identifier of a user namespace within a [`crate::process::Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UsernsId(pub u64);

impl UsernsId {
    /// The initial (host) user namespace.
    pub const INIT: UsernsId = UsernsId(0);
}

/// Whether `setgroups(2)` is permitted in a namespace
/// (`/proc/<pid>/setgroups`, paper §2.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetgroupsPolicy {
    /// `allow`: processes with CAP_SETGID in the namespace may call
    /// `setgroups(2)` on mapped groups.
    Allow,
    /// `deny`: `setgroups(2)` always fails. Required before an unprivileged
    /// process may write `gid_map`.
    Deny,
}

/// How the namespace's maps were established — the distinction at the heart of
/// the paper's Type II / Type III split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOrigin {
    /// Not yet written.
    Unwritten,
    /// Written by a process holding CAP_SETUID / CAP_SETGID in the parent
    /// namespace (e.g. the `newuidmap(1)` / `newgidmap(1)` helpers).
    Privileged,
    /// Written by the unprivileged creator itself: single-ID maps only.
    Unprivileged,
}

/// A user namespace.
#[derive(Debug, Clone)]
pub struct UserNamespace {
    /// Namespace identity.
    pub id: UsernsId,
    /// Parent namespace; `None` only for the initial namespace.
    pub parent: Option<UsernsId>,
    /// Nesting level; 0 for the initial namespace.
    pub level: u32,
    /// Host (parent-side) effective UID of the creator; the creator holds all
    /// capabilities within the namespace.
    pub owner_host_uid: Uid,
    /// Host (parent-side) effective GID of the creator.
    pub owner_host_gid: Gid,
    /// UID map (empty until written).
    pub uid_map: IdMap,
    /// GID map (empty until written).
    pub gid_map: IdMap,
    /// `setgroups(2)` policy.
    pub setgroups: SetgroupsPolicy,
    /// How the UID map was written.
    pub uid_map_origin: MapOrigin,
    /// How the GID map was written.
    pub gid_map_origin: MapOrigin,
}

impl UserNamespace {
    /// The initial namespace: identity maps, setgroups allowed.
    pub fn initial() -> Self {
        UserNamespace {
            id: UsernsId::INIT,
            parent: None,
            level: 0,
            owner_host_uid: Uid::ROOT,
            owner_host_gid: Gid::ROOT,
            uid_map: IdMap::identity(),
            gid_map: IdMap::identity(),
            setgroups: SetgroupsPolicy::Allow,
            uid_map_origin: MapOrigin::Privileged,
            gid_map_origin: MapOrigin::Privileged,
        }
    }

    /// True for the initial (host) namespace.
    pub fn is_initial(&self) -> bool {
        self.parent.is_none()
    }

    /// True once both maps are written.
    pub fn maps_written(&self) -> bool {
        self.uid_map.is_written() && self.gid_map.is_written()
    }

    /// True if this namespace was configured by privileged helpers — the
    /// paper's Type II setup.
    pub fn is_privileged_setup(&self) -> bool {
        self.uid_map_origin == MapOrigin::Privileged || self.gid_map_origin == MapOrigin::Privileged
    }

    /// Maps an in-namespace UID to a host UID.
    pub fn uid_to_host(&self, inside: Uid) -> Option<Uid> {
        self.uid_map.to_host(inside.0).map(Uid)
    }

    /// Maps a host UID to an in-namespace UID.
    pub fn uid_to_ns(&self, host: Uid) -> Option<Uid> {
        self.uid_map.to_namespace(host.0).map(Uid)
    }

    /// Maps an in-namespace GID to a host GID.
    pub fn gid_to_host(&self, inside: Gid) -> Option<Gid> {
        self.gid_map.to_host(inside.0).map(Gid)
    }

    /// Maps a host GID to an in-namespace GID.
    pub fn gid_to_ns(&self, host: Gid) -> Option<Gid> {
        self.gid_map.to_namespace(host.0).map(Gid)
    }

    /// Host UID as displayed inside the namespace (`nobody` for unmapped),
    /// e.g. `ls(1)` output and `/proc` ownership in Podman unprivileged mode
    /// (paper §4.1.1).
    pub fn display_uid(&self, host: Uid) -> Uid {
        Uid(self.uid_map.to_namespace_or_overflow(host.0))
    }

    /// Host GID as displayed inside the namespace (`nogroup` for unmapped).
    pub fn display_gid(&self, host: Gid) -> Gid {
        Gid(self.gid_map.to_namespace_or_overflow(host.0))
    }

    /// The capabilities a process holds *with respect to this namespace*:
    /// full if the process's credentials say so and it is either in this
    /// namespace or is a privileged process of an ancestor namespace.
    pub fn caps_of(&self, creds: &Credentials, process_ns: UsernsId) -> CapabilitySet {
        if process_ns == self.id {
            creds.caps
        } else if process_ns == UsernsId::INIT && !self.is_initial() {
            // A host process privileged in the initial namespace is privileged
            // over every descendant namespace.
            creds.caps
        } else {
            CapabilitySet::empty()
        }
    }
}

impl UserNamespace {
    /// Convenience constructor: a fully unprivileged (Type III) namespace for
    /// the given host user — single-ID maps, setgroups denied. This is the
    /// namespace Charliecloud's `ch-run`/`ch-image` use (paper §5).
    pub fn type3(owner_uid: Uid, owner_gid: Gid) -> Self {
        UserNamespace {
            id: UsernsId(1),
            parent: Some(UsernsId::INIT),
            level: 1,
            owner_host_uid: owner_uid,
            owner_host_gid: owner_gid,
            uid_map: IdMap::single(0, owner_uid.0),
            gid_map: IdMap::single(0, owner_gid.0),
            setgroups: SetgroupsPolicy::Deny,
            uid_map_origin: MapOrigin::Unprivileged,
            gid_map_origin: MapOrigin::Unprivileged,
        }
    }

    /// Convenience constructor: a privileged-map (Type II) namespace, as set
    /// up by the `newuidmap(1)`/`newgidmap(1)` helpers for rootless Podman
    /// (paper §4, Figure 4): invoker mapped to root, plus a subordinate range.
    pub fn type2(owner_uid: Uid, owner_gid: Gid, sub_start: u32, sub_count: u32) -> Self {
        UserNamespace {
            id: UsernsId(1),
            parent: Some(UsernsId::INIT),
            level: 1,
            owner_host_uid: owner_uid,
            owner_host_gid: owner_gid,
            uid_map: IdMap::privileged_build(owner_uid.0, sub_start, sub_count),
            gid_map: IdMap::privileged_build(owner_gid.0, sub_start, sub_count),
            setgroups: SetgroupsPolicy::Allow,
            uid_map_origin: MapOrigin::Privileged,
            gid_map_origin: MapOrigin::Privileged,
        }
    }
}

/// Writes the UID map of a child namespace, enforcing the kernel's rules
/// (`user_namespaces(7)`; paper §2.1.2 / §2.1.3).
///
/// * A map may be written only once.
/// * A writer holding CAP_SETUID in the *parent* namespace may install an
///   arbitrary (valid) map — this is what `newuidmap(1)` does.
/// * Otherwise the map must be a single line of count 1 whose outside ID is
///   the writer's effective host UID.
pub fn write_uid_map(
    ns: &mut UserNamespace,
    entries: Vec<IdMapEntry>,
    writer: &Credentials,
    writer_caps_in_parent: &CapabilitySet,
) -> KResult<()> {
    if ns.uid_map.is_written() {
        return Err(Errno::EPERM);
    }
    let map = IdMap::from_entries(entries)?;
    if writer_caps_in_parent.has(Capability::CapSetuid) {
        ns.uid_map = map;
        ns.uid_map_origin = MapOrigin::Privileged;
        return Ok(());
    }
    // Unprivileged path: single entry, count 1, outside == writer's euid.
    let e = map.entries();
    if e.len() != 1 || e[0].count != 1 || e[0].outside_start != writer.euid.0 {
        return Err(Errno::EPERM);
    }
    ns.uid_map = map;
    ns.uid_map_origin = MapOrigin::Unprivileged;
    Ok(())
}

/// Writes the GID map of a child namespace (same rules as
/// [`write_uid_map`], plus: an unprivileged writer must first have denied
/// `setgroups(2)` — paper §2.1.4).
pub fn write_gid_map(
    ns: &mut UserNamespace,
    entries: Vec<IdMapEntry>,
    writer: &Credentials,
    writer_caps_in_parent: &CapabilitySet,
) -> KResult<()> {
    if ns.gid_map.is_written() {
        return Err(Errno::EPERM);
    }
    let map = IdMap::from_entries(entries)?;
    if writer_caps_in_parent.has(Capability::CapSetgid) {
        ns.gid_map = map;
        ns.gid_map_origin = MapOrigin::Privileged;
        return Ok(());
    }
    if ns.setgroups != SetgroupsPolicy::Deny {
        return Err(Errno::EPERM);
    }
    let e = map.entries();
    if e.len() != 1 || e[0].count != 1 || e[0].outside_start != writer.egid.0 {
        return Err(Errno::EPERM);
    }
    ns.gid_map = map;
    ns.gid_map_origin = MapOrigin::Unprivileged;
    Ok(())
}

/// Sets the namespace's `setgroups` file to `deny`. Must happen before the
/// GID map is written; afterwards the kernel rejects the change.
pub fn deny_setgroups(ns: &mut UserNamespace) -> KResult<()> {
    if ns.gid_map.is_written() {
        return Err(Errno::EPERM);
    }
    ns.setgroups = SetgroupsPolicy::Deny;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::creds::Credentials;

    fn alice() -> Credentials {
        Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000), Gid(2000)])
    }

    fn child_ns(owner: &Credentials) -> UserNamespace {
        UserNamespace {
            id: UsernsId(1),
            parent: Some(UsernsId::INIT),
            level: 1,
            owner_host_uid: owner.euid,
            owner_host_gid: owner.egid,
            uid_map: IdMap::empty(),
            gid_map: IdMap::empty(),
            setgroups: SetgroupsPolicy::Allow,
            uid_map_origin: MapOrigin::Unwritten,
            gid_map_origin: MapOrigin::Unwritten,
        }
    }

    #[test]
    fn initial_namespace_is_identity() {
        let ns = UserNamespace::initial();
        assert!(ns.is_initial());
        assert_eq!(ns.uid_to_host(Uid(1000)), Some(Uid(1000)));
        assert_eq!(ns.display_uid(Uid(55)), Uid(55));
        assert!(ns.maps_written());
    }

    #[test]
    fn unprivileged_writer_limited_to_own_euid_single_entry() {
        let alice = alice();
        let mut ns = child_ns(&alice);
        let no_caps = CapabilitySet::empty();
        // Mapping someone else's UID is refused.
        let err = write_uid_map(&mut ns, vec![IdMapEntry::new(0, 1001, 1)], &alice, &no_caps)
            .unwrap_err();
        assert_eq!(err, Errno::EPERM);
        // Mapping a range is refused.
        let err = write_uid_map(
            &mut ns,
            vec![IdMapEntry::new(0, 1000, 10)],
            &alice,
            &no_caps,
        )
        .unwrap_err();
        assert_eq!(err, Errno::EPERM);
        // Mapping own euid to in-namespace root works (paper §2.1.3).
        write_uid_map(&mut ns, vec![IdMapEntry::new(0, 1000, 1)], &alice, &no_caps).unwrap();
        assert_eq!(ns.uid_to_host(Uid(0)), Some(Uid(1000)));
        assert_eq!(ns.uid_map_origin, MapOrigin::Unprivileged);
    }

    #[test]
    fn unprivileged_gid_map_requires_setgroups_deny() {
        let alice = alice();
        let mut ns = child_ns(&alice);
        let no_caps = CapabilitySet::empty();
        let err = write_gid_map(&mut ns, vec![IdMapEntry::new(0, 1000, 1)], &alice, &no_caps)
            .unwrap_err();
        assert_eq!(err, Errno::EPERM);
        deny_setgroups(&mut ns).unwrap();
        write_gid_map(&mut ns, vec![IdMapEntry::new(0, 1000, 1)], &alice, &no_caps).unwrap();
        assert_eq!(ns.gid_to_host(Gid(0)), Some(Gid(1000)));
    }

    #[test]
    fn privileged_helper_installs_range_map() {
        let alice = alice();
        let mut ns = child_ns(&alice);
        let helper_caps = CapabilitySet::of(&[Capability::CapSetuid, Capability::CapSetgid]);
        write_uid_map(
            &mut ns,
            vec![
                IdMapEntry::new(0, 1000, 1),
                IdMapEntry::new(1, 200_000, 65_536),
            ],
            &alice,
            &helper_caps,
        )
        .unwrap();
        write_gid_map(
            &mut ns,
            vec![
                IdMapEntry::new(0, 1000, 1),
                IdMapEntry::new(1, 200_000, 65_536),
            ],
            &alice,
            &helper_caps,
        )
        .unwrap();
        assert!(ns.is_privileged_setup());
        assert_eq!(ns.uid_to_host(Uid(74)), Some(Uid(200_073)));
        assert!(ns.maps_written());
    }

    #[test]
    fn maps_may_be_written_only_once() {
        let alice = alice();
        let mut ns = child_ns(&alice);
        let no_caps = CapabilitySet::empty();
        write_uid_map(&mut ns, vec![IdMapEntry::new(0, 1000, 1)], &alice, &no_caps).unwrap();
        let err = write_uid_map(&mut ns, vec![IdMapEntry::new(0, 1000, 1)], &alice, &no_caps)
            .unwrap_err();
        assert_eq!(err, Errno::EPERM);
    }

    #[test]
    fn setgroups_cannot_be_denied_after_gid_map() {
        let alice = alice();
        let mut ns = child_ns(&alice);
        let helper_caps = CapabilitySet::of(&[Capability::CapSetgid]);
        write_gid_map(
            &mut ns,
            vec![IdMapEntry::new(0, 1000, 1)],
            &alice,
            &helper_caps,
        )
        .unwrap();
        assert_eq!(deny_setgroups(&mut ns).unwrap_err(), Errno::EPERM);
    }

    #[test]
    fn unmapped_ids_display_as_nobody() {
        let alice = alice();
        let mut ns = child_ns(&alice);
        let no_caps = CapabilitySet::empty();
        write_uid_map(&mut ns, vec![IdMapEntry::new(0, 1000, 1)], &alice, &no_caps).unwrap();
        // Bob's files (host UID 1001) appear as nobody inside.
        assert_eq!(ns.display_uid(Uid(1001)), Uid::NOBODY);
        // Unmapped groups appear as nogroup even when accessible (paper
        // §2.1.1 case 3).
        assert_eq!(ns.display_gid(Gid(2000)), Gid::NOGROUP);
    }

    #[test]
    fn caps_are_namespace_relative() {
        let alice = alice();
        let mut ns = child_ns(&alice);
        let no_caps = CapabilitySet::empty();
        write_uid_map(&mut ns, vec![IdMapEntry::new(0, 1000, 1)], &alice, &no_caps).unwrap();
        // A containerized process with full caps in the child namespace has no
        // caps with respect to the initial namespace.
        let mut container_creds = alice.clone();
        container_creds.caps = CapabilitySet::full();
        let init = UserNamespace::initial();
        assert!(init.caps_of(&container_creds, ns.id).is_empty());
        assert!(ns.caps_of(&container_creds, ns.id).is_full());
        // A host-root process is privileged over the child namespace.
        let host_root = Credentials::host_root();
        assert!(ns.caps_of(&host_root, UsernsId::INIT).is_full());
    }
}
