//! The kernel object: namespace registry, process table, and namespace
//! creation (`unshare(2)` / `clone(2)` with `CLONE_NEWUSER`).

use std::collections::HashMap;

use crate::caps::{Capability, CapabilitySet};
use crate::creds::Credentials;
use crate::errno::{Errno, KResult};
use crate::idmap::IdMapEntry;
use crate::ids::{Gid, Uid};
use crate::sysctl::Sysctl;
use crate::userns::{
    deny_setgroups, write_gid_map, write_uid_map, MapOrigin, SetgroupsPolicy, UserNamespace,
    UsernsId,
};

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// A process: credentials plus the user namespace it lives in.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process ID.
    pub pid: Pid,
    /// Parent process ID (PID 1 is its own parent in this model).
    pub ppid: Pid,
    /// Credentials (host IDs).
    pub creds: Credentials,
    /// User namespace membership.
    pub userns: UsernsId,
    /// File-mode creation mask.
    pub umask: u16,
    /// Short descriptive name (the command), used in transcripts.
    pub comm: String,
}

/// The simulated kernel: sysctl state, user namespaces, and processes.
///
/// A `Kernel` instance corresponds to one node (one kernel) in the HPC
/// cluster substrate.
#[derive(Debug, Clone)]
pub struct Kernel {
    sysctl: Sysctl,
    namespaces: HashMap<UsernsId, UserNamespace>,
    processes: HashMap<Pid, Process>,
    next_ns: u64,
    next_pid: u32,
    user_namespaces_created: u32,
}

impl Kernel {
    /// Boots a kernel with the given sysctl configuration. PID 1 runs as host
    /// root in the initial namespace.
    pub fn boot(sysctl: Sysctl) -> Self {
        let mut namespaces = HashMap::new();
        namespaces.insert(UsernsId::INIT, UserNamespace::initial());
        let mut processes = HashMap::new();
        processes.insert(
            Pid(1),
            Process {
                pid: Pid(1),
                ppid: Pid(1),
                creds: Credentials::host_root(),
                userns: UsernsId::INIT,
                umask: 0o022,
                comm: "init".to_string(),
            },
        );
        Kernel {
            sysctl,
            namespaces,
            processes,
            next_ns: 1,
            next_pid: 2,
            user_namespaces_created: 0,
        }
    }

    /// Boots a modern kernel.
    pub fn boot_modern() -> Self {
        Kernel::boot(Sysctl::modern())
    }

    /// The kernel's sysctl configuration.
    pub fn sysctl(&self) -> &Sysctl {
        &self.sysctl
    }

    /// Mutable sysctl access (for sysadmin reconfiguration in tests and
    /// scenarios).
    pub fn sysctl_mut(&mut self) -> &mut Sysctl {
        &mut self.sysctl
    }

    /// Looks up a namespace.
    pub fn userns(&self, id: UsernsId) -> Option<&UserNamespace> {
        self.namespaces.get(&id)
    }

    /// Mutable namespace access.
    pub fn userns_mut(&mut self, id: UsernsId) -> Option<&mut UserNamespace> {
        self.namespaces.get_mut(&id)
    }

    /// Looks up a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Mutable process access.
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.processes.get_mut(&pid)
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of user namespaces ever created (excluding the initial one).
    pub fn user_namespaces_created(&self) -> u32 {
        self.user_namespaces_created
    }

    /// Spawns a login session process for an ordinary user.
    pub fn spawn_user_process(
        &mut self,
        uid: Uid,
        gid: Gid,
        supplementary: Vec<Gid>,
        comm: &str,
    ) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(
            pid,
            Process {
                pid,
                ppid: Pid(1),
                creds: Credentials::unprivileged_user(uid, gid, supplementary),
                userns: UsernsId::INIT,
                umask: 0o022,
                comm: comm.to_string(),
            },
        );
        pid
    }

    /// `fork(2)`: clones credentials and namespace membership.
    pub fn fork(&mut self, parent: Pid, comm: &str) -> KResult<Pid> {
        let p = self.processes.get(&parent).ok_or(Errno::ESRCH)?.clone();
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(
            pid,
            Process {
                pid,
                ppid: parent,
                creds: p.creds,
                userns: p.userns,
                umask: p.umask,
                comm: comm.to_string(),
            },
        );
        Ok(pid)
    }

    /// Terminates a process.
    pub fn exit(&mut self, pid: Pid) {
        self.processes.remove(&pid);
    }

    /// `unshare(CLONE_NEWUSER)`: creates a new user namespace and moves the
    /// process into it. The process gains all capabilities *within* the new
    /// namespace but its maps are unwritten.
    pub fn unshare_userns(&mut self, pid: Pid) -> KResult<UsernsId> {
        let proc = self.processes.get(&pid).ok_or(Errno::ESRCH)?.clone();
        if !self.sysctl.has_user_namespaces() {
            return Err(Errno::EINVAL);
        }
        if !self.sysctl.unprivileged_userns_clone && !proc.creds.has_cap(Capability::CapSysAdmin) {
            return Err(Errno::EPERM);
        }
        if self.user_namespaces_created >= self.sysctl.max_user_namespaces {
            // The kernel reports ENOSPC when user.max_user_namespaces is
            // exceeded (and when it is zero).
            return Err(Errno::ENOSPC);
        }
        let parent_ns = proc.userns;
        let id = UsernsId(self.next_ns);
        self.next_ns += 1;
        self.user_namespaces_created += 1;
        let level = self
            .namespaces
            .get(&parent_ns)
            .map(|n| n.level + 1)
            .unwrap_or(1);
        self.namespaces.insert(
            id,
            UserNamespace {
                id,
                parent: Some(parent_ns),
                level,
                owner_host_uid: proc.creds.euid,
                owner_host_gid: proc.creds.egid,
                uid_map: crate::idmap::IdMap::empty(),
                gid_map: crate::idmap::IdMap::empty(),
                setgroups: SetgroupsPolicy::Allow,
                uid_map_origin: MapOrigin::Unwritten,
                gid_map_origin: MapOrigin::Unwritten,
            },
        );
        let p = self.processes.get_mut(&pid).expect("checked above");
        p.userns = id;
        p.creds = p.creds.entered_own_namespace();
        Ok(id)
    }

    /// Writes the new namespace's UID map on behalf of `writer_pid`. The
    /// writer's capabilities *in the parent namespace* decide whether range
    /// maps are allowed (this is how the `newuidmap(1)` helper is modelled:
    /// it runs in the parent namespace with CAP_SETUID).
    pub fn set_uid_map(
        &mut self,
        ns_id: UsernsId,
        entries: Vec<IdMapEntry>,
        writer_creds: &Credentials,
        writer_caps_in_parent: &CapabilitySet,
    ) -> KResult<()> {
        let ns = self.namespaces.get_mut(&ns_id).ok_or(Errno::EINVAL)?;
        write_uid_map(ns, entries, writer_creds, writer_caps_in_parent)
    }

    /// Writes the new namespace's GID map (see [`Kernel::set_uid_map`]).
    pub fn set_gid_map(
        &mut self,
        ns_id: UsernsId,
        entries: Vec<IdMapEntry>,
        writer_creds: &Credentials,
        writer_caps_in_parent: &CapabilitySet,
    ) -> KResult<()> {
        let ns = self.namespaces.get_mut(&ns_id).ok_or(Errno::EINVAL)?;
        write_gid_map(ns, entries, writer_creds, writer_caps_in_parent)
    }

    /// Writes `deny` to the namespace's `setgroups` file.
    pub fn deny_setgroups(&mut self, ns_id: UsernsId) -> KResult<()> {
        let ns = self.namespaces.get_mut(&ns_id).ok_or(Errno::EINVAL)?;
        deny_setgroups(ns)
    }

    /// Convenience used throughout the runtime crate: set up a fully
    /// unprivileged (Type III) namespace for a process — its own UID/GID
    /// mapped to in-namespace root, nothing else.
    pub fn setup_type3_namespace(&mut self, pid: Pid) -> KResult<UsernsId> {
        let creds = self.processes.get(&pid).ok_or(Errno::ESRCH)?.creds.clone();
        // The creator is unprivileged on the host.
        let host_caps = CapabilitySet::empty();
        let ns_id = self.unshare_userns(pid)?;
        self.set_uid_map(
            ns_id,
            vec![IdMapEntry::new(0, creds.euid.0, 1)],
            &creds,
            &host_caps,
        )?;
        self.deny_setgroups(ns_id)?;
        self.set_gid_map(
            ns_id,
            vec![IdMapEntry::new(0, creds.egid.0, 1)],
            &creds,
            &host_caps,
        )?;
        Ok(ns_id)
    }

    /// Renders `/proc/<pid>/uid_map` for a process.
    pub fn proc_uid_map(&self, pid: Pid) -> KResult<String> {
        let p = self.processes.get(&pid).ok_or(Errno::ESRCH)?;
        let ns = self.namespaces.get(&p.userns).ok_or(Errno::ESRCH)?;
        Ok(ns.uid_map.render_procfs())
    }

    /// Renders `/proc/<pid>/gid_map` for a process.
    pub fn proc_gid_map(&self, pid: Pid) -> KResult<String> {
        let p = self.processes.get(&pid).ok_or(Errno::ESRCH)?;
        let ns = self.namespaces.get(&p.userns).ok_or(Errno::ESRCH)?;
        Ok(ns.gid_map.render_procfs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_alice() -> (Kernel, Pid) {
        let mut k = Kernel::boot_modern();
        let pid = k.spawn_user_process(Uid(1000), Gid(1000), vec![Gid(1000)], "bash");
        (k, pid)
    }

    #[test]
    fn boot_creates_init() {
        let k = Kernel::boot_modern();
        let init = k.process(Pid(1)).unwrap();
        assert!(init.creds.euid.is_root());
        assert_eq!(init.userns, UsernsId::INIT);
        assert_eq!(k.process_count(), 1);
    }

    #[test]
    fn unshare_gives_full_caps_in_new_ns_only() {
        let (mut k, pid) = kernel_with_alice();
        let ns_id = k.unshare_userns(pid).unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.userns, ns_id);
        assert!(p.creds.caps.is_full());
        // But host identity unchanged.
        assert_eq!(p.creds.euid, Uid(1000));
    }

    #[test]
    fn type3_setup_produces_single_id_maps() {
        let (mut k, pid) = kernel_with_alice();
        let ns_id = k.setup_type3_namespace(pid).unwrap();
        let ns = k.userns(ns_id).unwrap();
        assert_eq!(ns.uid_map.mapped_count(), 1);
        assert_eq!(ns.gid_map.mapped_count(), 1);
        assert_eq!(ns.setgroups, SetgroupsPolicy::Deny);
        assert!(!ns.is_privileged_setup());
        assert_eq!(ns.uid_to_host(Uid(0)), Some(Uid(1000)));
    }

    #[test]
    fn userns_disabled_by_sysctl_count() {
        let mut k = Kernel::boot(Sysctl::rhel_pre_76());
        let pid = k.spawn_user_process(Uid(1000), Gid(1000), vec![], "bash");
        assert_eq!(k.unshare_userns(pid).unwrap_err(), Errno::ENOSPC);
    }

    #[test]
    fn userns_unavailable_on_ancient_kernel() {
        let mut k = Kernel::boot(Sysctl::pre_userns());
        let pid = k.spawn_user_process(Uid(1000), Gid(1000), vec![], "bash");
        assert_eq!(k.unshare_userns(pid).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn max_user_namespaces_enforced() {
        let mut sysctl = Sysctl::modern();
        sysctl.max_user_namespaces = 2;
        let mut k = Kernel::boot(sysctl);
        let a = k.spawn_user_process(Uid(1000), Gid(1000), vec![], "a");
        let b = k.spawn_user_process(Uid(1001), Gid(1001), vec![], "b");
        let c = k.spawn_user_process(Uid(1002), Gid(1002), vec![], "c");
        k.unshare_userns(a).unwrap();
        k.unshare_userns(b).unwrap();
        assert_eq!(k.unshare_userns(c).unwrap_err(), Errno::ENOSPC);
    }

    #[test]
    fn fork_clones_namespace_membership() {
        let (mut k, pid) = kernel_with_alice();
        k.setup_type3_namespace(pid).unwrap();
        let child = k.fork(pid, "yum").unwrap();
        assert_eq!(
            k.process(child).unwrap().userns,
            k.process(pid).unwrap().userns
        );
        k.exit(child);
        assert!(k.process(child).is_none());
    }

    #[test]
    fn proc_uid_map_matches_figure4_format() {
        let (mut k, pid) = kernel_with_alice();
        let ns_id = k.unshare_userns(pid).unwrap();
        let creds = k.process(pid).unwrap().creds.clone();
        let helper = CapabilitySet::of(&[Capability::CapSetuid]);
        k.set_uid_map(
            ns_id,
            vec![
                IdMapEntry::new(0, 1234, 1),
                IdMapEntry::new(1, 200_000, 65_536),
            ],
            &creds,
            &helper,
        )
        .unwrap();
        let text = k.proc_uid_map(pid).unwrap();
        let mut lines = text.lines();
        let l0: Vec<&str> = lines.next().unwrap().split_whitespace().collect();
        assert_eq!(l0, vec!["0", "1234", "1"]);
        let l1: Vec<&str> = lines.next().unwrap().split_whitespace().collect();
        assert_eq!(l1, vec!["1", "200000", "65536"]);
    }

    #[test]
    fn nested_namespace_levels_increase() {
        let (mut k, pid) = kernel_with_alice();
        let first = k.unshare_userns(pid).unwrap();
        assert_eq!(k.userns(first).unwrap().level, 1);
        let second = k.unshare_userns(pid).unwrap();
        assert_eq!(k.userns(second).unwrap().level, 2);
        assert_eq!(k.userns(second).unwrap().parent, Some(first));
    }
}
