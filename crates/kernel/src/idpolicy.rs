//! Prospective kernel ID-map mechanisms (paper §6.2.4).
//!
//! The paper recommends three kernel-side extensions that would let fully
//! unprivileged (Type III) builds keep the ergonomics of privileged (Type II)
//! maps without helper binaries or `/etc/subuid` configuration:
//!
//! 1. **Mappable supplementary groups** — today an unprivileged user namespace
//!    may map only the invoker's UID and GID; supplementary groups stay
//!    unmapped and display as `nogroup` (§2.1.3).
//! 2. **General map policies** — e.g. "host UID maps to container root and
//!    guaranteed-unique host UIDs map to all other container UIDs", removing
//!    the sysadmin-maintained subordinate-ID files that are the main
//!    configuration hazard of Type II (§2.1.2).
//! 3. **A kernel-managed fake ID database** — the kernel records the *claimed*
//!    ownership of files while storing them as the invoking user, i.e. exactly
//!    what `fakeroot(1)` does in user space, but as kernel state.
//!
//! None of these exist in Linux today; this module implements them as a
//! design-space model so the repository can measure what each would buy
//! (see the `idmap_policies` bench and EXPERIMENTS.md E18).

use std::collections::BTreeMap;

use crate::creds::Credentials;
use crate::errno::{Errno, KResult};
use crate::idmap::{IdMap, IdMapEntry};
use crate::ids::{Gid, Owner, Uid};

/// A proposed map-construction policy (paper §6.2.4, item "general policies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapPolicy {
    /// Today's unprivileged rule: the invoker's ID maps to one chosen
    /// in-namespace ID (normally 0) and nothing else is mapped.
    SingleId,
    /// The paper's example policy: the invoker maps to in-namespace root and
    /// a kernel-allocated, guaranteed-unique host range backs in-namespace IDs
    /// `1..=count`. No `/etc/subuid`, no privileged helper.
    RootPlusUniqueRange {
        /// How many additional in-namespace IDs to back (65536 covers every
        /// distribution's system users and groups, §2.1.2).
        count: u32,
    },
    /// Supplementary groups of the invoker become mappable one-to-one
    /// (identity-mapped), removing the `nogroup`/`chgrp` limitations of
    /// §2.1.3 while still granting no access the invoker did not already have.
    SupplementaryIdentity,
}

impl MapPolicy {
    /// Short policy name for transcripts and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            MapPolicy::SingleId => "single-id",
            MapPolicy::RootPlusUniqueRange { .. } => "root+unique-range",
            MapPolicy::SupplementaryIdentity => "supplementary-identity",
        }
    }

    /// Whether the policy needs any setuid/setcap helper or sysadmin-managed
    /// configuration under the proposal (it never does — that is the point).
    pub fn needs_privileged_helper(self) -> bool {
        false
    }
}

/// Kernel-side allocator of guaranteed-unique host ID ranges.
///
/// This replaces `/etc/subuid` + `newuidmap(1)`: the kernel hands out
/// non-overlapping ranges above a floor, and remembers per-user grants so a
/// user who builds twice gets the same range (stable image ownership).
#[derive(Debug, Clone)]
pub struct UniqueRangeAllocator {
    floor: u32,
    range_size: u32,
    grants: BTreeMap<u32, IdMapEntry>,
    next_start: u32,
}

impl UniqueRangeAllocator {
    /// Creates an allocator handing out `range_size`-wide ranges starting at
    /// `floor` (e.g. 200 000, matching Figure 1's convention).
    pub fn new(floor: u32, range_size: u32) -> Self {
        UniqueRangeAllocator {
            floor,
            range_size,
            grants: BTreeMap::new(),
            next_start: floor,
        }
    }

    /// Range size handed to each user.
    pub fn range_size(&self) -> u32 {
        self.range_size
    }

    /// Allocates (or returns the existing) unique host range for a user.
    /// Fails with `ENOSPC` when the 32-bit ID space is exhausted.
    pub fn grant(&mut self, invoker: Uid, count: u32) -> KResult<IdMapEntry> {
        if count == 0 || count > self.range_size {
            return Err(Errno::EINVAL);
        }
        if let Some(existing) = self.grants.get(&invoker.0) {
            return Ok(IdMapEntry::new(1, existing.outside_start, count));
        }
        let start = self.next_start;
        let end = start.checked_add(self.range_size).ok_or(Errno::ENOSPC)?;
        self.next_start = end;
        let grant = IdMapEntry::new(1, start, self.range_size);
        self.grants.insert(invoker.0, grant);
        Ok(IdMapEntry::new(1, start, count))
    }

    /// Number of users holding grants.
    pub fn granted_users(&self) -> usize {
        self.grants.len()
    }

    /// Verifies the invariant the sysadmin must maintain by hand with
    /// `/etc/subuid` (§2.1.2): no two users' ranges overlap, and no range
    /// dips below the floor into host system/user IDs.
    pub fn verify_disjoint(&self) -> bool {
        let mut prev_end = self.floor;
        for grant in self.grants.values().collect::<Vec<_>>().iter() {
            // BTreeMap iterates by invoker UID, not range start; sort by start.
            let _ = grant;
        }
        let mut ranges: Vec<&IdMapEntry> = self.grants.values().collect();
        ranges.sort_by_key(|e| e.outside_start);
        for e in ranges {
            if e.outside_start < prev_end {
                return false;
            }
            prev_end = e.outside_start + e.count;
        }
        true
    }
}

/// Builds the UID map a namespace would receive under a policy, entirely
/// without privileged helpers.
pub fn policy_uid_map(
    policy: MapPolicy,
    invoker: &Credentials,
    alloc: &mut UniqueRangeAllocator,
) -> KResult<IdMap> {
    match policy {
        MapPolicy::SingleId | MapPolicy::SupplementaryIdentity => {
            Ok(IdMap::single(0, invoker.euid.0))
        }
        MapPolicy::RootPlusUniqueRange { count } => {
            let range = alloc.grant(invoker.euid, count)?;
            IdMap::from_entries(vec![IdMapEntry::new(0, invoker.euid.0, 1), range])
        }
    }
}

/// Builds the GID map a namespace would receive under a policy.
///
/// Under [`MapPolicy::SupplementaryIdentity`] the invoker's supplementary
/// groups are identity-mapped in addition to the primary group, which is what
/// makes `chgrp(1)` to those groups work inside the namespace (§2.1.3) without
/// granting any new access: the host IDs are the user's own groups.
pub fn policy_gid_map(
    policy: MapPolicy,
    invoker: &Credentials,
    alloc: &mut UniqueRangeAllocator,
) -> KResult<IdMap> {
    match policy {
        MapPolicy::SingleId => Ok(IdMap::single(0, invoker.egid.0)),
        MapPolicy::RootPlusUniqueRange { count } => {
            let range = alloc.grant(Uid(invoker.egid.0), count)?;
            IdMap::from_entries(vec![IdMapEntry::new(0, invoker.egid.0, 1), range])
        }
        MapPolicy::SupplementaryIdentity => {
            let mut entries = vec![IdMapEntry::new(0, invoker.egid.0, 1)];
            for g in &invoker.supplementary {
                if *g == invoker.egid {
                    continue;
                }
                // Identity map: in-namespace ID == host ID, so nothing is
                // renumbered and nothing new becomes reachable.
                entries.push(IdMapEntry::new(g.0, g.0, 1));
            }
            // Entries must be disjoint on both sides; duplicates removed above.
            IdMap::from_entries(entries)
        }
    }
}

/// Which groups would stop displaying as `nogroup` under
/// [`MapPolicy::SupplementaryIdentity`].
pub fn newly_visible_groups(invoker: &Credentials) -> Vec<Gid> {
    invoker
        .supplementary
        .iter()
        .copied()
        .filter(|g| *g != invoker.egid)
        .collect()
}

/// The kernel-managed fake ownership database of §6.2.4 item 3: files are
/// stored on disk as the invoking user, and the kernel tracks the ownership
/// the containerized process *claimed* via `chown(2)`/`chgrp(2)`, returning it
/// from `stat(2)` inside the namespace and from export interfaces.
///
/// This is `fakeroot(1)` semantics with the database held in kernel state
/// rather than an `LD_PRELOAD` library, so statically linked binaries and
/// direct system calls are covered too.
#[derive(Debug, Clone, Default)]
pub struct KernelOwnershipDb {
    claims: BTreeMap<u64, Owner>,
    claim_calls: u64,
}

impl KernelOwnershipDb {
    /// Empty database.
    pub fn new() -> Self {
        KernelOwnershipDb::default()
    }

    /// Records the ownership claimed for an inode by in-namespace root.
    /// Always succeeds for the namespace owner — the real file stays owned by
    /// the invoking user.
    pub fn claim(&mut self, ino: u64, owner: Owner) {
        self.claim_calls += 1;
        self.claims.insert(ino, owner);
    }

    /// Ownership to report inside the namespace: the claim if one exists,
    /// otherwise the fallback (the invoking user displayed as root, matching
    /// the single-ID map).
    pub fn effective(&self, ino: u64, fallback: Owner) -> Owner {
        self.claims.get(&ino).copied().unwrap_or(fallback)
    }

    /// Whether an inode has a recorded claim.
    pub fn has_claim(&self, ino: u64) -> bool {
        self.claims.contains_key(&ino)
    }

    /// Number of inodes with claims.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// True when no claims are recorded.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// Total `chown`-style claim calls handled (for the ablation bench).
    pub fn claim_calls(&self) -> u64 {
        self.claim_calls
    }

    /// Drops the claim for an inode (file deleted).
    pub fn forget(&mut self, ino: u64) {
        self.claims.remove(&ino);
    }

    /// Exports all claims — the interface an image builder would use to write
    /// correct ownership into layer tarballs (§6.2.2 item 2) without reading
    /// the filesystem's (flattened) IDs.
    pub fn export(&self) -> Vec<(u64, Owner)> {
        self.claims.iter().map(|(ino, o)| (*ino, *o)).collect()
    }
}

/// Compares what each §6.2.4 policy requires from the site, for the summary
/// table printed by `repro_figures -- table-policies`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRequirements {
    /// Policy under comparison.
    pub policy_name: &'static str,
    /// Needs a setuid/setcap helper binary.
    pub helper_binary: bool,
    /// Needs `/etc/subuid` + `/etc/subgid` administration.
    pub subid_files: bool,
    /// Needs new kernel functionality (not in Linux as of the paper).
    pub kernel_change: bool,
    /// Supports multiple in-container IDs (what package installs want).
    pub multi_id: bool,
}

/// Requirements rows for: today's Type II helpers, today's Type III single-ID
/// maps, and the three proposed policies.
pub fn policy_requirements() -> Vec<PolicyRequirements> {
    vec![
        PolicyRequirements {
            policy_name: "type2-newuidmap",
            helper_binary: true,
            subid_files: true,
            kernel_change: false,
            multi_id: true,
        },
        PolicyRequirements {
            policy_name: "type3-single-id",
            helper_binary: false,
            subid_files: false,
            kernel_change: false,
            multi_id: false,
        },
        PolicyRequirements {
            policy_name: "root+unique-range",
            helper_binary: false,
            subid_files: false,
            kernel_change: true,
            multi_id: true,
        },
        PolicyRequirements {
            policy_name: "supplementary-identity",
            helper_binary: false,
            subid_files: false,
            kernel_change: true,
            multi_id: false,
        },
        PolicyRequirements {
            policy_name: "kernel-ownership-db",
            helper_binary: false,
            subid_files: false,
            kernel_change: true,
            multi_id: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> Credentials {
        Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000), Gid(2000), Gid(3000)])
    }

    #[test]
    fn unique_ranges_do_not_overlap() {
        let mut alloc = UniqueRangeAllocator::new(200_000, 65_536);
        let a = alloc.grant(Uid(1000), 65_536).unwrap();
        let b = alloc.grant(Uid(1001), 65_536).unwrap();
        assert_ne!(a.outside_start, b.outside_start);
        assert!(alloc.verify_disjoint());
        assert_eq!(alloc.granted_users(), 2);
    }

    #[test]
    fn regrant_is_stable_for_same_user() {
        let mut alloc = UniqueRangeAllocator::new(200_000, 65_536);
        let first = alloc.grant(Uid(1000), 65_536).unwrap();
        let again = alloc.grant(Uid(1000), 4_096).unwrap();
        assert_eq!(first.outside_start, again.outside_start);
        assert_eq!(alloc.granted_users(), 1);
    }

    #[test]
    fn grant_rejects_zero_and_oversized_counts() {
        let mut alloc = UniqueRangeAllocator::new(200_000, 65_536);
        assert_eq!(alloc.grant(Uid(1000), 0).unwrap_err(), Errno::EINVAL);
        assert_eq!(alloc.grant(Uid(1000), 100_000).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn allocator_reports_exhaustion() {
        // A floor near the top of the 32-bit space exhausts after one grant.
        let mut alloc = UniqueRangeAllocator::new(u32::MAX - 70_000, 65_536);
        alloc.grant(Uid(1000), 65_536).unwrap();
        assert_eq!(alloc.grant(Uid(1001), 65_536).unwrap_err(), Errno::ENOSPC);
    }

    #[test]
    fn root_plus_unique_range_looks_like_figure1_without_helpers() {
        let mut alloc = UniqueRangeAllocator::new(200_000, 65_536);
        let map = policy_uid_map(
            MapPolicy::RootPlusUniqueRange { count: 65_536 },
            &alice(),
            &mut alloc,
        )
        .unwrap();
        // Same shape as the Figure 1 / Figure 4 privileged map.
        assert_eq!(map.to_host(0), Some(1000));
        assert_eq!(map.to_host(1), Some(200_000));
        assert_eq!(map.to_host(65_536), Some(265_535));
        assert!(!MapPolicy::RootPlusUniqueRange { count: 65_536 }.needs_privileged_helper());
    }

    #[test]
    fn supplementary_identity_maps_only_the_users_own_groups() {
        let mut alloc = UniqueRangeAllocator::new(200_000, 65_536);
        let map = policy_gid_map(MapPolicy::SupplementaryIdentity, &alice(), &mut alloc).unwrap();
        // Primary group appears as root; supplementary groups identity-map.
        assert_eq!(map.to_host(0), Some(1000));
        assert_eq!(map.to_host(2000), Some(2000));
        assert_eq!(map.to_host(3000), Some(3000));
        // A group the user is not in stays unmapped.
        assert_eq!(map.to_host(4000), None);
        assert_eq!(newly_visible_groups(&alice()), vec![Gid(2000), Gid(3000)]);
    }

    #[test]
    fn single_id_policy_matches_todays_type3() {
        let mut alloc = UniqueRangeAllocator::new(200_000, 65_536);
        let map = policy_uid_map(MapPolicy::SingleId, &alice(), &mut alloc).unwrap();
        assert_eq!(map.mapped_count(), 1);
        assert_eq!(map.to_host(0), Some(1000));
    }

    #[test]
    fn kernel_ownership_db_reports_claims_and_survives_export() {
        let mut db = KernelOwnershipDb::new();
        assert!(db.is_empty());
        db.claim(42, Owner::new(0, 999)); // root:ssh_keys, as the openssh RPM wants
        db.claim(43, Owner::new(100, 65_534));
        assert!(db.has_claim(42));
        assert_eq!(db.effective(42, Owner::ROOT), Owner::new(0, 999));
        assert_eq!(
            db.effective(99, Owner::new(1000, 1000)),
            Owner::new(1000, 1000)
        );
        assert_eq!(db.len(), 2);
        assert_eq!(db.claim_calls(), 2);
        let exported = db.export();
        assert_eq!(exported.len(), 2);
        db.forget(42);
        assert!(!db.has_claim(42));
    }

    #[test]
    fn requirements_table_shows_no_proposal_needs_helpers_or_subid_files() {
        let rows = policy_requirements();
        assert_eq!(rows.len(), 5);
        for row in rows.iter().filter(|r| r.kernel_change) {
            assert!(
                !row.helper_binary,
                "{} should not need helpers",
                row.policy_name
            );
            assert!(
                !row.subid_files,
                "{} should not need subid files",
                row.policy_name
            );
        }
        // Today's Type II is the only one needing both.
        let type2 = &rows[0];
        assert!(type2.helper_binary && type2.subid_files);
    }
}
