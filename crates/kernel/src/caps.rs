//! Linux capabilities (`capabilities(7)`).
//!
//! Only the capabilities relevant to the paper's analysis are modelled. The
//! paper treats "UID 0 inside the namespace" and "holding all capabilities
//! within the namespace" as equivalent (§2.1.1, footnote 5); this module
//! provides the capability sets that make that equivalence concrete.

use std::fmt;

/// The subset of Linux capabilities exercised by container build workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// Make arbitrary changes to file UIDs and GIDs (`chown(2)`).
    CapChown,
    /// Bypass file read/write/execute permission checks.
    CapDacOverride,
    /// Bypass permission checks on operations that normally require the
    /// filesystem UID of the process to match the UID of the file.
    CapFowner,
    /// Make arbitrary manipulations of process GIDs and the supplementary
    /// group list (`setgid(2)`, `setgroups(2)`), and write `gid_map`.
    CapSetgid,
    /// Make arbitrary manipulations of process UIDs and write `uid_map`.
    CapSetuid,
    /// Bind a socket to Internet domain privileged ports (< 1024).
    CapNetBindService,
    /// Create special files using `mknod(2)`.
    CapMknod,
    /// Perform a range of system administration operations (mounts, ...).
    CapSysAdmin,
    /// Use `chroot(2)`.
    CapSysChroot,
    /// Set file capabilities / extended privileged attributes.
    CapSetfcap,
    /// Override resource limits (used by cgroup manipulation).
    CapSysResource,
}

impl Capability {
    /// Every capability modelled, in kernel numbering order.
    pub const ALL: [Capability; 11] = [
        Capability::CapChown,
        Capability::CapDacOverride,
        Capability::CapFowner,
        Capability::CapSetgid,
        Capability::CapSetuid,
        Capability::CapNetBindService,
        Capability::CapMknod,
        Capability::CapSysAdmin,
        Capability::CapSysChroot,
        Capability::CapSetfcap,
        Capability::CapSysResource,
    ];

    /// Bit index used inside [`CapabilitySet`].
    fn bit(self) -> u32 {
        match self {
            Capability::CapChown => 0,
            Capability::CapDacOverride => 1,
            Capability::CapFowner => 2,
            Capability::CapSetgid => 3,
            Capability::CapSetuid => 4,
            Capability::CapNetBindService => 5,
            Capability::CapMknod => 6,
            Capability::CapSysAdmin => 7,
            Capability::CapSysChroot => 8,
            Capability::CapSetfcap => 9,
            Capability::CapSysResource => 10,
        }
    }

    /// Conventional `CAP_*` name.
    pub fn name(self) -> &'static str {
        match self {
            Capability::CapChown => "CAP_CHOWN",
            Capability::CapDacOverride => "CAP_DAC_OVERRIDE",
            Capability::CapFowner => "CAP_FOWNER",
            Capability::CapSetgid => "CAP_SETGID",
            Capability::CapSetuid => "CAP_SETUID",
            Capability::CapNetBindService => "CAP_NET_BIND_SERVICE",
            Capability::CapMknod => "CAP_MKNOD",
            Capability::CapSysAdmin => "CAP_SYS_ADMIN",
            Capability::CapSysChroot => "CAP_SYS_CHROOT",
            Capability::CapSetfcap => "CAP_SETFCAP",
            Capability::CapSysResource => "CAP_SYS_RESOURCE",
        }
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of capabilities, stored as a bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapabilitySet {
    bits: u32,
}

impl CapabilitySet {
    /// The empty set: a fully unprivileged process.
    pub const fn empty() -> Self {
        CapabilitySet { bits: 0 }
    }

    /// The full set, as held by UID 0 or by a process that created a user
    /// namespace (it gains all capabilities *within* that namespace).
    pub fn full() -> Self {
        let mut s = CapabilitySet::empty();
        for c in Capability::ALL {
            s.add(c);
        }
        s
    }

    /// A set containing exactly the given capabilities.
    pub fn of(caps: &[Capability]) -> Self {
        let mut s = CapabilitySet::empty();
        for &c in caps {
            s.add(c);
        }
        s
    }

    /// Adds a capability.
    pub fn add(&mut self, cap: Capability) {
        self.bits |= 1 << cap.bit();
    }

    /// Removes a capability.
    pub fn remove(&mut self, cap: Capability) {
        self.bits &= !(1 << cap.bit());
    }

    /// Membership test.
    pub fn has(&self, cap: Capability) -> bool {
        self.bits & (1 << cap.bit()) != 0
    }

    /// True if no capability is held.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// True if every modelled capability is held.
    pub fn is_full(&self) -> bool {
        *self == CapabilitySet::full()
    }

    /// Drops every capability (as `execve(2)` of a non-setuid binary does for
    /// a process whose effective UID is not 0).
    pub fn clear(&mut self) {
        self.bits = 0;
    }

    /// Iterator over held capabilities.
    pub fn iter(&self) -> impl Iterator<Item = Capability> + '_ {
        Capability::ALL.into_iter().filter(|c| self.has(*c))
    }

    /// Number of capabilities held.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(none)");
        }
        if self.is_full() {
            return f.write_str("(all)");
        }
        let names: Vec<&str> = self.iter().map(|c| c.name()).collect();
        f.write_str(&names.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_nothing() {
        let s = CapabilitySet::empty();
        for c in Capability::ALL {
            assert!(!s.has(c));
        }
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn full_set_has_everything() {
        let s = CapabilitySet::full();
        for c in Capability::ALL {
            assert!(s.has(c));
        }
        assert!(s.is_full());
        assert_eq!(s.len(), Capability::ALL.len());
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut s = CapabilitySet::empty();
        s.add(Capability::CapSetuid);
        assert!(s.has(Capability::CapSetuid));
        assert!(!s.has(Capability::CapSetgid));
        s.remove(Capability::CapSetuid);
        assert!(s.is_empty());
    }

    #[test]
    fn of_builds_exact_set() {
        let s = CapabilitySet::of(&[Capability::CapChown, Capability::CapMknod]);
        assert!(s.has(Capability::CapChown));
        assert!(s.has(Capability::CapMknod));
        assert!(!s.has(Capability::CapSysAdmin));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CapabilitySet::empty().to_string(), "(none)");
        assert_eq!(CapabilitySet::full().to_string(), "(all)");
        let s = CapabilitySet::of(&[Capability::CapSetuid]);
        assert_eq!(s.to_string(), "CAP_SETUID");
    }

    #[test]
    fn clear_drops_all() {
        let mut s = CapabilitySet::full();
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn names_are_cap_prefixed() {
        for c in Capability::ALL {
            assert!(c.name().starts_with("CAP_"), "{}", c.name());
        }
    }
}
