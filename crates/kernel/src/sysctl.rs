//! Kernel tunables governing namespace creation.
//!
//! The paper notes (§2.1, §4.1) that namespace creation is governed by sysctl
//! settings, and that the user-namespace mapping definitions cannot exceed
//! `/proc/sys/user/max_user_namespaces`. RHEL 7.6 was the first RHEL release
//! to fully support user namespaces (October 2018), and earlier RHEL 7
//! releases shipped with `user.max_user_namespaces = 0`.

/// Kernel configuration relevant to low-privilege containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sysctl {
    /// `/proc/sys/user/max_user_namespaces`: maximum number of user
    /// namespaces. Zero disables creation entirely.
    pub max_user_namespaces: u32,
    /// Debian/Ubuntu-style `kernel.unprivileged_userns_clone`: whether an
    /// unprivileged process may create a user namespace at all.
    pub unprivileged_userns_clone: bool,
    /// Kernel version as `(major, minor)`; user namespaces require 3.8+
    /// (paper §3.1), NFS xattr support requires 5.9+ (paper §6.2.1).
    pub kernel_version: (u32, u32),
    /// Whether the overlayfs filesystem may be mounted inside an unprivileged
    /// user namespace (true on modern kernels / RHEL 8).
    pub unprivileged_overlayfs: bool,
    /// Whether cgroup v2 delegation is available for unprivileged users
    /// (needed by crun for unprivileged cgroup control, paper §4.1).
    pub cgroups_v2: bool,
}

impl Sysctl {
    /// A modern kernel (5.x, RHEL 8-era): everything enabled.
    pub fn modern() -> Self {
        Sysctl {
            max_user_namespaces: 128 * 1024,
            unprivileged_userns_clone: true,
            kernel_version: (5, 14),
            unprivileged_overlayfs: true,
            cgroups_v2: true,
        }
    }

    /// RHEL 7.6-era kernel (3.10 with user namespaces back-ported and enabled,
    /// paper §3.1): user namespaces work, overlayfs in userns does not.
    pub fn rhel76() -> Self {
        Sysctl {
            max_user_namespaces: 64 * 1024,
            unprivileged_userns_clone: true,
            kernel_version: (3, 10),
            unprivileged_overlayfs: false,
            cgroups_v2: false,
        }
    }

    /// RHEL 7.5-and-earlier-era kernel: user namespace creation disabled.
    pub fn rhel_pre_76() -> Self {
        Sysctl {
            max_user_namespaces: 0,
            unprivileged_userns_clone: true,
            kernel_version: (3, 10),
            unprivileged_overlayfs: false,
            cgroups_v2: false,
        }
    }

    /// Pre-3.8 kernel: no user namespaces at all (Docker's initial target,
    /// paper §3.1 — Linux 2.6.24).
    pub fn pre_userns() -> Self {
        Sysctl {
            max_user_namespaces: 0,
            unprivileged_userns_clone: false,
            kernel_version: (2, 6),
            unprivileged_overlayfs: false,
            cgroups_v2: false,
        }
    }

    /// True if the kernel has user-namespace support compiled in (≥ 3.8).
    pub fn has_user_namespaces(&self) -> bool {
        self.kernel_version >= (3, 8)
    }

    /// True if the kernel supports xattrs over NFSv4 (≥ 5.9, RFC 8276;
    /// paper §6.2.1).
    pub fn has_nfs_xattrs(&self) -> bool {
        self.kernel_version >= (5, 9)
    }
}

impl Default for Sysctl {
    fn default() -> Self {
        Sysctl::modern()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_kernel_supports_everything() {
        let s = Sysctl::modern();
        assert!(s.has_user_namespaces());
        assert!(s.has_nfs_xattrs());
        assert!(s.unprivileged_overlayfs);
        assert!(s.max_user_namespaces > 0);
    }

    #[test]
    fn rhel76_supports_userns_but_not_nfs_xattrs() {
        let s = Sysctl::rhel76();
        assert!(s.has_user_namespaces());
        assert!(!s.has_nfs_xattrs());
        assert!(s.max_user_namespaces > 0);
    }

    #[test]
    fn pre_76_rhel_disables_userns_by_count() {
        let s = Sysctl::rhel_pre_76();
        assert!(s.has_user_namespaces());
        assert_eq!(s.max_user_namespaces, 0);
    }

    #[test]
    fn ancient_kernel_has_no_userns() {
        let s = Sysctl::pre_userns();
        assert!(!s.has_user_namespaces());
    }

    #[test]
    fn default_is_modern() {
        assert_eq!(Sysctl::default(), Sysctl::modern());
    }
}
