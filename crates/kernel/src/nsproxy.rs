//! The non-user namespace types and the `unshare(2)`/`clone(2)` rules that
//! govern their creation (paper §2.1, footnote about "about a half dozen other
//! types of namespace").
//!
//! The paper's focused discussion covers only the user and mount namespaces,
//! but the mechanism it relies on is general: creating a *user* namespace
//! first is what grants an otherwise-unprivileged process the capabilities
//! (within that namespace) required to create every other namespace type.
//! This module models that rule precisely, because it is the reason a Type III
//! container can get a private mount namespace without any host privilege.

use std::collections::BTreeMap;

use crate::caps::{Capability, CapabilitySet};
use crate::errno::{Errno, KResult};
use crate::userns::UsernsId;

/// The Linux namespace types (`namespaces(7)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NamespaceKind {
    /// Mount namespace (`CLONE_NEWNS`) — the filesystem tree; the namespace
    /// containers care about most (paper §2.1).
    Mount,
    /// UTS namespace (`CLONE_NEWUTS`) — hostname and domain name.
    Uts,
    /// IPC namespace (`CLONE_NEWIPC`) — System V IPC and POSIX message queues.
    Ipc,
    /// PID namespace (`CLONE_NEWPID`) — process ID number space.
    Pid,
    /// Network namespace (`CLONE_NEWNET`) — interfaces, routing, ports.
    Net,
    /// User namespace (`CLONE_NEWUSER`) — UID/GID spaces; the only one an
    /// unprivileged process may create on its own.
    User,
    /// Cgroup namespace (`CLONE_NEWCGROUP`) — cgroup root directory view.
    Cgroup,
    /// Time namespace (`CLONE_NEWTIME`) — boot/monotonic clock offsets.
    Time,
}

impl NamespaceKind {
    /// All namespace kinds, in `/proc/<pid>/ns` listing order.
    pub const ALL: [NamespaceKind; 8] = [
        NamespaceKind::Mount,
        NamespaceKind::Uts,
        NamespaceKind::Ipc,
        NamespaceKind::Pid,
        NamespaceKind::Net,
        NamespaceKind::User,
        NamespaceKind::Cgroup,
        NamespaceKind::Time,
    ];

    /// The `CLONE_NEW*` flag value used by `unshare(2)`/`clone(2)`.
    pub fn clone_flag(self) -> u64 {
        match self {
            NamespaceKind::Mount => 0x0002_0000,  // CLONE_NEWNS
            NamespaceKind::Uts => 0x0400_0000,    // CLONE_NEWUTS
            NamespaceKind::Ipc => 0x0800_0000,    // CLONE_NEWIPC
            NamespaceKind::User => 0x1000_0000,   // CLONE_NEWUSER
            NamespaceKind::Pid => 0x2000_0000,    // CLONE_NEWPID
            NamespaceKind::Cgroup => 0x0200_0000, // CLONE_NEWCGROUP
            NamespaceKind::Net => 0x4000_0000,    // CLONE_NEWNET
            NamespaceKind::Time => 0x0000_0080,   // CLONE_NEWTIME
        }
    }

    /// The `/proc/<pid>/ns/<name>` entry name.
    pub fn proc_name(self) -> &'static str {
        match self {
            NamespaceKind::Mount => "mnt",
            NamespaceKind::Uts => "uts",
            NamespaceKind::Ipc => "ipc",
            NamespaceKind::Pid => "pid",
            NamespaceKind::Net => "net",
            NamespaceKind::User => "user",
            NamespaceKind::Cgroup => "cgroup",
            NamespaceKind::Time => "time",
        }
    }

    /// Whether creating this kind of namespace requires `CAP_SYS_ADMIN` in the
    /// *owning user namespace*. Only the user namespace itself is exempt —
    /// that exemption is the entire foundation of Type III containers.
    pub fn requires_sys_admin(self) -> bool {
        !matches!(self, NamespaceKind::User)
    }

    /// The minimum kernel version `(major, minor)` providing this namespace
    /// type.
    pub fn min_kernel(self) -> (u32, u32) {
        match self {
            NamespaceKind::Mount => (2, 4),
            NamespaceKind::Uts => (2, 6),
            NamespaceKind::Ipc => (2, 6),
            NamespaceKind::Pid => (2, 6),
            NamespaceKind::Net => (2, 6),
            NamespaceKind::User => (3, 8),
            NamespaceKind::Cgroup => (4, 6),
            NamespaceKind::Time => (5, 6),
        }
    }
}

impl std::fmt::Display for NamespaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.proc_name())
    }
}

/// A single (non-user) namespace instance. Instances are cheap identity
/// records: the behaviour that matters for the paper lives in the mount
/// namespace (modelled by the VFS crate) and the user namespace
/// ([`crate::userns::UserNamespace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsInstance {
    /// Which kind of namespace this is.
    pub kind: NamespaceKind,
    /// Instance number; 0 is the initial namespace of that kind.
    pub serial: u64,
    /// The user namespace that owns this namespace (determines which
    /// capabilities govern operations inside it).
    pub owner_userns: UsernsId,
}

impl NsInstance {
    /// The initial namespace of a kind, owned by the initial user namespace.
    pub fn initial(kind: NamespaceKind) -> Self {
        NsInstance {
            kind,
            serial: 0,
            owner_userns: UsernsId::INIT,
        }
    }

    /// True for the initial (boot-time) namespace of this kind.
    pub fn is_initial(&self) -> bool {
        self.serial == 0
    }

    /// Renders the `/proc/<pid>/ns/<name>` symlink target,
    /// e.g. `mnt:[4026531840]`.
    pub fn proc_link(&self) -> String {
        // The real kernel numbers namespace inodes from a fixed base; we keep
        // the same look so transcripts read naturally.
        format!(
            "{}:[{}]",
            self.kind.proc_name(),
            4_026_531_840u64 + self.serial
        )
    }
}

/// The set of namespaces a process belongs to — the kernel's `nsproxy` plus
/// the user namespace reference kept on the credentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsProxy {
    members: BTreeMap<NamespaceKind, NsInstance>,
}

impl NsProxy {
    /// The host set: the initial namespace of every kind.
    pub fn host() -> Self {
        let mut members = BTreeMap::new();
        for kind in NamespaceKind::ALL {
            members.insert(kind, NsInstance::initial(kind));
        }
        NsProxy { members }
    }

    /// The namespace of a given kind this process belongs to.
    pub fn get(&self, kind: NamespaceKind) -> NsInstance {
        self.members[&kind]
    }

    /// Replaces membership for one kind (used by unshare / setns).
    pub fn set(&mut self, instance: NsInstance) {
        self.members.insert(instance.kind, instance);
    }

    /// The kinds for which this process is *not* in the initial namespace —
    /// i.e. how "containerized" the process is.
    pub fn non_initial(&self) -> Vec<NamespaceKind> {
        self.members
            .values()
            .filter(|ns| !ns.is_initial())
            .map(|ns| ns.kind)
            .collect()
    }

    /// Renders the `/proc/<pid>/ns` directory listing.
    pub fn render_proc_ns(&self) -> String {
        let mut out = String::new();
        for ns in self.members.values() {
            out.push_str(&ns.proc_link());
            out.push('\n');
        }
        out
    }
}

impl Default for NsProxy {
    fn default() -> Self {
        NsProxy::host()
    }
}

/// Allocates namespace instances with unique serial numbers; one per kernel.
#[derive(Debug, Clone, Default)]
pub struct NsAllocator {
    next_serial: u64,
}

impl NsAllocator {
    /// Creates an allocator whose first allocation is serial 1 (serial 0 is
    /// the initial namespace).
    pub fn new() -> Self {
        NsAllocator { next_serial: 1 }
    }

    /// Allocates a fresh namespace instance of `kind` owned by `owner`.
    pub fn allocate(&mut self, kind: NamespaceKind, owner: UsernsId) -> NsInstance {
        let serial = self.next_serial;
        self.next_serial += 1;
        NsInstance {
            kind,
            serial,
            owner_userns: owner,
        }
    }
}

/// The outcome of an `unshare(2)` request for a set of namespace kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnshareOutcome {
    /// Kinds successfully unshared, in request order.
    pub created: Vec<NsInstance>,
}

/// Performs `unshare(2)` of the requested (non-user) namespace kinds.
///
/// The permission rule (`namespaces(7)`): each kind other than the user
/// namespace requires `CAP_SYS_ADMIN` *in the user namespace that will own the
/// new namespace*. A process that has just created (or entered) its own user
/// namespace holds full capabilities there, so the combination
/// `CLONE_NEWUSER | CLONE_NEWNS` works for a completely unprivileged user —
/// this is the Type III foundation. Without a user namespace, the caller's
/// capabilities in the initial namespace are what count (the Type I case).
pub fn unshare(
    proxy: &mut NsProxy,
    alloc: &mut NsAllocator,
    kinds: &[NamespaceKind],
    caps_in_owner_userns: &CapabilitySet,
    owner_userns: UsernsId,
    kernel_version: (u32, u32),
) -> KResult<UnshareOutcome> {
    // Validate everything before mutating anything: unshare(2) is atomic.
    for kind in kinds {
        if kernel_version < kind.min_kernel() {
            return Err(Errno::EINVAL);
        }
        if *kind == NamespaceKind::User {
            // User namespace creation is handled by Kernel::unshare_userns;
            // requesting it here is a usage error in the model.
            return Err(Errno::EINVAL);
        }
        if kind.requires_sys_admin() && !caps_in_owner_userns.has(Capability::CapSysAdmin) {
            return Err(Errno::EPERM);
        }
    }
    let mut created = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let instance = alloc.allocate(*kind, owner_userns);
        proxy.set(instance);
        created.push(instance);
    }
    Ok(UnshareOutcome { created })
}

/// The namespace kinds a typical container runtime unshares for a build
/// container. Network and time stay shared with the host: builds need the
/// host's network to reach package repositories and registries.
pub fn build_container_kinds() -> Vec<NamespaceKind> {
    vec![
        NamespaceKind::Mount,
        NamespaceKind::Uts,
        NamespaceKind::Ipc,
        NamespaceKind::Pid,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_caps() -> CapabilitySet {
        CapabilitySet::full()
    }

    #[test]
    fn host_proxy_is_all_initial() {
        let proxy = NsProxy::host();
        assert!(proxy.non_initial().is_empty());
        for kind in NamespaceKind::ALL {
            assert!(proxy.get(kind).is_initial());
            assert_eq!(proxy.get(kind).owner_userns, UsernsId::INIT);
        }
    }

    #[test]
    fn unprivileged_process_cannot_unshare_mount_ns_alone() {
        // Without a user namespace, CAP_SYS_ADMIN in the initial namespace is
        // required — the unprivileged HPC user does not have it.
        let mut proxy = NsProxy::host();
        let mut alloc = NsAllocator::new();
        let err = unshare(
            &mut proxy,
            &mut alloc,
            &[NamespaceKind::Mount],
            &CapabilitySet::empty(),
            UsernsId::INIT,
            (5, 14),
        )
        .unwrap_err();
        assert_eq!(err, Errno::EPERM);
        assert!(proxy.non_initial().is_empty());
    }

    #[test]
    fn userns_first_then_mount_ns_works_unprivileged() {
        // After creating a user namespace the process holds full caps *in that
        // namespace*, which is what unshare checks for the namespaces it will
        // own — the Type III mechanism.
        let mut proxy = NsProxy::host();
        let mut alloc = NsAllocator::new();
        let child_userns = UsernsId(1);
        let out = unshare(
            &mut proxy,
            &mut alloc,
            &build_container_kinds(),
            &full_caps(),
            child_userns,
            (5, 14),
        )
        .unwrap();
        assert_eq!(out.created.len(), 4);
        assert_eq!(proxy.get(NamespaceKind::Mount).owner_userns, child_userns);
        assert!(!proxy.get(NamespaceKind::Mount).is_initial());
        // Network stays shared with the host.
        assert!(proxy.get(NamespaceKind::Net).is_initial());
    }

    #[test]
    fn unshare_is_atomic_on_failure() {
        let mut proxy = NsProxy::host();
        let mut alloc = NsAllocator::new();
        // Time namespaces need kernel 5.6; on a 3.10 kernel the whole request
        // fails and nothing is created.
        let err = unshare(
            &mut proxy,
            &mut alloc,
            &[NamespaceKind::Mount, NamespaceKind::Time],
            &full_caps(),
            UsernsId(1),
            (3, 10),
        )
        .unwrap_err();
        assert_eq!(err, Errno::EINVAL);
        assert!(proxy.non_initial().is_empty());
    }

    #[test]
    fn user_kind_is_rejected_here() {
        let mut proxy = NsProxy::host();
        let mut alloc = NsAllocator::new();
        let err = unshare(
            &mut proxy,
            &mut alloc,
            &[NamespaceKind::User],
            &full_caps(),
            UsernsId::INIT,
            (5, 14),
        )
        .unwrap_err();
        assert_eq!(err, Errno::EINVAL);
    }

    #[test]
    fn clone_flags_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in NamespaceKind::ALL {
            assert!(seen.insert(kind.clone_flag()), "duplicate flag for {kind}");
        }
    }

    #[test]
    fn proc_ns_listing_has_eight_entries() {
        let proxy = NsProxy::host();
        let listing = proxy.render_proc_ns();
        assert_eq!(listing.lines().count(), 8);
        assert!(listing.contains("user:["));
        assert!(listing.contains("mnt:["));
    }

    #[test]
    fn serials_increase_monotonically() {
        let mut alloc = NsAllocator::new();
        let a = alloc.allocate(NamespaceKind::Mount, UsernsId(1));
        let b = alloc.allocate(NamespaceKind::Pid, UsernsId(1));
        assert!(b.serial > a.serial);
        assert_ne!(a.proc_link(), b.proc_link());
    }
}
