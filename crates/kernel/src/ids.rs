//! User and group identifiers.
//!
//! The simulated kernel is concerned only with numeric IDs in the range
//! `0..=u32::MAX`, exactly like Linux (paper §2.1.1, footnote 4). Translation
//! to user and group *names* is a user-space operation performed by the
//! distribution layer (`/etc/passwd`, `/etc/group`).

use std::fmt;

/// The "overflow" UID/GID, reported for IDs that have no mapping in the
/// current user namespace. Shown by `ls(1)` as `nobody` / `nogroup`.
pub const OVERFLOW_ID: u32 = 65_534;

/// Numeric user ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

/// Numeric group ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);
    /// The overflow UID (`nobody`).
    pub const NOBODY: Uid = Uid(OVERFLOW_ID);

    /// Returns true for UID 0.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }

    /// Raw numeric value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl Gid {
    /// The root group.
    pub const ROOT: Gid = Gid(0);
    /// The overflow GID (`nogroup`).
    pub const NOGROUP: Gid = Gid(OVERFLOW_ID);

    /// Returns true for GID 0.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }

    /// Raw numeric value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Uid {
    fn from(v: u32) -> Self {
        Uid(v)
    }
}

impl From<u32> for Gid {
    fn from(v: u32) -> Self {
        Gid(v)
    }
}

/// An owner pair, as stored on every inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Owner {
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
}

impl Owner {
    /// `root:root`.
    pub const ROOT: Owner = Owner {
        uid: Uid::ROOT,
        gid: Gid::ROOT,
    };

    /// Construct from raw numeric IDs.
    pub fn new(uid: u32, gid: u32) -> Self {
        Owner {
            uid: Uid(uid),
            gid: Gid(gid),
        }
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.uid, self.gid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_zero() {
        assert!(Uid::ROOT.is_root());
        assert!(Gid::ROOT.is_root());
        assert!(!Uid(1000).is_root());
    }

    #[test]
    fn overflow_ids() {
        assert_eq!(Uid::NOBODY.raw(), 65_534);
        assert_eq!(Gid::NOGROUP.raw(), 65_534);
    }

    #[test]
    fn display_is_numeric() {
        assert_eq!(Uid(1000).to_string(), "1000");
        assert_eq!(Gid(0).to_string(), "0");
        assert_eq!(Owner::new(1000, 1000).to_string(), "1000:1000");
    }

    #[test]
    fn conversions() {
        let u: Uid = 42u32.into();
        let g: Gid = 7u32.into();
        assert_eq!(u, Uid(42));
        assert_eq!(g, Gid(7));
    }

    #[test]
    fn owner_root_constant() {
        assert_eq!(Owner::ROOT, Owner::new(0, 0));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Uid(5) < Uid(10));
        assert!(Gid(100) > Gid(0));
    }
}
