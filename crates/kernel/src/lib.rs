//! `hpcc-kernel`: a simulated Linux kernel substrate for the SC 2021 paper
//! *Minimizing Privilege for Building HPC Containers*.
//!
//! This crate models exactly the kernel facilities the paper reasons about:
//!
//! * numeric UIDs/GIDs and the overflow ("nobody") IDs ([`ids`]);
//! * capabilities ([`caps`]);
//! * process credentials and the credential-changing system calls
//!   (`setuid`, `setresgid`, `setgroups`, …) with user-namespace ID
//!   translation ([`creds`]);
//! * UID/GID maps and the four mapping cases of paper §2.1.1 ([`idmap`]);
//! * user namespaces, including the rules distinguishing privileged (Type II)
//!   from unprivileged (Type III) map setup ([`userns`]);
//! * sysctl knobs that gate namespace availability ([`sysctl`]);
//! * a per-node kernel object holding namespaces and processes ([`process`]);
//! * the non-user namespace types and their `unshare(2)` permission rules
//!   ([`nsproxy`]);
//! * the prospective kernel ID-map mechanisms of paper §6.2.4 ([`idpolicy`]).
//!
//! Nothing in this crate touches the real host kernel; it is a faithful,
//! deterministic model used by the VFS, container runtimes, and build tools
//! in the sibling crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod caps;
pub mod creds;
pub mod errno;
pub mod idmap;
pub mod idpolicy;
pub mod ids;
pub mod nsproxy;
pub mod process;
pub mod sysctl;
pub mod userns;

pub use caps::{Capability, CapabilitySet};
pub use creds::Credentials;
pub use errno::{Errno, KResult};
pub use idmap::{IdMap, IdMapCase, IdMapEntry};
pub use idpolicy::{KernelOwnershipDb, MapPolicy, UniqueRangeAllocator};
pub use ids::{Gid, Owner, Uid, OVERFLOW_ID};
pub use nsproxy::{NamespaceKind, NsAllocator, NsInstance, NsProxy};
pub use process::{Kernel, Pid, Process};
pub use sysctl::Sysctl;
pub use userns::{MapOrigin, SetgroupsPolicy, UserNamespace, UsernsId};

// The property-based suite runs against the offline `proptest` drop-in in
// crates/proptest-shim (a path dev-dependency, so no registry is needed):
// `cargo test --features proptest` executes it everywhere, and CI runs that
// as a matrix leg. Swap the path dependency for crates.io `proptest = "1"`
// to regain shrinking; test sources need no changes.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip property: any in-namespace ID that maps to a host ID
        /// must map back to the same in-namespace ID (the map is one-to-one,
        /// paper §2.1.1: "there is no squashing").
        #[test]
        fn idmap_roundtrip(invoker in 1u32..100_000, sub_start in 100_000u32..1_000_000,
                           count in 1u32..200_000, probe in 0u32..300_000) {
            let map = IdMap::privileged_build(invoker, sub_start, count);
            if let Some(host) = map.to_host(probe) {
                prop_assert_eq!(map.to_namespace(host), Some(probe));
            }
            if let Some(inside) = map.to_namespace(probe) {
                prop_assert_eq!(map.to_host(inside), Some(probe));
            }
        }

        /// The procfs rendering of a valid map always parses back to the same
        /// map.
        #[test]
        fn procfs_roundtrip(invoker in 1u32..100_000, sub_start in 200_000u32..1_000_000,
                            count in 1u32..100_000) {
            let map = IdMap::privileged_build(invoker, sub_start, count);
            let parsed = IdMap::parse_procfs(&map.render_procfs()).unwrap();
            prop_assert_eq!(parsed, map);
        }

        /// An unprivileged single-ID map gives a process exactly the same
        /// access as on the host: every in-namespace ID other than the mapped
        /// one is invalid (paper §2.1.3).
        #[test]
        fn single_map_is_single(host_uid in 1u32..u32::MAX, probe in 1u32..u32::MAX) {
            let map = IdMap::single(0, host_uid);
            prop_assert_eq!(map.to_host(0), Some(host_uid));
            if probe != 0 {
                prop_assert_eq!(map.to_host(probe), None);
            }
        }

        /// Credentials of an unprivileged user never gain capabilities from
        /// failed credential syscalls.
        #[test]
        fn failed_syscalls_do_not_escalate(uid in 1u32..65_000, target in 0u32..65_000) {
            let mut creds = Credentials::unprivileged_user(Uid(uid), Gid(uid), vec![Gid(uid)]);
            let host = UserNamespace::initial();
            let before = creds.clone();
            if uid != target {
                let _ = creds::sys_seteuid(&mut creds, &host, Uid(target));
                let _ = creds::sys_setegid(&mut creds, &host, Gid(target));
                let _ = creds::sys_setgroups(&mut creds, &host, &[Gid(target)]);
                prop_assert!(creds.caps.is_empty());
                prop_assert_eq!(creds.euid, before.euid);
            }
        }

        /// The §6.2.4 unique-range allocator never hands overlapping host
        /// ranges to different users, and regrants are stable per user —
        /// the invariants sysadmins must enforce by hand with `/etc/subuid`.
        #[test]
        fn unique_range_allocator_disjoint(users in proptest::collection::vec(1u32..50_000, 1..40),
                                            count in 1u32..65_536) {
            let mut alloc = idpolicy::UniqueRangeAllocator::new(200_000, 65_536);
            let mut first_grant = std::collections::HashMap::new();
            for u in &users {
                let grant = alloc.grant(Uid(*u), count).unwrap();
                let entry = first_grant.entry(*u).or_insert(grant.outside_start);
                prop_assert_eq!(*entry, grant.outside_start);
            }
            prop_assert!(alloc.verify_disjoint());
        }

        /// The root+unique-range policy always produces a map with the same
        /// shape as the Figure 1 privileged map: in-namespace 0 is the invoker
        /// and 1..=count is backed by the unique range, one-to-one.
        #[test]
        fn policy_map_shape(uid in 1u32..60_000, count in 1u32..65_536, probe in 1u32..65_536) {
            let creds = Credentials::unprivileged_user(Uid(uid), Gid(uid), vec![Gid(uid)]);
            let mut alloc = idpolicy::UniqueRangeAllocator::new(200_000, 65_536);
            let map = idpolicy::policy_uid_map(
                idpolicy::MapPolicy::RootPlusUniqueRange { count }, &creds, &mut alloc).unwrap();
            prop_assert_eq!(map.to_host(0), Some(uid));
            if probe <= count {
                let host = map.to_host(probe).unwrap();
                prop_assert_eq!(map.to_namespace(host), Some(probe));
                prop_assert!(host >= 200_000);
            }
        }
    }
}
