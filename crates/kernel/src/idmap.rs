//! UID/GID maps for user namespaces (paper §2.1.1, Figures 1, 4, 5).
//!
//! A map is a set of one-to-one range correspondences between IDs *inside* a
//! user namespace and IDs *outside* it (on the host, in our two-level model).
//! Host IDs are what the kernel uses for access control; namespace IDs are
//! aliases (paper §2.1.1).

use crate::errno::{Errno, KResult};

/// One line of `/proc/<pid>/uid_map` or `gid_map`:
/// `inside_start  outside_start  count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdMapEntry {
    /// First ID inside the namespace.
    pub inside_start: u32,
    /// First ID outside the namespace (host ID in the two-level model).
    pub outside_start: u32,
    /// Number of consecutive IDs mapped.
    pub count: u32,
}

impl IdMapEntry {
    /// Creates a new entry; `count` must be non-zero.
    pub fn new(inside_start: u32, outside_start: u32, count: u32) -> Self {
        IdMapEntry {
            inside_start,
            outside_start,
            count,
        }
    }

    /// True if `inside` falls within this entry's inside range.
    pub fn contains_inside(&self, inside: u32) -> bool {
        inside >= self.inside_start && (inside - self.inside_start) < self.count
    }

    /// True if `outside` falls within this entry's outside range.
    pub fn contains_outside(&self, outside: u32) -> bool {
        outside >= self.outside_start && (outside - self.outside_start) < self.count
    }

    fn inside_end(&self) -> u64 {
        self.inside_start as u64 + self.count as u64
    }

    fn outside_end(&self) -> u64 {
        self.outside_start as u64 + self.count as u64
    }
}

/// A full UID or GID map: an ordered list of non-overlapping entries.
///
/// Linux limits maps to 340 lines; we keep the (older, simpler) limit of five
/// lines per map configurable via [`IdMap::MAX_ENTRIES`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdMap {
    entries: Vec<IdMapEntry>,
}

impl IdMap {
    /// Maximum number of lines accepted when writing a map (Linux ≥ 4.15
    /// accepts 340).
    pub const MAX_ENTRIES: usize = 340;

    /// An empty (unwritten) map. Until a map is written, no IDs are valid in
    /// the namespace and every translation yields the overflow ID.
    pub fn empty() -> Self {
        IdMap {
            entries: Vec::new(),
        }
    }

    /// The identity map used by the initial namespace: `0 0 4294967295`.
    pub fn identity() -> Self {
        IdMap {
            entries: vec![IdMapEntry::new(0, 0, u32::MAX)],
        }
    }

    /// A single-ID map, the only kind an unprivileged process may establish
    /// (paper §2.1.3): `inside  outside  1`.
    pub fn single(inside: u32, outside: u32) -> Self {
        IdMap {
            entries: vec![IdMapEntry::new(inside, outside, 1)],
        }
    }

    /// A typical privileged container-build map (paper Figure 1 / Figure 4):
    /// the invoking host user mapped to in-namespace root, followed by a
    /// subordinate range mapped to in-namespace IDs `1..=count`.
    pub fn privileged_build(invoker_host_id: u32, sub_start: u32, sub_count: u32) -> Self {
        IdMap {
            entries: vec![
                IdMapEntry::new(0, invoker_host_id, 1),
                IdMapEntry::new(1, sub_start, sub_count),
            ],
        }
    }

    /// Builds a map from entries, validating them as the kernel would on a
    /// `uid_map` write: non-empty, bounded, non-overlapping on both sides, no
    /// arithmetic overflow past 2^32.
    pub fn from_entries(entries: Vec<IdMapEntry>) -> KResult<Self> {
        if entries.is_empty() || entries.len() > Self::MAX_ENTRIES {
            return Err(Errno::EINVAL);
        }
        for e in &entries {
            if e.count == 0 {
                return Err(Errno::EINVAL);
            }
            if e.inside_end() > u32::MAX as u64 + 1 || e.outside_end() > u32::MAX as u64 + 1 {
                return Err(Errno::EINVAL);
            }
        }
        // Check for overlaps on either side.
        for (i, a) in entries.iter().enumerate() {
            for b in entries.iter().skip(i + 1) {
                let inside_overlap = a.inside_start < b.inside_end() as u32
                    && b.inside_start < a.inside_end() as u32;
                let outside_overlap = a.outside_start < b.outside_end() as u32
                    && b.outside_start < a.outside_end() as u32;
                if inside_overlap || outside_overlap {
                    return Err(Errno::EINVAL);
                }
            }
        }
        Ok(IdMap { entries })
    }

    /// The raw entries.
    pub fn entries(&self) -> &[IdMapEntry] {
        &self.entries
    }

    /// True if the map has been written.
    pub fn is_written(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Total number of IDs mapped.
    pub fn mapped_count(&self) -> u64 {
        self.entries.iter().map(|e| e.count as u64).sum()
    }

    /// Translates an in-namespace ID to a host ID. `None` if unmapped
    /// (paper §2.1.1 case 4 as seen from inside).
    pub fn to_host(&self, inside: u32) -> Option<u32> {
        for e in &self.entries {
            if e.contains_inside(inside) {
                return Some(e.outside_start + (inside - e.inside_start));
            }
        }
        None
    }

    /// Translates a host ID to an in-namespace ID. `None` if unmapped
    /// (paper §2.1.1 case 3: valid but not referable inside; displayed as
    /// `nobody`/`nogroup`).
    pub fn to_namespace(&self, outside: u32) -> Option<u32> {
        for e in &self.entries {
            if e.contains_outside(outside) {
                return Some(e.inside_start + (outside - e.outside_start));
            }
        }
        None
    }

    /// Translation used when *displaying* a host ID inside the namespace:
    /// unmapped IDs become the overflow ID 65534 (`nobody`).
    pub fn to_namespace_or_overflow(&self, outside: u32) -> u32 {
        self.to_namespace(outside)
            .unwrap_or(crate::ids::OVERFLOW_ID)
    }

    /// Renders the map in `/proc/<pid>/uid_map` format, e.g. (Figure 1):
    ///
    /// ```text
    /// 0    1000      1
    /// 1  200000  65536
    /// ```
    pub fn render_procfs(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{:>10} {:>10} {:>10}\n",
                e.inside_start, e.outside_start, e.count
            ));
        }
        out
    }

    /// Parses `/proc/<pid>/uid_map`-style text.
    pub fn parse_procfs(text: &str) -> KResult<Self> {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(Errno::EINVAL);
            }
            let inside = fields[0].parse::<u32>().map_err(|_| Errno::EINVAL)?;
            let outside = fields[1].parse::<u32>().map_err(|_| Errno::EINVAL)?;
            let count = fields[2].parse::<u32>().map_err(|_| Errno::EINVAL)?;
            entries.push(IdMapEntry::new(inside, outside, count));
        }
        IdMap::from_entries(entries)
    }
}

/// Classification of a (host ID, namespace) pair per the paper's four cases
/// (§2.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdMapCase {
    /// In use on the host and mapped: namespace ID is an alias of the host ID.
    InUseMapped,
    /// Not in use on the host but mapped: identical to case 1 except no host
    /// user/group name exists for it.
    UnusedMapped,
    /// In use on the host but unmapped: valid inside the namespace but cannot
    /// be referred to; displayed as `nobody`/`nogroup`.
    InUseUnmapped,
    /// Not in use on the host and unmapped: unavailable inside the namespace.
    UnusedUnmapped,
}

/// Classifies a host ID with respect to a map and a predicate describing
/// whether the host ID is "in use" (has a passwd/group entry or owns files).
pub fn classify_host_id(map: &IdMap, host_id: u32, in_use_on_host: bool) -> IdMapCase {
    match (in_use_on_host, map.to_namespace(host_id).is_some()) {
        (true, true) => IdMapCase::InUseMapped,
        (false, true) => IdMapCase::UnusedMapped,
        (true, false) => IdMapCase::InUseUnmapped,
        (false, false) => IdMapCase::UnusedUnmapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_map() -> IdMap {
        // Figure 1: alice (host UID 1000) runs a privileged-map container:
        //   0    1000      1
        //   1  200000  65536
        IdMap::privileged_build(1000, 200_000, 65_536)
    }

    #[test]
    fn identity_maps_everything() {
        let m = IdMap::identity();
        assert_eq!(m.to_host(0), Some(0));
        assert_eq!(m.to_host(1000), Some(1000));
        assert_eq!(m.to_namespace(4_000_000), Some(4_000_000));
    }

    #[test]
    fn figure1_root_aliases_invoker() {
        let m = figure1_map();
        assert_eq!(m.to_host(0), Some(1000));
        assert_eq!(m.to_namespace(1000), Some(0));
    }

    #[test]
    fn figure1_subordinate_range() {
        let m = figure1_map();
        // Container UID 1 is host UID 200000.
        assert_eq!(m.to_host(1), Some(200_000));
        // Container UID 65536 is host UID 265535 (last mapped).
        assert_eq!(m.to_host(65_536), Some(265_535));
        // Container UID 65537 is unmapped.
        assert_eq!(m.to_host(65_537), None);
        // Bob's range (300000+) is not mapped into Alice's container.
        assert_eq!(m.to_namespace(300_000), None);
    }

    #[test]
    fn figure1_procfs_rendering_roundtrips() {
        let m = figure1_map();
        let text = m.render_procfs();
        assert!(text.contains("1000"));
        assert!(text.contains("200000"));
        assert!(text.contains("65536"));
        let parsed = IdMap::parse_procfs(&text).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn figure4_podman_map() {
        // Figure 4: `podman unshare cat /proc/self/uid_map`
        //   0 1234 1
        //   1 200000 65536
        let m = IdMap::privileged_build(1234, 200_000, 65_536);
        assert_eq!(m.to_host(0), Some(1234));
        assert_eq!(m.to_host(25), Some(200_024));
        assert_eq!(m.mapped_count(), 65_537);
    }

    #[test]
    fn figure5_unprivileged_single_map() {
        // Figure 5: `0 1234 1` — one UID only.
        let m = IdMap::single(0, 1234);
        assert_eq!(m.to_host(0), Some(1234));
        assert_eq!(m.to_host(1), None);
        assert_eq!(m.to_namespace(1234), Some(0));
        assert_eq!(m.to_namespace_or_overflow(0), crate::ids::OVERFLOW_ID);
        assert_eq!(m.mapped_count(), 1);
    }

    #[test]
    fn unwritten_map_translates_nothing() {
        let m = IdMap::empty();
        assert!(!m.is_written());
        assert_eq!(m.to_host(0), None);
        assert_eq!(m.to_namespace(0), None);
    }

    #[test]
    fn overlapping_entries_rejected() {
        // Inside ranges overlap.
        let err = IdMap::from_entries(vec![
            IdMapEntry::new(0, 1000, 10),
            IdMapEntry::new(5, 200_000, 10),
        ])
        .unwrap_err();
        assert_eq!(err, Errno::EINVAL);
        // Outside ranges overlap.
        let err = IdMap::from_entries(vec![
            IdMapEntry::new(0, 1000, 10),
            IdMapEntry::new(100, 1005, 10),
        ])
        .unwrap_err();
        assert_eq!(err, Errno::EINVAL);
    }

    #[test]
    fn zero_count_rejected() {
        let err = IdMap::from_entries(vec![IdMapEntry::new(0, 1000, 0)]).unwrap_err();
        assert_eq!(err, Errno::EINVAL);
    }

    #[test]
    fn empty_entry_list_rejected() {
        assert_eq!(IdMap::from_entries(vec![]).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn range_overflow_rejected() {
        let err = IdMap::from_entries(vec![IdMapEntry::new(u32::MAX - 1, 0, 10)]).unwrap_err();
        assert_eq!(err, Errno::EINVAL);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(IdMap::parse_procfs("0 1000").is_err());
        assert!(IdMap::parse_procfs("a b c").is_err());
    }

    #[test]
    fn four_cases_of_section_211() {
        let m = figure1_map();
        // Host UID 1000 (alice, in use) is mapped -> case 1.
        assert_eq!(classify_host_id(&m, 1000, true), IdMapCase::InUseMapped);
        // Host UID 200005 (unused) is mapped -> case 2.
        assert_eq!(
            classify_host_id(&m, 200_005, false),
            IdMapCase::UnusedMapped
        );
        // Host UID 1001 (bob, in use) is not mapped -> case 3.
        assert_eq!(classify_host_id(&m, 1001, true), IdMapCase::InUseUnmapped);
        // Host UID 4000000 (unused) not mapped -> case 4.
        assert_eq!(
            classify_host_id(&m, 4_000_000, false),
            IdMapCase::UnusedUnmapped
        );
    }
}
