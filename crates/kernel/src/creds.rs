//! Process credentials and the credential-changing system calls.
//!
//! Credentials store **host** IDs — exactly as the real kernel stores
//! `kuid_t`/`kgid_t` — because host IDs are what access control uses (paper
//! §2.1.1). System calls accept *in-namespace* IDs and translate them through
//! the calling process's user namespace, returning `EINVAL` for IDs with no
//! mapping; this is precisely what produces the `setegid 65534 failed`
//! transcript of Figure 3.

use crate::caps::{Capability, CapabilitySet};
use crate::errno::{Errno, KResult};
use crate::ids::{Gid, Uid};
use crate::userns::{SetgroupsPolicy, UserNamespace};

/// The credential set of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Real user ID (host value).
    pub ruid: Uid,
    /// Effective user ID (host value).
    pub euid: Uid,
    /// Saved set-user ID (host value).
    pub suid: Uid,
    /// Real group ID (host value).
    pub rgid: Gid,
    /// Effective group ID (host value).
    pub egid: Gid,
    /// Saved set-group ID (host value).
    pub sgid: Gid,
    /// Supplementary groups (host values).
    pub supplementary: Vec<Gid>,
    /// Capabilities, interpreted relative to the user namespace the process
    /// belongs to.
    pub caps: CapabilitySet,
}

impl Credentials {
    /// Host root: UID 0, GID 0, all capabilities.
    pub fn host_root() -> Self {
        Credentials {
            ruid: Uid::ROOT,
            euid: Uid::ROOT,
            suid: Uid::ROOT,
            rgid: Gid::ROOT,
            egid: Gid::ROOT,
            sgid: Gid::ROOT,
            supplementary: vec![Gid::ROOT],
            caps: CapabilitySet::full(),
        }
    }

    /// An ordinary unprivileged user, as on every HPC login node.
    pub fn unprivileged_user(uid: Uid, gid: Gid, supplementary: Vec<Gid>) -> Self {
        Credentials {
            ruid: uid,
            euid: uid,
            suid: uid,
            rgid: gid,
            egid: gid,
            sgid: gid,
            supplementary,
            caps: CapabilitySet::empty(),
        }
    }

    /// The credentials a process has after `execve(2)` transfers control into
    /// a freshly created user namespace it owns: same host IDs, but all
    /// capabilities *within that namespace* (paper §2.1.1, footnote 5).
    pub fn entered_own_namespace(&self) -> Self {
        let mut c = self.clone();
        c.caps = CapabilitySet::full();
        c
    }

    /// True if the process holds the capability (relative to its own
    /// namespace).
    pub fn has_cap(&self, cap: Capability) -> bool {
        self.caps.has(cap)
    }

    /// All groups the process is a member of: effective GID plus
    /// supplementary groups.
    pub fn all_groups(&self) -> Vec<Gid> {
        let mut g = vec![self.egid];
        for s in &self.supplementary {
            if !g.contains(s) {
                g.push(*s);
            }
        }
        g
    }

    /// True if the process is a member of `gid` (by effective or
    /// supplementary group).
    pub fn in_group(&self, gid: Gid) -> bool {
        self.egid == gid || self.supplementary.contains(&gid)
    }

    /// The effective UID as seen *inside* the given namespace, using the
    /// overflow UID for unmapped values.
    pub fn euid_in(&self, ns: &UserNamespace) -> Uid {
        ns.display_uid(self.euid)
    }

    /// The effective GID as seen *inside* the given namespace.
    pub fn egid_in(&self, ns: &UserNamespace) -> Gid {
        ns.display_gid(self.egid)
    }

    /// True if the process *appears* to be root inside the namespace —
    /// regardless of whether it actually holds host privilege.
    pub fn appears_root_in(&self, ns: &UserNamespace) -> bool {
        self.euid_in(ns).is_root()
    }
}

/// `setgroups(2)`: replaces the supplementary group list.
///
/// In a user namespace this requires (a) the namespace's `setgroups` file to
/// be `allow`, (b) CAP_SETGID in the namespace, and (c) every GID to be
/// mapped. In an unprivileged (Type III) namespace the policy is `deny`, so
/// the call fails with `EPERM` — the first error in Figure 3.
pub fn sys_setgroups(creds: &mut Credentials, ns: &UserNamespace, ns_gids: &[Gid]) -> KResult<()> {
    if ns.setgroups == SetgroupsPolicy::Deny {
        return Err(Errno::EPERM);
    }
    if !creds.has_cap(Capability::CapSetgid) {
        return Err(Errno::EPERM);
    }
    let mut host_gids = Vec::with_capacity(ns_gids.len());
    for g in ns_gids {
        match ns.gid_to_host(*g) {
            Some(h) => host_gids.push(h),
            None => return Err(Errno::EINVAL),
        }
    }
    creds.supplementary = host_gids;
    Ok(())
}

/// `setresuid(2)` (also used to model `seteuid(2)` / `setuid(2)`).
///
/// IDs are in-namespace values; `None` means "leave unchanged" (-1 in the C
/// API). Unmapped IDs yield `EINVAL` (Figure 3: `seteuid 100 failed -
/// seteuid (22: Invalid argument)`), insufficient privilege yields `EPERM`.
pub fn sys_setresuid(
    creds: &mut Credentials,
    ns: &UserNamespace,
    ruid: Option<Uid>,
    euid: Option<Uid>,
    suid: Option<Uid>,
) -> KResult<()> {
    let translate = |id: Option<Uid>| -> KResult<Option<Uid>> {
        match id {
            None => Ok(None),
            Some(v) => ns.uid_to_host(v).map(Some).ok_or(Errno::EINVAL),
        }
    };
    let new_r = translate(ruid)?;
    let new_e = translate(euid)?;
    let new_s = translate(suid)?;

    let privileged = creds.has_cap(Capability::CapSetuid);
    let allowed = |target: &Option<Uid>| -> bool {
        match target {
            None => true,
            Some(t) => privileged || *t == creds.ruid || *t == creds.euid || *t == creds.suid,
        }
    };
    if !(allowed(&new_r) && allowed(&new_e) && allowed(&new_s)) {
        return Err(Errno::EPERM);
    }
    if let Some(r) = new_r {
        creds.ruid = r;
    }
    if let Some(e) = new_e {
        creds.euid = e;
    }
    if let Some(s) = new_s {
        creds.suid = s;
    }
    // Changing away from euid 0 drops capabilities unless the process keeps
    // them explicitly; we model the common case.
    if !creds.euid.is_root() && !privileged {
        creds.caps.clear();
    }
    Ok(())
}

/// `seteuid(2)` in terms of [`sys_setresuid`].
pub fn sys_seteuid(creds: &mut Credentials, ns: &UserNamespace, euid: Uid) -> KResult<()> {
    sys_setresuid(creds, ns, None, Some(euid), None)
}

/// `setuid(2)`: for privileged callers sets all three UIDs; otherwise only the
/// effective UID (to the real or saved UID).
pub fn sys_setuid(creds: &mut Credentials, ns: &UserNamespace, uid: Uid) -> KResult<()> {
    if creds.has_cap(Capability::CapSetuid) {
        sys_setresuid(creds, ns, Some(uid), Some(uid), Some(uid))
    } else {
        sys_setresuid(creds, ns, None, Some(uid), None)
    }
}

/// `setresgid(2)` (also used to model `setegid(2)` / `setgid(2)`).
pub fn sys_setresgid(
    creds: &mut Credentials,
    ns: &UserNamespace,
    rgid: Option<Gid>,
    egid: Option<Gid>,
    sgid: Option<Gid>,
) -> KResult<()> {
    let translate = |id: Option<Gid>| -> KResult<Option<Gid>> {
        match id {
            None => Ok(None),
            Some(v) => ns.gid_to_host(v).map(Some).ok_or(Errno::EINVAL),
        }
    };
    let new_r = translate(rgid)?;
    let new_e = translate(egid)?;
    let new_s = translate(sgid)?;

    let privileged = creds.has_cap(Capability::CapSetgid);
    let allowed = |target: &Option<Gid>| -> bool {
        match target {
            None => true,
            Some(t) => privileged || *t == creds.rgid || *t == creds.egid || *t == creds.sgid,
        }
    };
    if !(allowed(&new_r) && allowed(&new_e) && allowed(&new_s)) {
        return Err(Errno::EPERM);
    }
    if let Some(r) = new_r {
        creds.rgid = r;
    }
    if let Some(e) = new_e {
        creds.egid = e;
    }
    if let Some(s) = new_s {
        creds.sgid = s;
    }
    Ok(())
}

/// `setegid(2)` in terms of [`sys_setresgid`].
pub fn sys_setegid(creds: &mut Credentials, ns: &UserNamespace, egid: Gid) -> KResult<()> {
    sys_setresgid(creds, ns, None, Some(egid), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idmap::IdMapEntry;
    use crate::userns::{deny_setgroups, write_gid_map, write_uid_map, MapOrigin, UsernsId};

    fn alice() -> Credentials {
        Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)])
    }

    fn unprivileged_ns(owner: &Credentials) -> UserNamespace {
        // Type III setup: single-ID maps written by the owner itself.
        let mut ns = UserNamespace {
            id: UsernsId(1),
            parent: Some(UsernsId::INIT),
            level: 1,
            owner_host_uid: owner.euid,
            owner_host_gid: owner.egid,
            uid_map: crate::idmap::IdMap::empty(),
            gid_map: crate::idmap::IdMap::empty(),
            setgroups: SetgroupsPolicy::Allow,
            uid_map_origin: MapOrigin::Unwritten,
            gid_map_origin: MapOrigin::Unwritten,
        };
        let none = CapabilitySet::empty();
        write_uid_map(
            &mut ns,
            vec![IdMapEntry::new(0, owner.euid.0, 1)],
            owner,
            &none,
        )
        .unwrap();
        deny_setgroups(&mut ns).unwrap();
        write_gid_map(
            &mut ns,
            vec![IdMapEntry::new(0, owner.egid.0, 1)],
            owner,
            &none,
        )
        .unwrap();
        ns
    }

    fn privileged_ns(owner: &Credentials) -> UserNamespace {
        // Type II setup: helper-installed 65536-wide maps.
        let mut ns = UserNamespace {
            id: UsernsId(2),
            parent: Some(UsernsId::INIT),
            level: 1,
            owner_host_uid: owner.euid,
            owner_host_gid: owner.egid,
            uid_map: crate::idmap::IdMap::empty(),
            gid_map: crate::idmap::IdMap::empty(),
            setgroups: SetgroupsPolicy::Allow,
            uid_map_origin: MapOrigin::Unwritten,
            gid_map_origin: MapOrigin::Unwritten,
        };
        let helper = CapabilitySet::of(&[Capability::CapSetuid, Capability::CapSetgid]);
        write_uid_map(
            &mut ns,
            vec![
                IdMapEntry::new(0, owner.euid.0, 1),
                IdMapEntry::new(1, 200_000, 65_536),
            ],
            owner,
            &helper,
        )
        .unwrap();
        write_gid_map(
            &mut ns,
            vec![
                IdMapEntry::new(0, owner.egid.0, 1),
                IdMapEntry::new(1, 200_000, 65_536),
            ],
            owner,
            &helper,
        )
        .unwrap();
        ns
    }

    #[test]
    fn containerized_process_appears_root_but_is_not() {
        let alice = alice();
        let ns = unprivileged_ns(&alice);
        let creds = alice.entered_own_namespace();
        assert!(creds.appears_root_in(&ns));
        assert_eq!(creds.euid, Uid(1000), "host identity unchanged");
    }

    #[test]
    fn figure3_apt_sandbox_failures_in_type_iii() {
        // apt-get tries: setgroups([65534]); setresgid(65534); setresuid(100).
        let alice = alice();
        let ns = unprivileged_ns(&alice);
        let mut creds = alice.entered_own_namespace();

        // setgroups: EPERM (setgroups denied in unprivileged namespaces).
        let e = sys_setgroups(&mut creds, &ns, &[Gid(65_534)]).unwrap_err();
        assert_eq!(e, Errno::EPERM);
        assert_eq!(e.transcript(), "(1: Operation not permitted)");

        // setegid 65534: EINVAL (GID not mapped).
        let e = sys_setegid(&mut creds, &ns, Gid(65_534)).unwrap_err();
        assert_eq!(e, Errno::EINVAL);
        assert_eq!(e.transcript(), "(22: Invalid argument)");

        // seteuid 100: EINVAL (UID not mapped).
        let e = sys_seteuid(&mut creds, &ns, Uid(100)).unwrap_err();
        assert_eq!(e, Errno::EINVAL);
    }

    #[test]
    fn figure3_calls_succeed_in_type_ii() {
        let alice = alice();
        let ns = privileged_ns(&alice);
        let mut creds = alice.entered_own_namespace();
        sys_setgroups(&mut creds, &ns, &[Gid(65_534)]).unwrap();
        sys_setegid(&mut creds, &ns, Gid(65_534)).unwrap();
        sys_seteuid(&mut creds, &ns, Uid(100)).unwrap();
        // The process's host identity is now the subordinate UID for 100.
        assert_eq!(creds.euid, Uid(200_099));
        assert_eq!(creds.supplementary, vec![Gid(200_000 + 65_533)]);
    }

    #[test]
    fn setuid_to_unmapped_id_is_einval_even_with_caps() {
        let alice = alice();
        let ns = unprivileged_ns(&alice);
        let mut creds = alice.entered_own_namespace();
        assert_eq!(
            sys_setuid(&mut creds, &ns, Uid(65_537)).unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn unprivileged_process_cannot_change_to_other_users() {
        // Without any namespace games, an unprivileged host process cannot
        // seteuid to another user.
        let mut creds = alice();
        let host = UserNamespace::initial();
        assert_eq!(
            sys_seteuid(&mut creds, &host, Uid(0)).unwrap_err(),
            Errno::EPERM
        );
        assert_eq!(
            sys_setgroups(&mut creds, &host, &[Gid(0)]).unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn host_root_can_do_everything() {
        let mut creds = Credentials::host_root();
        let host = UserNamespace::initial();
        sys_setgroups(&mut creds, &host, &[Gid(4), Gid(39)]).unwrap();
        sys_setresuid(
            &mut creds,
            &host,
            Some(Uid(100)),
            Some(Uid(100)),
            Some(Uid(100)),
        )
        .unwrap();
        assert_eq!(creds.euid, Uid(100));
    }

    #[test]
    fn dropping_euid_from_root_clears_caps() {
        // A real setuid transition from root to a user drops capabilities.
        let mut creds = Credentials::host_root();
        creds.caps = CapabilitySet::empty(); // pretend caps already dropped
        let host = UserNamespace::initial();
        // euid root -> can still switch to saved/real ids without caps
        sys_seteuid(&mut creds, &host, Uid(0)).unwrap();
        assert!(creds.caps.is_empty());
    }

    #[test]
    fn all_groups_deduplicates() {
        let creds = Credentials::unprivileged_user(Uid(1), Gid(5), vec![Gid(5), Gid(7)]);
        assert_eq!(creds.all_groups(), vec![Gid(5), Gid(7)]);
        assert!(creds.in_group(Gid(7)));
        assert!(!creds.in_group(Gid(8)));
    }

    #[test]
    fn type_ii_setgroups_requires_mapped_groups() {
        let alice = alice();
        let ns = privileged_ns(&alice);
        let mut creds = alice.entered_own_namespace();
        // GID 70000 is outside the 0..=65536 in-namespace range -> EINVAL.
        assert_eq!(
            sys_setgroups(&mut creds, &ns, &[Gid(70_000)]).unwrap_err(),
            Errno::EINVAL
        );
    }
}
