//! A minimal, dependency-free drop-in for the subset of the Criterion API the
//! workspace benches use. The real `criterion` crate cannot be fetched in
//! offline build environments, so this local package (named `criterion`)
//! keeps `cargo bench` working everywhere: same macros, same `Bencher::iter`
//! protocol, wall-clock measurement with warm-up and multiple samples, and a
//! `group/name  time: [low mean high]` output line per benchmark.
//!
//! It intentionally implements nothing else: no plots, no regression
//! analysis, no HTML reports. Swap the path dependency back to crates.io
//! `criterion` when network access is available; no bench source changes are
//! needed.
//!
//! When the `BENCH_JSON` environment variable names a file, every benchmark
//! additionally appends one machine-readable JSON line to it:
//! `{"id":"group/name","low_ns":L,"mean_ns":M,"high_ns":H}`. CI uses this to
//! collect results across bench binaries into one artifact and gate
//! regressions against a committed baseline (see `bench_gate` in
//! `crates/bench`).

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Target total measurement time per benchmark.
const TARGET_TOTAL: Duration = Duration::from_millis(400);
/// Warm-up time before sampling.
const WARMUP: Duration = Duration::from_millis(100);

/// Benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Anything usable as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkName {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.to_string()
    }
}

/// Timing driver handed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly: a short warm-up, then timed samples until the
    /// target measurement budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed() / iters.max(1) as u32;
        // Aim for ~50 samples within the budget, at least 10.
        let sample_count = 50usize;
        let budget_per_sample = TARGET_TOTAL / sample_count as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        self.samples.clear();
        let bench_start = Instant::now();
        while self.samples.len() < sample_count && bench_start.elapsed() < TARGET_TOTAL * 2 {
            let s = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(s.elapsed() / iters_per_sample);
        }
        if self.samples.is_empty() {
            let s = Instant::now();
            black_box(f());
            self.samples.push(s.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{} ns", ns)
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, name: &str, samples: &[Duration]) {
    let mut sorted = samples.to_vec();
    sorted.sort();
    let low = sorted[0];
    let high = sorted[sorted.len() - 1];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{:<60} time: [{} {} {}]",
        format!("{}/{}", group, name),
        fmt_duration(low),
        fmt_duration(mean),
        fmt_duration(high)
    );
    append_json_line(group, name, low, mean, high);
}

/// Appends one JSON line per benchmark to the file named by `BENCH_JSON`
/// (append mode, so several bench binaries can share one results file).
fn append_json_line(group: &str, name: &str, low: Duration, mean: Duration, high: Duration) {
    use std::io::Write;
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"id\":\"{}/{}\",\"low_ns\":{},\"mean_ns\":{},\"high_ns\":{}}}\n",
        group,
        name,
        low.as_nanos(),
        mean.as_nanos(),
        high.as_nanos()
    );
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    match file {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
        }
        Err(e) => eprintln!("BENCH_JSON: cannot open {}: {}", path, e),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &name.into_name(), &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<N: IntoBenchmarkName, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        name: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &name.into_name(), &b.samples);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report("bench", name, &b.samples);
        self
    }
}

/// Declares a group-runner function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
