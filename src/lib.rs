//! `hpcc-repro`: umbrella crate for the reproduction of
//! *Minimizing Privilege for Building HPC Containers* (SC 2021).
//!
//! Re-exports every sub-crate so examples and downstream users can depend on
//! a single crate:
//!
//! * [`kernel`] — simulated Linux kernel: credentials, capabilities, UID/GID
//!   maps, user namespaces, sysctl (paper §2.1).
//! * [`vfs`] — in-memory POSIX filesystem with ownership, permissions,
//!   devices, xattrs, tar, shared-filesystem backends.
//! * [`fuseproto`] — the FUSE-style operation protocol over the VFS: typed
//!   inode/handle ops with per-request credentials, errno-coded replies,
//!   open-handle sessions, and image-serving backends.
//! * [`fakeroot`] — `fakeroot(1)` / `fakeroot-ng` / `pseudo` interposition
//!   (paper §5.1, Table 1).
//! * [`distro`] — synthetic CentOS 7 / Debian 10 distributions with YUM- and
//!   APT-like package managers (paper §2.3).
//! * [`shell`] — the small shell that executes `RUN` instructions.
//! * [`image`] — OCI-like images, SHA-256 digests, and a registry.
//! * [`oci`] — the OCI distribution protocol, multi-architecture indexes, and
//!   the ownership-flattening annotation proposal (paper §6.2.5).
//! * [`runtime`] — Type I/II/III containers, subordinate IDs, privileged
//!   helpers, storage drivers (paper §2.2, §3.1, §4.1).
//! * [`core`] — the paper's contribution: Dockerfile builders with
//!   `ch-image --force` fakeroot auto-injection (paper §5.3).
//! * [`farm`] — multi-tenant build farm: work-stealing stage scheduler,
//!   cross-tenant cache dedup, fairness and backpressure (paper §7's
//!   shared-facility build service).
//! * [`cluster`] — HPC cluster substrate and the Astra / LANL CI workflows
//!   (Figure 6, §5.3.3).
//! * [`analyzer`] — the workspace's own static analysis passes (no-panic
//!   serving path, lock order, poison hygiene, protocol exhaustiveness);
//!   see `LINTS.md`.
//!
//! # Quick start
//!
//! ```
//! use hpcc_repro::core::{Builder, BuildOptions, centos7_dockerfile};
//! use hpcc_repro::runtime::Invoker;
//!
//! // A fully unprivileged (Type III) build of the paper's Figure 2
//! // Dockerfile fails on chown(2) ...
//! let alice = Invoker::user("alice", 1000, 1000);
//! let mut builder = Builder::ch_image(alice.clone());
//! let plain = builder.build(centos7_dockerfile(), &BuildOptions::new("foo"), None);
//! assert!(!plain.success);
//!
//! // ... and succeeds with `--force` fakeroot injection (Figure 10).
//! let mut builder = Builder::ch_image(alice);
//! let forced = builder.build(
//!     centos7_dockerfile(),
//!     &BuildOptions::new("foo").with_force(),
//!     None,
//! );
//! assert!(forced.success);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hpcc_analyzer as analyzer;
pub use hpcc_cluster as cluster;
pub use hpcc_core as core;
pub use hpcc_distro as distro;
pub use hpcc_fakeroot as fakeroot;
pub use hpcc_farm as farm;
pub use hpcc_fuseproto as fuseproto;
pub use hpcc_image as image;
pub use hpcc_kernel as kernel;
pub use hpcc_oci as oci;
pub use hpcc_runtime as runtime;
pub use hpcc_shell as shell;
pub use hpcc_vfs as vfs;
