//! Quickstart: build the paper's CentOS 7 Dockerfile (Figure 2) three ways —
//! plain Type III (fails), Type III with `--force` (Figure 10, succeeds), and
//! rootless Podman Type II (succeeds) — then push the forced build to a
//! registry and pull it back as another user.
//!
//! Run with: `cargo run --example quickstart`

use hpcc_repro::core::default_subuid_for;
use hpcc_repro::core::{centos7_dockerfile, BuildOptions, Builder, PushOwnership};
use hpcc_repro::image::Registry;
use hpcc_repro::runtime::Invoker;

fn main() {
    let alice = Invoker::user("alice", 1000, 1000);

    println!("== 1. plain fully-unprivileged (Type III) build: expected to fail ==");
    let mut ch = Builder::ch_image(alice.clone());
    let plain = ch.build(centos7_dockerfile(), &BuildOptions::new("foo"), None);
    println!("{}\n", plain.transcript_text());
    assert!(!plain.success);

    println!("== 2. ch-image --force: fakeroot injected automatically (Figure 10) ==");
    let mut ch = Builder::ch_image(alice.clone());
    let forced = ch.build(
        centos7_dockerfile(),
        &BuildOptions::new("foo").with_force(),
        None,
    );
    println!("{}\n", forced.transcript_text());
    assert!(forced.success);

    println!("== 3. rootless Podman (Type II): unmodified Dockerfile builds ==");
    let mut podman = Builder::rootless_podman(alice.clone(), default_subuid_for("alice"));
    let p = podman.build(centos7_dockerfile(), &BuildOptions::new("foo"), None);
    println!("{}\n", p.transcript_text());
    assert!(p.success);

    println!("== 4. push (flattened) and pull back as bob ==");
    let mut registry = Registry::new("registry.example.gov");
    let digest = ch
        .push(
            "foo",
            "hpc/openssh:latest",
            &mut registry,
            PushOwnership::Flatten,
        )
        .expect("push");
    println!("pushed hpc/openssh:latest ({})", digest.short());
    let mut bob = Builder::ch_image(Invoker::user("bob", 1001, 1001));
    bob.pull(&mut registry, "hpc/openssh:latest", "openssh")
        .expect("pull");
    println!(
        "bob pulled the image; every file is now owned by bob's UID: {:?}",
        bob.image("openssh").unwrap().fs.distinct_owner_uids()
    );
}
