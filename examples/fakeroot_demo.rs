//! Paper Figure 7 and Table 1: how `fakeroot(1)` lies about privileged
//! operations, how the lies look from inside vs outside the wrapper, and how
//! the three implementations differ in what they can install.
//!
//! Run with: `cargo run --example fakeroot_demo`

use hpcc_repro::fakeroot::{render_table1, FakerootSession, Flavor};
use hpcc_repro::kernel::{Credentials, Gid, Uid, UserNamespace};
use hpcc_repro::vfs::{Actor, FileType, Filesystem, Mode};

fn name(u: Uid) -> String {
    match u.0 {
        0 => "root".into(),
        1000 => "alice".into(),
        65534 => "nobody".into(),
        o => o.to_string(),
    }
}

fn gname(g: Gid) -> String {
    match g.0 {
        0 => "root".into(),
        1000 => "alice".into(),
        65534 => "nogroup".into(),
        o => o.to_string(),
    }
}

fn main() {
    println!("{}", render_table1());

    let mut fs = Filesystem::new_local();
    fs.install_dir("/work", Uid(1000), Gid(1000), Mode::new(0o755))
        .unwrap();
    let creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
    let ns = UserNamespace::initial();
    let actor = Actor::new(&creds, &ns);

    let mut session = FakerootSession::new(Flavor::Fakeroot);
    println!("$ fakeroot ./fakeroot.sh");
    println!("+ touch test.file");
    fs.write_file(&actor, "/work/test.file", Vec::new(), Mode::new(0o640))
        .unwrap();
    println!("+ chown nobody test.file");
    session
        .chown(&mut fs, &actor, "/work/test.file", Some(Uid(65534)), None)
        .unwrap();
    println!("+ mknod test.dev c 1 1");
    session
        .mknod(
            &mut fs,
            &actor,
            "/work/test.dev",
            FileType::CharDevice,
            1,
            1,
            Mode::new(0o640),
        )
        .unwrap();
    println!("+ ls -lh test.dev test.file");
    println!(
        "{}",
        session
            .ls_line(&fs, &actor, "/work/test.dev", name, gname)
            .unwrap()
    );
    println!(
        "{}",
        session
            .ls_line(&fs, &actor, "/work/test.file", name, gname)
            .unwrap()
    );
    println!("$ ls -lh test*   # outside the wrapper: the lies are exposed");
    println!(
        "{}",
        fs.ls_line(&actor, "/work/test.dev", name, gname).unwrap()
    );
    println!(
        "{}",
        fs.ls_line(&actor, "/work/test.file", name, gname).unwrap()
    );

    println!(
        "\nsaved lie database ({} entries):\n{}",
        session.db.len(),
        session.db.save()
    );

    println!("wrapper capabilities per implementation:");
    for flavor in Flavor::ALL {
        let s = FakerootSession::new(flavor);
        println!(
            "  {:<12} static binaries: {:<5} aarch64: {:<5} intercepts lchown: {}",
            flavor.to_string(),
            s.can_wrap(true, "x86_64").is_ok(),
            s.can_wrap(false, "aarch64").is_ok(),
            flavor.intercepts(hpcc_repro::fakeroot::InterceptOp::Lchown),
        );
    }
}
