//! A multi-tenant build farm over one shared instruction cache: several
//! tenants submit builds into a bounded tenant-fair queue, a work-stealing
//! worker pool drains them at stage granularity, and byte-identical
//! instruction prefixes are computed once farm-wide — concurrent identical
//! submissions collapse onto a single in-flight leader, everyone else
//! adopts the cached result. Fairness knobs keep a flooding tenant from
//! starving the rest, and backpressure surfaces as a typed error instead
//! of unbounded queueing — the shared-facility build service the paper's
//! impact section sketches.
//!
//! Run with: `cargo run --release --example build_farm`

use hpcc_repro::core::{centos7_fr_dockerfile, BuildOptions};
use hpcc_repro::farm::{BuildFarm, BuildRequest, FarmConfig, SubmitError};

const TENANTS: usize = 6;
const BUILDS_PER_TENANT: usize = 4;

fn main() {
    // 1. A farm with 4 workers, a bounded queue, and a per-tenant in-flight
    //    cap of 2 so no tenant can occupy the whole pool.
    let farm = BuildFarm::new(
        FarmConfig::new(4)
            .with_queue_capacity(64)
            .with_tenant_max_running(2),
    );

    // 2. Every tenant submits the same Figure 8 Dockerfile (100% overlap —
    //    the common "everyone builds the lab's base image" case) plus one
    //    tenant-unique build.
    for t in 0..TENANTS {
        let tenant = format!("team{t}");
        for b in 0..BUILDS_PER_TENANT {
            farm.try_submit(BuildRequest::new(
                &tenant,
                centos7_fr_dockerfile(),
                BuildOptions::new(&format!("base-v{b}")).with_cache(),
            ))
            .expect("queue has room");
        }
        farm.try_submit(BuildRequest::new(
            &tenant,
            &format!("FROM centos:7\nRUN echo {tenant} > /opt/owner\n"),
            BuildOptions::new("private").with_cache(),
        ))
        .expect("queue has room");
    }

    // 3. Backpressure is typed, not a panic or an unbounded queue.
    let overflow = BuildRequest::new(
        "flooder",
        centos7_fr_dockerfile(),
        BuildOptions::new("spam"),
    );
    for _ in 0..64 {
        if let Err(e) = farm.try_submit(overflow.clone()) {
            assert!(matches!(e, SubmitError::QueueFull { .. }));
            println!("backpressure: {e}\n");
            break;
        }
    }

    // 4. Drain everything through the work-stealing pool.
    let results = farm.drain();
    let ok = results.iter().filter(|r| r.report.success).count();
    println!(
        "{} builds drained ({} ok) across {} tenants on {} workers",
        results.len(),
        ok,
        TENANTS + 1,
        farm.config().workers
    );

    // 5. Cross-tenant dedup: identical instructions were computed once.
    let cache = farm.cache();
    println!(
        "shared cache: {} misses, {} hits ({} adopted from an in-flight leader)",
        cache.misses(),
        cache.hits(),
        cache.deduped()
    );
    println!(
        "base environments derived: {}\n",
        farm.base_env_memo().derivations()
    );

    // 6. Per-tenant accounting from the atomic counters.
    println!(
        "{:<10} {:>9} {:>9} {:>6} {:>6} {:>8} {:>8}",
        "tenant", "submitted", "rejected", "ok", "fail", "hits", "misses"
    );
    for (tenant, s) in farm.stats().snapshot() {
        println!(
            "{:<10} {:>9} {:>9} {:>6} {:>6} {:>8} {:>8}",
            tenant, s.submitted, s.rejected, s.completed, s.failed, s.cache_hits, s.cache_misses
        );
    }
}
