//! The stage-graph build pipeline on a diamond-shaped multi-stage
//! Dockerfile: the front end lowers the file to a stage IR, the planner
//! turns `COPY --from` / `FROM <alias>` references into a DAG (rejecting
//! forward and unknown references before anything runs), and the executor
//! builds independent stages concurrently with one shared build cache.
//!
//! Run with: `cargo run --example multistage_graph`

use hpcc_repro::core::{build_multistage, BuildGraph, BuildIr, BuildOptions, Builder};
use hpcc_repro::runtime::Invoker;

const DIAMOND: &str = "\
FROM centos:7 AS base
RUN yum install -y gcc

FROM base AS mpi
RUN yum install -y openmpi
RUN mkdir -p /opt/artifacts && echo mpi-stack > /opt/artifacts/mpi

FROM base AS tools
RUN yum install -y spack
RUN mkdir -p /opt/artifacts && echo tool-tree > /opt/artifacts/tools

FROM centos:7
COPY --from=mpi /opt/artifacts/mpi /opt/final/mpi
COPY --from=tools /opt/artifacts/tools /opt/final/tools
RUN echo assembled
";

fn main() {
    let ir = BuildIr::parse(DIAMOND).unwrap();
    let graph = BuildGraph::plan(&ir).unwrap();
    println!(
        "== plan: {} stages, critical path {} ==",
        ir.stage_count(),
        graph.critical_path_len()
    );
    for level in graph.levels() {
        let names: Vec<String> = level
            .iter()
            .map(|&s| {
                ir.stages[s]
                    .alias
                    .clone()
                    .unwrap_or_else(|| format!("stage{}", s))
            })
            .collect();
        println!(
            "  level: {:?}{}",
            names,
            if level.len() > 1 {
                "  <- built in parallel"
            } else {
                ""
            }
        );
    }

    // A planner error surfaces before any instruction executes.
    let bad = "FROM centos:7 AS a\nCOPY --from=later /x /y\n\nFROM centos:7 AS later\nRUN echo x\n";
    let err = BuildGraph::plan(&BuildIr::parse(bad).unwrap()).unwrap_err();
    println!("\n== plan-time rejection ==\n  {}", err);

    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice);
    let options = BuildOptions::new("diamond").with_cache();
    let report = build_multistage(&mut builder, DIAMOND, &options, None);
    println!("\n== parallel build: success={} ==", report.success);
    for stage in &report.stages {
        println!(
            "  {:<28} {} instructions, {:?}",
            stage.tag, stage.instructions_total, stage.elapsed
        );
    }

    let rebuild = build_multistage(&mut builder, DIAMOND, &options, None);
    let hits: usize = rebuild.stages.iter().map(|s| s.cache_hits).sum();
    let misses: usize = rebuild.stages.iter().map(|s| s.cache_misses).sum();
    println!("\n== cached rebuild: {} hits, {} misses ==", hits, misses);
    println!(
        "tags in store: {:?} (intermediate stages are not tagged)",
        builder.tags()
    );
}
