//! Serve a built image over the *wire*: a server thread pumps a Unix
//! socketpair into the container's filesystem session, and the client half
//! speaks nothing but byte frames — FUSE-shaped headers, opcodes, negated
//! errnos. The same generic `Server` then serves a read-only reader of the
//! shared frozen image over a second socketpair, through the same
//! `Dispatch` trait.
//!
//! Run with: `cargo run --example fuse_serve`

use std::thread;

use hpcc_repro::core::{build_multistage, BuildOptions, Builder};
use hpcc_repro::fuseproto::{
    unix_pair, Client, OpenFlags, Operation, Reply, Request, FUSE_ROOT_ID,
};
use hpcc_repro::image::{Image, ImageConfig};
use hpcc_repro::runtime::{Container, Invoker};

const DOCKERFILE: &str = "\
FROM centos:7
RUN mkdir -p /opt/app && echo 'served over the wire' > /opt/app/data
";

fn main() {
    // 1. Build and launch, as ever, unprivileged.
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice.clone());
    let report = build_multistage(
        &mut builder,
        DOCKERFILE,
        &BuildOptions::new("srv").with_force(),
        None,
    );
    assert!(report.success, "build failed: {:?}", report.error);
    let built = builder.image("srv").expect("tagged image");
    let actor_creds = hpcc_repro::kernel::Credentials::host_root();
    let ns = hpcc_repro::kernel::UserNamespace::initial();
    let actor = hpcc_repro::vfs::Actor::new(&actor_creds, &ns);
    let image = Image::from_fs_preserved(
        "srv:latest",
        &built.fs,
        &actor,
        ImageConfig {
            architecture: "x86_64".to_string(),
            ..Default::default()
        },
    )
    .expect("image");
    let container = Container::launch_type3(&image, &alice).expect("launch");
    let cred = container.fs_creds();

    // 2. A Unix socketpair is the wire; the daemon half serves on a thread.
    let (daemon_end, client_end) = unix_pair().expect("socketpair");
    let mut server = container.serve(daemon_end);
    let daemon = thread::spawn(move || server.serve().expect("serve loop"));

    // 3. The client half: every call below is encoded to a byte frame,
    //    written to the socket, and matched to its reply by unique id.
    let mut client = Client::new(client_end);
    let opt = match client
        .call(&Request::new(
            cred.clone(),
            Operation::Lookup {
                parent: FUSE_ROOT_ID,
                name: "opt".into(),
            },
        ))
        .expect("wire call")
    {
        Reply::Entry(e) => e,
        other => panic!("{other:?}"),
    };
    let app = match client
        .call(&Request::new(
            cred.clone(),
            Operation::Lookup {
                parent: opt.ino,
                name: "app".into(),
            },
        ))
        .expect("wire call")
    {
        Reply::Entry(e) => e,
        other => panic!("{other:?}"),
    };
    println!("$ stat /opt/app -> ino {} over the socket", app.ino);

    let dh = match client
        .call(&Request::new(
            cred.clone(),
            Operation::Opendir { ino: app.ino },
        ))
        .expect("wire call")
    {
        Reply::Opened(o) => o,
        other => panic!("{other:?}"),
    };
    let entries = match client
        .call(&Request::new(
            cred.clone(),
            Operation::Readdir {
                fh: dh.fh,
                offset: 0,
                max: 100,
            },
        ))
        .expect("wire call")
    {
        Reply::Dir(entries) => entries,
        other => panic!("{other:?}"),
    };
    println!("$ ls /opt/app");
    for e in &entries {
        println!("  {:<8} ino {:<4} {:?}", e.name, e.ino, e.file_type);
    }

    let data = entries
        .iter()
        .find(|e| e.name == "data")
        .expect("data file");
    let fh = match client
        .call(&Request::new(
            cred.clone(),
            Operation::Open {
                ino: data.ino,
                flags: OpenFlags::RDONLY,
            },
        ))
        .expect("wire call")
    {
        Reply::Opened(o) => o.fh,
        other => panic!("{other:?}"),
    };
    match client
        .call(&Request::new(
            cred.clone(),
            Operation::Read {
                fh,
                offset: 0,
                size: 4096,
            },
        ))
        .expect("wire call")
    {
        Reply::Data(d) => println!(
            "$ cat /opt/app/data -> {:?}",
            String::from_utf8_lossy(d.as_slice())
        ),
        other => panic!("{other:?}"),
    }

    // 4. Unmount politely; the daemon reclaims the handle we never released.
    client.destroy().expect("destroy");
    let summary = daemon.join().expect("daemon thread");
    println!(
        "== daemon: {} requests, {} protocol errors, shutdown {:?} ==",
        summary.requests, summary.protocol_errors, summary.shutdown
    );

    // 5. Same loop, read-only flavor: a reader of the shared frozen image
    //    behind the identical Server — writes come back as EROFS frames.
    let (daemon_end, client_end) = unix_pair().expect("socketpair");
    let mut ro_server = container.serve_readonly(daemon_end);
    let ro_cred = ro_server.dispatcher().cred().clone();
    let daemon = thread::spawn(move || {
        let summary = ro_server.serve().expect("serve loop");
        (ro_server, summary)
    });
    let mut client = Client::new(client_end);
    let err = client
        .call(&Request::new(
            ro_cred,
            Operation::Mkdir {
                parent: FUSE_ROOT_ID,
                name: "nope".into(),
                mode: hpcc_repro::vfs::Mode::DIR_755,
            },
        ))
        .expect("wire call")
        .err()
        .expect("EROFS");
    println!("== read-only serve: mkdir over the wire -> {err} ==");
    drop(client); // hang up without a destroy
    let (ro_server, summary) = daemon.join().expect("daemon thread");
    assert_eq!(ro_server.dispatcher().open_handles(), 0);
    println!(
        "== read-only daemon: shutdown {:?}, no leaked handles ==",
        summary.shutdown
    );
}
