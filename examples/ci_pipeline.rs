//! The LANL production CI pipeline of paper §5.3.3: three chained
//! Dockerfiles (OpenMPI base → Spack environment → application) built with
//! `ch-image --force` on compute nodes, pushed to a private registry, then
//! pulled and validated — all by a normal unprivileged user.
//!
//! Run with: `cargo run --example ci_pipeline`

use hpcc_repro::cluster::{lanl_ci_pipeline, lanl_pipeline_dockerfiles, Cluster};
use hpcc_repro::image::Registry;

fn main() {
    println!("Pipeline Dockerfiles:");
    for (tag, df) in lanl_pipeline_dockerfiles() {
        println!("--- {} ---\n{}", tag, df);
    }

    let cluster = Cluster::generic_x86(4);
    let mut registry = Registry::new("gitlab.lanl.example");
    let report = lanl_ci_pipeline(&cluster, &mut registry, "ci-builder", 2000);
    println!("{}", report.transcript_text());
    println!(
        "\npipeline {}; registry now holds {:?}",
        if report.success {
            "succeeded"
        } else {
            "FAILED"
        },
        registry.repositories()
    );
}
