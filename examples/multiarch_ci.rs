//! Multi-site, multi-architecture CI/CD (paper §6.3) on top of an OCI
//! distribution registry with image indexes.
//!
//! Two sites — Astra (aarch64 login/compute nodes) and a generic x86-64
//! machine — each run the same CI job: a fully unprivileged
//! `ch-image --force` build of the paper's Figure 2 Dockerfile on their own
//! login node, followed by a push to a shared registry. The registry's
//! multi-architecture index ends up with one manifest per architecture, and
//! each site's compute nodes pull the variant matching their CPUs.
//!
//! Run with: `cargo run --example multiarch_ci`

use hpcc_repro::cluster::{astra_plus_x86_sites, multisite_ci};
use hpcc_repro::core::centos7_dockerfile;
use hpcc_repro::oci::{DistributionRegistry, Platform};

fn main() {
    let sites = astra_plus_x86_sites("ci-runner", 6000);
    let mut registry = DistributionRegistry::new("registry.example.gov", &["ci-runner"]);

    println!("== multi-site CI: one unprivileged build job per supercomputer ==");
    let report = multisite_ci(
        &sites,
        centos7_dockerfile(),
        &mut registry,
        "atse/openssh",
        "1.0",
    );
    for r in &report.results {
        println!(
            "site {:<12} arch {:<8} build {}  --force rewrites {}  push {}  pull-back {}",
            r.site,
            r.arch,
            if r.build_ok { "ok" } else { "FAILED" },
            r.instructions_modified,
            r.manifest_digest
                .map(|d| d.short())
                .unwrap_or_else(|| "-".to_string()),
            if r.pull_ok { "ok" } else { "FAILED" },
        );
    }
    assert!(report.success);

    println!("\n== registry index for atse/openssh:1.0 ==");
    for p in &report.index_platforms {
        println!("  platform {}", p);
    }
    assert_eq!(report.index_platforms.len(), 2);

    println!("\n== the original Astra problem, made visible at pull time ==");
    // Nobody built ppc64le, so a ppc64le machine gets MANIFEST_UNKNOWN instead
    // of a binary that fails to exec (paper §4.2).
    let err = registry
        .pull_for_platform(
            "ci-runner",
            "atse/openssh",
            "1.0",
            &Platform::linux_ppc64le(),
        )
        .unwrap_err();
    println!("pull for linux/ppc64le -> {}", err);

    println!("\n== registry storage: content-addressed deduplication ==");
    let blobs = registry.blob_stats();
    println!(
        "blobs stored: {}  bytes stored: {}  bytes offered: {}  saved by dedup: {}",
        blobs.len(),
        blobs.stored_bytes(),
        blobs.offered_bytes(),
        blobs.dedup_savings()
    );
}
