//! Build an image once, then serve it to many concurrent reader threads
//! through the shared-image stack: one `SharedImage` (one inode table, one
//! copy-on-write byte store, one pre-warmed lock-free resolve index) and a
//! cheap `ReaderSession` per thread. Every thread runs full
//! `resolve → open → read → release` cycles with its own credentials and
//! handle table; the hot path takes no global lock, so aggregate throughput
//! holds as readers are added — the paper's "many jobs read one image from
//! shared storage" end state.
//!
//! Run with: `cargo run --release --example concurrent_serve`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hpcc_repro::core::{BuildOptions, Builder};
use hpcc_repro::fuseproto::OpenFlags;
use hpcc_repro::runtime::{Container, Invoker};

const DOCKERFILE: &str = "\
FROM centos:7
RUN yum install -y openssh
RUN mkdir -p /opt/app && echo 'simulated payload' > /opt/app/data
";

const READERS: usize = 16;
const CYCLES_PER_READER: usize = 5_000;

fn main() {
    // 1. Build the image with the unprivileged (Type III) builder.
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice.clone());
    let report = builder.build(DOCKERFILE, &BuildOptions::new("serve").with_force(), None);
    assert!(
        report.success,
        "build failed:\n{}",
        report.transcript_text()
    );
    let built = builder.image("serve").expect("tagged image");

    // 2. Launch a container and freeze its rootfs for concurrent serving.
    let actor_creds = hpcc_repro::kernel::Credentials::host_root();
    let ns = hpcc_repro::kernel::UserNamespace::initial();
    let actor = hpcc_repro::vfs::Actor::new(&actor_creds, &ns);
    let image = hpcc_repro::image::Image::from_fs_preserved(
        "serve:latest",
        &built.fs,
        &actor,
        hpcc_repro::image::ImageConfig {
            architecture: "x86_64".to_string(),
            ..Default::default()
        },
    )
    .expect("image");
    let container = Container::launch_type3(&image, &alice).expect("launch");
    let shared = container.shared_image();
    println!(
        "== frozen image: {} inodes, {} indexed paths ==",
        shared.filesystem().inode_count(),
        shared.indexed_paths()
    );

    // 3. Pick the regular files every reader will cycle over.
    let paths: Vec<String> = container
        .rootfs
        .walk()
        .into_iter()
        .filter(|(_, ino)| {
            container
                .rootfs
                .inode(*ino)
                .map(|i| i.is_file())
                .unwrap_or(false)
        })
        .map(|(path, _)| path)
        .collect();
    assert!(!paths.is_empty());
    println!("== serving {} files to {} readers ==", paths.len(), READERS);

    // 4. One ReaderSession per thread, all over the same image: full
    //    resolve/open/read/release cycles, counted in aggregate.
    let total_bytes = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..READERS {
            let reader = shared.reader(container.fs_creds());
            let paths = &paths;
            let total_bytes = &total_bytes;
            s.spawn(move || {
                let mut bytes = 0u64;
                for i in 0..CYCLES_PER_READER {
                    let path = &paths[(t + i) % paths.len()];
                    let entry = reader.resolve_path(path, true).expect("resolve");
                    let o = reader.open(entry.ino, OpenFlags::RDONLY).expect("open");
                    let data = reader.read(o.fh, 0, u32::MAX).expect("read");
                    bytes += data.len() as u64;
                    reader.release(o.fh).expect("release");
                }
                assert_eq!(reader.open_handles(), 0, "reader {t} leaked handles");
                total_bytes.fetch_add(bytes, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();

    // 5. Aggregate throughput: 4 protocol ops per cycle.
    let total_ops = (READERS * CYCLES_PER_READER * 4) as f64;
    let ops_per_sec = total_ops / elapsed.as_secs_f64();
    println!(
        "== {} readers x {} cycles: {:.0} ops ({:.1} MiB served zero-copy) in {:.2?} ==",
        READERS,
        CYCLES_PER_READER,
        total_ops,
        total_bytes.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0),
        elapsed
    );
    println!("== aggregate: {:.2} Mops/s ==", ops_per_sec / 1e6);
}
