//! Demonstrates the paper's Type I / II / III privilege taxonomy (§2.2) at
//! the system-call level: who can `chown(2)` to an unmapped user, what the
//! UID maps look like, and why `apt-get`'s privilege drop fails only in the
//! fully unprivileged case.
//!
//! Run with: `cargo run --example privilege_taxonomy`

use hpcc_repro::kernel::creds::{sys_setegid, sys_seteuid, sys_setgroups};
use hpcc_repro::kernel::{Credentials, Gid, Uid, UserNamespace};
use hpcc_repro::runtime::{render_implementation_table, PrivilegeType};
use hpcc_repro::vfs::{Actor, Filesystem, Mode};

fn try_chown(label: &str, ns: &UserNamespace, creds: &Credentials) {
    let mut fs = Filesystem::new_local();
    fs.install_file(
        "/pkg/file",
        b"payload".to_vec(),
        creds.euid,
        creds.egid,
        Mode::FILE_644,
    )
    .unwrap();
    let actor = Actor::new(creds, ns);
    match fs.chown(&actor, "/pkg/file", Some(Uid(74)), Some(Gid(74))) {
        Ok(()) => {
            let st = fs.stat(&actor, "/pkg/file").unwrap();
            println!(
                "{:<28} chown to sshd(74): OK (host owner now {}, container view {})",
                label, st.uid_host, st.uid_view
            );
        }
        Err(e) => println!("{:<28} chown to sshd(74): FAILED with {}", label, e),
    }
}

fn try_apt_privilege_drop(label: &str, ns: &UserNamespace, creds: &Credentials) {
    let mut c = creds.clone();
    let setgroups = sys_setgroups(&mut c, ns, &[Gid(65_534)]);
    let setegid = sys_setegid(&mut c, ns, Gid(65_534));
    let seteuid = sys_seteuid(&mut c, ns, Uid(100));
    println!(
        "{:<28} setgroups: {:<22} setegid: {:<22} seteuid: {}",
        label,
        setgroups
            .map(|_| "ok".to_string())
            .unwrap_or_else(|e| e.to_string()),
        setegid
            .map(|_| "ok".to_string())
            .unwrap_or_else(|e| e.to_string()),
        seteuid
            .map(|_| "ok".to_string())
            .unwrap_or_else(|e| e.to_string()),
    );
}

fn main() {
    println!("Container implementations surveyed in the paper (§3.1):\n");
    println!("{}", render_implementation_table());

    for t in PrivilegeType::ALL {
        println!(
            "{}: privileged setup: {}, container root == host root: {}, visible IDs: {}",
            t,
            t.requires_privileged_setup(),
            t.container_root_is_host_root(),
            t.mapped_id_count(65_536)
        );
    }
    println!();

    // Type I: host root in the initial namespace.
    let host_ns = UserNamespace::initial();
    let root = Credentials::host_root();
    // Type II: privileged map (invoker 1000 -> 0, 200000.. -> 1..).
    let t2_ns = UserNamespace::type2(Uid(1000), Gid(1000), 200_000, 65_536);
    // Type III: single-ID map.
    let t3_ns = UserNamespace::type3(Uid(1000), Gid(1000));
    let alice_in_container = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)])
        .entered_own_namespace();

    println!("UID maps (container -> host):");
    println!("  Type II:\n{}", t2_ns.uid_map.render_procfs());
    println!("  Type III:\n{}", t3_ns.uid_map.render_procfs());

    println!("chown(2) of a package file to the sshd user (what rpm/cpio needs):");
    try_chown("Type I  (host root)", &host_ns, &root);
    try_chown("Type II (rootless podman)", &t2_ns, &alice_in_container);
    try_chown("Type III (charliecloud)", &t3_ns, &alice_in_container);
    println!();

    println!("apt-get's sandbox privilege drop (setgroups/setegid/seteuid, Figure 3):");
    try_apt_privilege_drop("Type I  (host root)", &host_ns, &root);
    try_apt_privilege_drop("Type II (rootless podman)", &t2_ns, &alice_in_container);
    try_apt_privilege_drop("Type III (charliecloud)", &t3_ns, &alice_in_container);
}
