//! The Astra container DevOps workflow of paper Figure 6: `podman build` of
//! the ATSE stack on an aarch64 login node, push to an OCI registry, and
//! parallel distributed launch on compute nodes. Also demonstrates why the
//! workflow exists at all: an x86-64 image refuses to run on Astra's Arm
//! nodes.
//!
//! Run with: `cargo run --example astra_workflow`

use hpcc_repro::cluster::{astra_workflow, Cluster};
use hpcc_repro::image::Registry;
use hpcc_repro::runtime::check_arch;

fn main() {
    let astra = Cluster::astra(8);
    println!(
        "Cluster: {} ({} login nodes, {} compute nodes, shared fs: {})",
        astra.name,
        astra.login_nodes().len(),
        astra.compute_nodes().len(),
        astra.shared_fs.name()
    );

    let mut registry = Registry::new("registry.sandia.example");
    let report = astra_workflow(&astra, &mut registry, "ajyoung", 5432, 8);
    println!("{}", report.transcript_text());
    println!(
        "\nworkflow {}; {}/{} node launches succeeded",
        if report.success {
            "succeeded"
        } else {
            "FAILED"
        },
        report.launches.iter().filter(|l| l.success).count(),
        report.launches.len()
    );

    // Why build on Astra? An image built for x86-64 cannot run there.
    let generic = Cluster::generic_x86(2);
    let mut x86_registry = Registry::new("registry.commodity.example");
    let x86_report = astra_workflow(&generic, &mut x86_registry, "alice", 1000, 2);
    assert!(x86_report.success);
    let x86_image = x86_registry.pull("atse/app:x86_64").unwrap();
    let astra_node = astra.compute_nodes()[0];
    println!(
        "\nrunning the x86_64 image on {} ({}): {}",
        astra_node.name,
        astra_node.arch,
        match check_arch(&x86_image, &astra_node.arch) {
            Ok(()) => "would run".to_string(),
            Err(e) => format!("refused ({} — exec format error)", e),
        }
    );
}
