//! Build a multi-stage image end to end, then serve it through the
//! FUSE-style operation protocol: `Container::mount()` returns a `Session`
//! and every access below is a typed `lookup`/`getattr`/`opendir`/`readdir`/
//! `open`/`read` op with per-request credentials — no path-string VFS calls,
//! and `read` replies share the image's bytes copy-on-write (no copy).
//!
//! Run with: `cargo run --example fuse_mount`

use hpcc_repro::core::{build_multistage, BuildOptions, Builder};
use hpcc_repro::fuseproto::{Dispatch, FsCreds, OpenFlags, Operation, Reply, Request};
use hpcc_repro::image::{Image, ImageConfig};
use hpcc_repro::runtime::{Container, Invoker};

const MULTISTAGE: &str = "\
FROM centos:7 AS builder
RUN yum install -y gcc
RUN mkdir -p /opt/app && echo 'simulated payload' > /opt/app/data
RUN gcc -O2 -o /opt/app/run main.c

FROM centos:7
COPY --from=builder /opt/app /opt/app
RUN echo ready > /opt/app/marker
";

fn main() {
    // 1. Build the multi-stage image with the unprivileged (Type III)
    //    builder, exactly as the paper's workflow does.
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice.clone());
    let report = build_multistage(
        &mut builder,
        MULTISTAGE,
        &BuildOptions::new("app").with_force().with_cache(),
        None,
    );
    assert!(report.success, "build failed: {:?}", report.error);
    println!(
        "== built {} stages ({} instructions in final stage) ==",
        report.stages.len(),
        report
            .stages
            .last()
            .map(|s| s.instructions_total)
            .unwrap_or(0)
    );

    // 2. Launch it as a container and mount the served filesystem.
    let built = builder.image("app").expect("tagged image");
    let actor_creds = hpcc_repro::kernel::Credentials::host_root();
    let ns = hpcc_repro::kernel::UserNamespace::initial();
    let actor = hpcc_repro::vfs::Actor::new(&actor_creds, &ns);
    let image = Image::from_fs_preserved(
        "app:latest",
        &built.fs,
        &actor,
        ImageConfig {
            architecture: "x86_64".to_string(),
            ..Default::default()
        },
    )
    .expect("image");
    let container = Container::launch_type3(&image, &alice).expect("launch");
    let mut session = container.mount();
    let cred = container.fs_creds();

    let statfs = session.statfs(&cred).unwrap();
    println!(
        "== mounted: {} inodes, {} file bytes, ro={} ==",
        statfs.inodes, statfs.bytes, statfs.readonly
    );

    // 3. stat via lookup chain (the kernel's path walk over the protocol).
    let app = session.resolve_path(&cred, "/opt/app", true).unwrap();
    println!(
        "$ stat /opt/app -> ino {} type {:?} uid(view) {}",
        app.ino, app.attr.file_type, app.attr.uid.0
    );

    // 4. readdir through an opendir cursor.
    let dh = session.opendir(&cred, app.ino).unwrap();
    let entries = session.readdir(&cred, dh.fh, 0, 100).unwrap();
    println!("$ ls /opt/app");
    for e in &entries {
        println!("  {:<10} ino {:<4} {:?}", e.name, e.ino, e.file_type);
    }
    session.releasedir(dh.fh).unwrap();
    assert!(entries.iter().any(|e| e.name == "data"));
    assert!(entries.iter().any(|e| e.name == "run"));
    assert!(entries.iter().any(|e| e.name == "marker"));

    // 5. open + read — and prove the reply is zero-copy: the reply's bytes
    //    handle shares its buffer with the container's rootfs.
    let data = session.lookup(&cred, app.ino, "data").unwrap();
    let opened = session.open(&cred, data.ino, OpenFlags::RDONLY).unwrap();
    let reply = session.read(&cred, opened.fh, 0, 4096).unwrap();
    println!(
        "$ cat /opt/app/data -> {:?}",
        String::from_utf8_lossy(reply.as_slice())
    );
    let direct = container
        .rootfs
        .file_bytes(&container.actor(), "/opt/app/data")
        .unwrap();
    assert!(
        reply.bytes().shares_buffer_with(&direct),
        "read must share the image's bytes, not copy them"
    );
    println!("   (FileBytes shared with the image: zero-copy read)");
    session.release(opened.fh).unwrap();
    assert_eq!(session.open_handles(), 0);

    // 6. The same traffic as a queued request stream — what a network
    //    backend or real FUSE channel would deliver.
    let replies = session.handle_all([
        Request::new(
            cred.clone(),
            Operation::Lookup {
                parent: app.ino,
                name: "marker".into(),
            },
        ),
        Request::new(cred.clone(), Operation::Statfs),
        Request::new(
            cred.clone(),
            Operation::Lookup {
                parent: app.ino,
                name: "missing".into(),
            },
        ),
    ]);
    println!("== queued dispatch: {} replies ==", replies.len());
    assert!(matches!(replies[0], Reply::Entry(_)));
    assert!(matches!(replies[1], Reply::Statfs(_)));
    assert_eq!(replies[2].err().map(|e| e.code()), Some(2)); // ENOENT
    println!("  lookup(marker) ok, statfs ok, lookup(missing) -> ENOENT");

    // 7. And a read-only mount refuses writes with EROFS. Read-only mounts
    //    are shared-image readers: every `mount_readonly()` serves the same
    //    frozen snapshot (see examples/concurrent_serve.rs for the
    //    many-threads version).
    let ro = container.mount_readonly();
    let err = ro
        .mkdir(ro.root_ino(), "nope", hpcc_repro::vfs::Mode::DIR_755)
        .unwrap_err();
    println!("== read-only mount: mkdir -> {} ==", err);

    // A different requester is subject to permission checks server-side.
    let nobody = FsCreds::new(
        hpcc_repro::kernel::Uid(65534),
        hpcc_repro::kernel::Gid(65534),
        vec![],
    );
    let via_nobody = session.resolve_path(&nobody, "/opt/app/data", true);
    println!(
        "== as nobody: resolve /opt/app/data -> {:?} ==",
        via_nobody.map(|e| e.ino)
    );
}
