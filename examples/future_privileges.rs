//! The paper's future-work proposals (§6.2), exercised end to end:
//!
//! 1. §6.2.2 item 1 — characterize which packages each `fakeroot(1)` flavour
//!    can install, per architecture (the coverage matrix);
//! 2. §6.2.2 item 3 — what moving the wrapper out of the image and into the
//!    container implementation buys;
//! 3. §6.2.4 — the proposed kernel ID-map mechanisms (policy maps without
//!    privileged helpers, mappable supplementary groups, a kernel-managed
//!    fake-ownership database);
//! 4. §6.2.5 — the ownership-flattening annotation enforced by a registry.
//!
//! Run with: `cargo run --example future_privileges`

use hpcc_repro::fakeroot::{representative_packages, CoverageMatrix, Flavor, WrapperPlacement};
use hpcc_repro::image::OwnershipMode;
use hpcc_repro::kernel::idpolicy::{
    policy_gid_map, policy_requirements, policy_uid_map, KernelOwnershipDb, MapPolicy,
    UniqueRangeAllocator,
};
use hpcc_repro::kernel::{Credentials, Gid, Owner, Uid};
use hpcc_repro::oci::FlattenPolicy;

fn main() {
    println!("== §6.2.2(1): fakeroot coverage characterization ==");
    for arch in ["x86_64", "aarch64"] {
        let matrix = CoverageMatrix::characterize(&representative_packages(), arch);
        println!("{}", matrix.render());
        for f in Flavor::ALL {
            println!(
                "  {:<12} success rate on {}: {:.0}%",
                f.info().name,
                arch,
                matrix.success_rate(f) * 100.0
            );
        }
        println!(
            "  uninstallable under every wrapper: {:?}\n",
            matrix.uninstallable_everywhere()
        );
    }

    println!("== §6.2.2(3): wrapper in the image vs in the container implementation ==");
    for placement in [WrapperPlacement::InImage, WrapperPlacement::InRuntime] {
        let cost = placement.cost();
        println!(
            "  {:?}: extra image packages {}, wrapper ships in image {}, init steps {}, lie DB available to push {}",
            placement,
            cost.extra_image_packages,
            cost.wrapper_in_pushed_image,
            cost.init_steps,
            cost.db_available_to_push
        );
    }

    println!("\n== §6.2.4: proposed kernel ID-map mechanisms ==");
    let alice = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000), Gid(2000)]);
    let mut alloc = UniqueRangeAllocator::new(200_000, 65_536);
    let uid_map = policy_uid_map(
        MapPolicy::RootPlusUniqueRange { count: 65_536 },
        &alice,
        &mut alloc,
    )
    .expect("policy map");
    println!("  root+unique-range UID map (no helpers, no /etc/subuid):");
    for line in uid_map.render_procfs().lines() {
        println!("    {}", line);
    }
    let gid_map = policy_gid_map(MapPolicy::SupplementaryIdentity, &alice, &mut alloc).unwrap();
    println!("  supplementary-identity GID map (chgrp to own groups works again):");
    for line in gid_map.render_procfs().lines() {
        println!("    {}", line);
    }
    let mut db = KernelOwnershipDb::new();
    db.claim(42, Owner::new(0, 999));
    println!(
        "  kernel ownership DB: inode 42 reported as {} while stored as the invoking user",
        db.effective(42, Owner::new(1000, 1000))
    );
    println!("  requirements comparison:");
    for row in policy_requirements() {
        println!(
            "    {:<24} helper={:<5} subid-files={:<5} kernel-change={:<5} multi-id={}",
            row.policy_name, row.helper_binary, row.subid_files, row.kernel_change, row.multi_id
        );
    }

    println!("\n== §6.2.5: ownership-flattening annotation ==");
    for policy in [
        FlattenPolicy::Disallow,
        FlattenPolicy::Allow,
        FlattenPolicy::Require,
    ] {
        let flattened = policy.check(OwnershipMode::Flattened).is_ok();
        let preserved = policy.check(OwnershipMode::Preserved).is_ok();
        println!(
            "  policy {:<8} -> flattened push {}, preserved push {}, satisfiable by a Type III builder: {}",
            policy.as_str(),
            if flattened { "accepted" } else { "rejected" },
            if preserved { "accepted" } else { "rejected" },
            policy.satisfiable_by_type3()
        );
    }
}
