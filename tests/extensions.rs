//! Cross-crate integration tests for the future-work extensions:
//! §6.2.2 (fakeroot coverage and placement), §6.2.4 (kernel ID-map policies),
//! §6.2.5 (flatten annotation), §6.3 (multi-site CI), plus the overlay
//! storage and multi-stage build machinery they rest on.

use hpcc_repro::cluster::{astra_plus_x86_sites, multisite_ci};
use hpcc_repro::core::{
    build_multistage, centos7_dockerfile, push_to_oci, BuildGraph, BuildIr, BuildOptions, Builder,
    LayerMode, StageBase,
};
use hpcc_repro::fakeroot::{representative_packages, CoverageMatrix, Flavor};
use hpcc_repro::image::OwnershipMode;
use hpcc_repro::kernel::idpolicy::{policy_uid_map, MapPolicy, UniqueRangeAllocator};
use hpcc_repro::kernel::nsproxy::{build_container_kinds, unshare, NsAllocator, NsProxy};
use hpcc_repro::kernel::{CapabilitySet, Credentials, Gid, Uid, UserNamespace, UsernsId};
use hpcc_repro::oci::{ApiError, DistributionRegistry, FlattenPolicy, Platform};
use hpcc_repro::runtime::Invoker;
use hpcc_repro::vfs::{Actor, Mode, OverlayBackend, OverlayFs};

/// The Type III foundation end to end: an unprivileged user cannot unshare a
/// mount namespace directly, but can after creating a user namespace — and a
/// §6.2.4 policy map would give that namespace Figure-1-shaped IDs with no
/// helper at all.
#[test]
fn type3_namespace_stack_with_policy_maps() {
    let alice = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
    let mut proxy = NsProxy::host();
    let mut alloc = NsAllocator::new();
    // Without a user namespace: EPERM.
    assert!(unshare(
        &mut proxy,
        &mut alloc,
        &build_container_kinds(),
        &CapabilitySet::empty(),
        UsernsId::INIT,
        (5, 14),
    )
    .is_err());
    // With one (full caps inside it): the build-container namespaces appear.
    let out = unshare(
        &mut proxy,
        &mut alloc,
        &build_container_kinds(),
        &CapabilitySet::full(),
        UsernsId(1),
        (5, 14),
    )
    .unwrap();
    assert_eq!(out.created.len(), 4);
    // The §6.2.4 policy map reproduces the Figure 1 shape without newuidmap.
    let mut ranges = UniqueRangeAllocator::new(200_000, 65_536);
    let map = policy_uid_map(
        MapPolicy::RootPlusUniqueRange { count: 65_536 },
        &alice,
        &mut ranges,
    )
    .unwrap();
    assert_eq!(map.to_host(0), Some(1000));
    assert_eq!(map.to_host(1), Some(200_000));
}

/// A forced Type III build pushes to the OCI registry in both layer modes,
/// and the multi-arch index serves the right manifest per platform.
#[test]
fn forced_build_pushes_both_layer_modes_to_oci() {
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice);
    let report = builder.build(
        centos7_dockerfile(),
        &BuildOptions::new("foo").with_force(),
        None,
    );
    assert!(report.success);

    let mut reg = DistributionRegistry::new("registry.example.gov", &["alice"]);
    let single = push_to_oci(
        &builder,
        "foo",
        &mut reg,
        "hpc/foo",
        "flat",
        LayerMode::SingleFlattened,
    )
    .unwrap();
    let layered = push_to_oci(
        &builder,
        "foo",
        &mut reg,
        "hpc/foo",
        "layered",
        LayerMode::BaseAndDiff,
    )
    .unwrap();
    assert_eq!(single.layer_count, 1);
    assert_eq!(layered.layer_count, 2);

    let pulled = reg
        .pull_for_platform("alice", "hpc/foo", "flat", &Platform::linux_amd64())
        .unwrap();
    assert_eq!(pulled.image.ownership, OwnershipMode::Flattened);
    // The build ran on x86-64 only, so an aarch64 pull is refused.
    assert_eq!(
        reg.pull_for_platform("alice", "hpc/foo", "flat", &Platform::linux_arm64())
            .unwrap_err(),
        ApiError::ManifestUnknown
    );
}

/// A repository with a `require`-flatten policy accepts the Charliecloud-style
/// push and rejects the preserved multi-layer push (§6.2.5).
#[test]
fn registry_flatten_policy_gates_pushes() {
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice);
    assert!(
        builder
            .build(
                centos7_dockerfile(),
                &BuildOptions::new("foo").with_force(),
                None
            )
            .success
    );
    let mut reg = DistributionRegistry::new("registry.example.gov", &["alice"]);
    reg.create_repository("secure/foo", &["alice"], FlattenPolicy::Require);
    push_to_oci(
        &builder,
        "foo",
        &mut reg,
        "secure/foo",
        "1",
        LayerMode::SingleFlattened,
    )
    .unwrap();
    assert_eq!(
        push_to_oci(
            &builder,
            "foo",
            &mut reg,
            "secure/foo",
            "1",
            LayerMode::BaseAndDiff
        )
        .unwrap_err(),
        ApiError::Unsupported
    );
}

/// The §6.3 multi-site pipeline produces a two-architecture index from fully
/// unprivileged builds, and both sites pull their own variant.
#[test]
fn multisite_ci_builds_every_architecture_unprivileged() {
    let sites = astra_plus_x86_sites("ci-runner", 6000);
    let mut reg = DistributionRegistry::new("registry.example.gov", &["ci-runner"]);
    let report = multisite_ci(&sites, centos7_dockerfile(), &mut reg, "atse/app", "1.0");
    assert!(report.success);
    assert_eq!(report.index_platforms.len(), 2);
    assert!(report.results.iter().all(|r| r.pull_ok));
    assert!(report.results.iter().all(|r| r.instructions_modified > 0));
}

/// Multi-stage Dockerfiles build under the fully unprivileged builder and the
/// final image carries the artifact compiled in the first stage.
#[test]
fn multistage_build_under_type3() {
    let text = "\
FROM centos:7 AS compile
RUN yum install -y gcc
RUN mkdir -p /opt/app/bin && echo compiled > /opt/app/bin/hpc-app

FROM centos:7
COPY --from=compile /opt/app/bin/hpc-app /usr/local/bin/hpc-app
RUN echo runtime stage done
";
    let ir = BuildIr::parse(text).unwrap();
    assert!(ir.is_multistage());
    let graph = BuildGraph::plan(&ir).unwrap();
    assert_eq!(graph.node(1).deps, vec![0]);
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice);
    let report = build_multistage(
        &mut builder,
        text,
        &BuildOptions::new("app").with_force(),
        None,
    );
    assert!(report.success);
    let built = builder.image("app").unwrap();
    let creds = Credentials::host_root();
    let ns = UserNamespace::initial();
    let actor = Actor::new(&creds, &ns);
    assert_eq!(
        built
            .fs
            .read_file(&actor, "/usr/local/bin/hpc-app")
            .unwrap(),
        b"compiled\n".to_vec()
    );
    // The intermediate compile stage is not tagged.
    assert!(builder.image("app.stage0").is_none());
    assert_eq!(builder.tags(), vec!["app".to_string()]);
}

/// A diamond-shaped four-stage Dockerfile plans into the expected DAG and
/// builds end to end: the two middle stages are independent (and execute
/// concurrently under the default options), and the final stage assembles
/// artifacts from both via `COPY --from`.
#[test]
fn diamond_stage_graph_builds_in_parallel() {
    let text = "\
FROM centos:7 AS base
RUN yum install -y gcc

FROM base AS left
RUN yum install -y openmpi
RUN mkdir -p /opt/out && echo left > /opt/out/left

FROM base AS right
RUN yum install -y spack
RUN mkdir -p /opt/out && echo right > /opt/out/right

FROM centos:7
COPY --from=left /opt/out/left /opt/final/left
COPY --from=2 /opt/out/right /opt/final/right
RUN echo assembled
";
    let ir = BuildIr::parse(text).unwrap();
    let graph = BuildGraph::plan(&ir).unwrap();
    assert_eq!(graph.levels(), &[vec![0], vec![1, 2], vec![3]]);
    assert_eq!(graph.node(1).base, StageBase::Stage(0));
    // --from=<alias> and --from=<index> resolve identically.
    assert_eq!(graph.node(3).deps, vec![1, 2]);

    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice);
    let report = build_multistage(&mut builder, text, &BuildOptions::new("diamond"), None);
    assert!(report.success, "{:?}", report.error);
    assert_eq!(report.stages.len(), 4);
    let built = builder.image("diamond").unwrap();
    let creds = Credentials::host_root();
    let ns = UserNamespace::initial();
    let actor = Actor::new(&creds, &ns);
    assert_eq!(
        built.fs.read_file(&actor, "/opt/final/left").unwrap(),
        b"left\n".to_vec()
    );
    assert_eq!(
        built.fs.read_file(&actor, "/opt/final/right").unwrap(),
        b"right\n".to_vec()
    );
    // The final image is the runtime stage, not a union: no compilers.
    assert!(!built.fs.exists(&actor, "/usr/bin/gcc"));
}

/// Overlay storage behaves like the paper's storage drivers: writes copy up,
/// deletes whiteout, and squashing produces the flat single-layer tree a
/// Charliecloud push would ship.
#[test]
fn overlay_squash_matches_merged_view() {
    let mut base = hpcc_repro::vfs::Filesystem::new_local();
    base.install_file(
        "/etc/os-release",
        b"CentOS 7".to_vec(),
        Uid::ROOT,
        Gid::ROOT,
        Mode::FILE_644,
    )
    .unwrap();
    base.install_file("/bin/true", b"#!", Uid::ROOT, Gid::ROOT, Mode::EXEC_755)
        .unwrap();
    let mut ov = OverlayFs::new(vec![base], OverlayBackend::Fuse);
    let creds = Credentials::host_root();
    let ns = UserNamespace::initial();
    let actor = Actor::new(&creds, &ns);
    ov.write_file(&actor, "/etc/motd", b"hello".to_vec())
        .unwrap();
    ov.unlink(&actor, "/bin/true").unwrap();
    let (diff, whiteouts) = ov.commit_layer();
    assert!(diff.exists(&actor, "/etc/motd"));
    assert_eq!(whiteouts, vec!["/bin/true".to_string()]);
    let flat = ov.squash();
    assert!(flat.exists(&actor, "/etc/motd"));
    assert!(flat.exists(&actor, "/etc/os-release"));
}

/// The coverage matrix reproduces the paper's §5.1 observation that pseudo
/// installs packages Debian's fakeroot cannot, and that everything installable
/// anywhere is installable on x86-64.
#[test]
fn coverage_matrix_matches_paper_observations() {
    let matrix = CoverageMatrix::characterize(&representative_packages(), "x86_64");
    assert!(matrix.success_rate(Flavor::Pseudo) > matrix.success_rate(Flavor::Fakeroot));
    assert!(matrix.uninstallable_everywhere().is_empty());
}
