//! Pins the zero-allocation property of cache-hit path resolution (ISSUE 4).
//!
//! The seed split every resolved path into a `Vec<String>` — at least one
//! heap allocation per component per syscall. After the borrowed
//! `PathComponents` + generation-stamped resolve cache, a **cache-hit
//! lookup performs zero heap allocations**: the probe borrows the raw path
//! string, the parent-chain access re-checks borrow inodes in place, and no
//! component is ever copied.
//!
//! The whole test binary runs under a counting global allocator; the single
//! `#[test]` keeps the measurement single-threaded.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hpcc_repro::core::{centos7_dockerfile, BuildOptions, Builder};
use hpcc_repro::kernel::{Credentials, UserNamespace};
use hpcc_repro::runtime::Invoker;
use hpcc_repro::vfs::Actor;

/// Counts every allocation (and reallocation) made through the global
/// allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn cache_hit_resolves_on_cold_centos7_build_do_not_allocate() {
    // Cold CentOS 7 build (no instruction cache), as the acceptance
    // criterion specifies.
    let mut builder = Builder::ch_image(Invoker::user("alice", 1000, 1000));
    let report = builder.build(
        centos7_dockerfile(),
        &BuildOptions::new("c7").with_force(),
        None,
    );
    assert!(report.success, "{}", report.transcript_text());
    let fs = builder.image("c7").unwrap().fs.clone();

    let creds = Credentials::host_root();
    let ns = UserNamespace::initial();
    let actor = Actor::new(&creds, &ns);

    // Every path in the built image — files, directories, deep package
    // payloads — resolved once to warm the per-filesystem resolve cache.
    // (Paths through symlinks are uncacheable by design; resolve them too
    // and simply skip the zero-alloc assertion for them below.)
    let paths: Vec<String> = fs.walk().into_iter().map(|(p, _)| p).collect();
    assert!(paths.len() > 30, "expected a real image tree");
    let mut cacheable = Vec::new();
    for p in &paths {
        let Ok(first) = fs.resolve(&actor, p) else {
            continue;
        };
        // A second probe hitting the cache must agree with the walk.
        assert_eq!(fs.resolve(&actor, p).unwrap(), first);
        // Walk paths traverse real directories only, so the sole uncacheable
        // case is a final symlink (resolve/resolve_no_follow disagree on it).
        if fs.lstat(&actor, p).unwrap().file_type != hpcc_repro::vfs::FileType::Symlink {
            cacheable.push(p.clone());
        }
    }

    // Measured phase: repeated cache-hit lookups allocate nothing at all —
    // not per component, not per call.
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..8 {
        for p in &cacheable {
            std::hint::black_box(fs.resolve(&actor, p).unwrap());
        }
    }
    let allocations = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations,
        0,
        "{} heap allocations across {} cache-hit resolves",
        allocations,
        8 * cacheable.len()
    );
}
