//! End-to-end wire serving of a built image: a real CentOS 7 build from the
//! unprivileged pipeline, served over the in-memory transport by the
//! generic `Server`, must answer byte-for-byte what direct `Dispatch`
//! calls answer — for both the read-write `Session` and the shared
//! read-only `ReaderSession` — and must leak nothing when the client
//! vanishes mid-handle.

use std::thread;

use hpcc_repro::core::{build_multistage, BuildOptions, Builder};
use hpcc_repro::fuseproto::{
    wire, ChannelTransport, Client, Dispatch, FsCreds, OpenFlags, Operation, Reply, Request,
    Shutdown, FUSE_ROOT_ID,
};
use hpcc_repro::image::{Image, ImageConfig};
use hpcc_repro::runtime::{Container, Invoker};

const DOCKERFILE: &str = "\
FROM centos:7
RUN mkdir -p /opt/app && echo 'wire payload' > /opt/app/data
RUN yum install -y openssh
";

fn built_container() -> Container {
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice.clone());
    let report = build_multistage(
        &mut builder,
        DOCKERFILE,
        &BuildOptions::new("c7").with_force(),
        None,
    );
    assert!(report.success, "build failed: {:?}", report.error);
    let built = builder.image("c7").expect("tagged image");
    let creds = hpcc_repro::kernel::Credentials::host_root();
    let ns = hpcc_repro::kernel::UserNamespace::initial();
    let actor = hpcc_repro::vfs::Actor::new(&creds, &ns);
    let image = Image::from_fs_preserved(
        "c7:latest",
        &built.fs,
        &actor,
        ImageConfig {
            architecture: "x86_64".to_string(),
            ..Default::default()
        },
    )
    .expect("image");
    Container::launch_type3(&image, &alice).expect("launch")
}

/// The request script both servers are measured against: stat chains,
/// readdir, open/read/release — the traffic a mounted client generates.
/// Handle-carrying ops work because both the wire session and the direct
/// session start fresh and allocate identically.
fn script(cred: &FsCreds) -> Vec<Request> {
    let mk = |op| Request::new(cred.clone(), op);
    vec![
        mk(Operation::Getattr { ino: FUSE_ROOT_ID }),
        mk(Operation::Lookup {
            parent: FUSE_ROOT_ID,
            name: "opt".into(),
        }),
        mk(Operation::Statfs),
        mk(Operation::Opendir { ino: FUSE_ROOT_ID }),
        mk(Operation::Readdir {
            fh: 1,
            offset: 0,
            max: 64,
        }),
        mk(Operation::Releasedir { fh: 1 }),
        mk(Operation::Lookup {
            parent: FUSE_ROOT_ID,
            name: "missing".into(),
        }),
        mk(Operation::Listxattr { ino: FUSE_ROOT_ID }),
    ]
}

/// Resolves /opt/app/data by lookups through any dispatcher.
fn resolve_data<D: Dispatch>(d: &mut D, cred: &FsCreds) -> u64 {
    let mut ino = FUSE_ROOT_ID;
    for name in ["opt", "app", "data"] {
        ino = match d.handle(Request::new(
            cred.clone(),
            Operation::Lookup {
                parent: ino,
                name: name.into(),
            },
        )) {
            Reply::Entry(e) => e.ino,
            other => panic!("lookup {name}: {other:?}"),
        };
    }
    ino
}

/// Encodes a reply to its wire frame under a fixed unique — the
/// byte-for-byte comparison form (a direct `Data` reply windows shared image
/// bytes, the decoded one owns its copy; their frames must still be
/// identical).
fn frame(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::encode_reply(&mut buf, 0, reply);
    buf
}

/// Runs the script through a wire client against a served dispatcher and
/// through direct dispatch on an identical twin, comparing frames.
fn assert_wire_matches_direct<D>(server_disp: D, mut direct: D, cred: &FsCreds)
where
    D: Dispatch + Send + 'static,
{
    let (server_end, client_end) = ChannelTransport::pair();
    let mut server = hpcc_repro::fuseproto::Server::new(server_disp, server_end);
    let daemon = thread::spawn(move || {
        let summary = server.serve().expect("serve loop");
        (server, summary)
    });

    let mut client = Client::new(client_end);
    for req in script(cred) {
        let over_wire = client.call(&req).expect("wire call");
        let direct_reply = direct.handle(req.clone());
        assert_eq!(
            frame(&over_wire),
            frame(&direct_reply),
            "wire and direct disagree on {:?}",
            req.op
        );
    }

    // open → read → release against the resolved file: the read that must
    // be bit-identical to the direct session's zero-copy window. Resolve on
    // the direct twin — same image, same inode space.
    let data_ino = resolve_data(&mut direct, cred);
    let open = Request::new(
        cred.clone(),
        Operation::Open {
            ino: data_ino,
            flags: OpenFlags::RDONLY,
        },
    );
    let wire_fh = match client.call(&open).expect("wire call") {
        Reply::Opened(o) => o.fh,
        other => panic!("{other:?}"),
    };
    let direct_fh = match direct.handle(open) {
        Reply::Opened(o) => o.fh,
        other => panic!("{other:?}"),
    };
    assert_eq!(wire_fh, direct_fh, "fresh sessions allocate identically");
    let read = |fh| {
        Request::new(
            cred.clone(),
            Operation::Read {
                fh,
                offset: 0,
                size: 4096,
            },
        )
    };
    let over_wire = client.call(&read(wire_fh)).expect("wire call");
    let direct_reply = direct.handle(read(direct_fh));
    assert_eq!(frame(&over_wire), frame(&direct_reply), "read payload");
    match (&over_wire, &direct_reply) {
        (Reply::Data(w), Reply::Data(d)) => {
            assert_eq!(w.as_slice(), d.as_slice());
            assert_eq!(w.as_slice(), b"wire payload\n");
        }
        other => panic!("{other:?}"),
    }
    let rel = Request::new(cred.clone(), Operation::Release { fh: wire_fh });
    assert!(client.call(&rel).expect("wire call").is_ok());

    client.destroy().expect("destroy");
    let (server, summary) = daemon.join().expect("daemon");
    assert_eq!(summary.shutdown, Shutdown::Destroyed);
    assert_eq!(summary.protocol_errors, 0);
    assert_eq!(server.dispatcher().open_handles(), 0, "handle leak");
}

/// A built image answers identically over the wire and via direct dispatch,
/// through the read-write `Session` server.
#[test]
fn wire_serve_matches_direct_dispatch_read_write() {
    let c = built_container();
    let cred = c.fs_creds();
    // Two fresh mounts of the same rootfs: identical snapshots.
    assert_wire_matches_direct(c.mount(), c.mount(), &cred);
}

/// The same generic server, now over the shared read-only image: identical
/// answers, and mutations come back as `EROFS` frames.
#[test]
fn wire_serve_matches_direct_dispatch_read_only() {
    let c = built_container();
    let cred = c.fs_creds();
    assert_wire_matches_direct(c.mount_readonly(), c.mount_readonly(), &cred);

    // Mutations over the read-only wire: EROFS, encoded as a negated errno.
    let (server_end, client_end) = ChannelTransport::pair();
    let mut server = c.serve_readonly(server_end);
    let daemon = thread::spawn(move || server.serve().map(|s| s.shutdown));
    let mut client = Client::new(client_end);
    let err = client
        .call(&Request::new(
            cred,
            Operation::Mkdir {
                parent: FUSE_ROOT_ID,
                name: "nope".into(),
                mode: hpcc_repro::vfs::Mode::DIR_755,
            },
        ))
        .expect("wire call")
        .err()
        .expect("mkdir on read-only image");
    assert_eq!(err, hpcc_repro::fuseproto::Errno::EROFS);
    drop(client);
    assert_eq!(daemon.join().unwrap().unwrap(), Shutdown::Disconnected);
}

/// A client that vanishes while holding open file and directory handles
/// leaks nothing: the server reclaims them at disconnect, on both flavors.
#[test]
fn client_disconnect_mid_handle_leaks_nothing() {
    let c = built_container();
    let cred = c.fs_creds();

    // Read-write flavor.
    let (server_end, client_end) = ChannelTransport::pair();
    let mut server = c.serve(server_end);
    let daemon = thread::spawn(move || {
        let summary = server.serve().expect("serve loop");
        (server, summary)
    });
    let mut client = Client::new(client_end);
    let mut ino = FUSE_ROOT_ID;
    for name in ["opt", "app", "data"] {
        ino = match client
            .call(&Request::new(
                cred.clone(),
                Operation::Lookup {
                    parent: ino,
                    name: name.into(),
                },
            ))
            .expect("wire call")
        {
            Reply::Entry(e) => e.ino,
            other => panic!("{other:?}"),
        };
    }
    assert!(client
        .call(&Request::new(
            cred.clone(),
            Operation::Open {
                ino,
                flags: OpenFlags::RDONLY,
            },
        ))
        .expect("wire call")
        .is_ok());
    assert!(client
        .call(&Request::new(
            cred.clone(),
            Operation::Opendir { ino: FUSE_ROOT_ID },
        ))
        .expect("wire call")
        .is_ok());
    drop(client); // hang up holding one file and one dir handle
    let (server, summary) = daemon.join().expect("daemon");
    assert_eq!(summary.shutdown, Shutdown::Disconnected);
    assert_eq!(server.dispatcher().open_handles(), 0, "rw handle leak");

    // Read-only flavor, same abandonment.
    let (server_end, client_end) = ChannelTransport::pair();
    let mut server = c.serve_readonly(server_end);
    let daemon = thread::spawn(move || {
        let summary = server.serve().expect("serve loop");
        (server, summary)
    });
    let mut client = Client::new(client_end);
    assert!(client
        .call(&Request::new(
            cred.clone(),
            Operation::Opendir { ino: FUSE_ROOT_ID },
        ))
        .expect("wire call")
        .is_ok());
    drop(client);
    let (server, summary) = daemon.join().expect("daemon");
    assert_eq!(summary.shutdown, Shutdown::Disconnected);
    assert_eq!(server.dispatcher().open_handles(), 0, "ro handle leak");
}
