//! Integration tests for the security-model corner cases the paper discusses:
//! the setgroups(2) trap, CVE-2018-7169, subordinate-range misconfiguration,
//! shared-filesystem clashes, and namespace-availability gates.

use hpcc_repro::kernel::creds::sys_setgroups;
use hpcc_repro::kernel::{
    Capability, CapabilitySet, Credentials, Errno, Gid, IdMapEntry, Kernel, Sysctl, Uid,
};
use hpcc_repro::runtime::{newgidmap, newuidmap, HelperConfig, StorageDriver, SubIdDb};
use hpcc_repro::vfs::{Access, Actor, Filesystem, FsBackend, Mode};

#[test]
fn setgroups_trap_dropping_a_group_gains_access() {
    // Paper §2.1.4: /bin/reboot root:managers rwx---r-x. A manager who can
    // call setgroups(2) and drop `managers` flips from the group triplet
    // (---) to the other triplet (r-x).
    let mut fs = Filesystem::new_local();
    fs.install_file(
        "/bin/reboot",
        b"elf".to_vec(),
        Uid(0),
        Gid(500),
        Mode::new(0o705),
    )
    .unwrap();
    let host = hpcc_repro::kernel::UserNamespace::initial();
    let manager = Credentials::unprivileged_user(Uid(10), Gid(100), vec![Gid(100), Gid(500)]);
    let actor = Actor::new(&manager, &host);
    let reboot = fs.resolve(&actor, "/bin/reboot").unwrap();
    assert_eq!(
        actor
            .check_access(fs.inode(reboot).unwrap(), Access::EXECUTE)
            .unwrap_err(),
        Errno::EACCES
    );
    // Without privilege the manager cannot drop the group on the host...
    let mut creds = manager.clone();
    assert_eq!(
        sys_setgroups(&mut creds, &host, &[Gid(100)]).unwrap_err(),
        Errno::EPERM
    );
    // ...but a process that *can* (e.g. via a buggy privileged helper) gains
    // execute permission.
    let mut dropped = manager.clone();
    dropped.supplementary = vec![Gid(100)];
    let actor = Actor::new(&dropped, &host);
    assert!(actor
        .check_access(fs.inode(reboot).unwrap(), Access::EXECUTE)
        .is_ok());
}

#[test]
fn cve_2018_7169_vulnerable_newgidmap_leaves_setgroups_enabled() {
    let mut subgid = SubIdDb::new();
    subgid.add_range("manager", 200_000, 65_536);
    for vulnerable in [false, true] {
        let mut kernel = Kernel::boot_modern();
        let pid = kernel.spawn_user_process(Uid(10), Gid(100), vec![Gid(100), Gid(500)], "attack");
        let creds = kernel.process(pid).unwrap().creds.clone();
        let ns = kernel.unshare_userns(pid).unwrap();
        newgidmap(
            &mut kernel,
            ns,
            "manager",
            &creds,
            vec![IdMapEntry::new(0, 100, 1)],
            &subgid,
            &HelperConfig {
                installed: true,
                cve_2018_7169: vulnerable,
            },
        )
        .unwrap();
        // Inside the namespace the process has CAP_SETGID; whether
        // setgroups(2) works depends on the helper having denied it.
        let container_creds = kernel.process(pid).unwrap().creds.clone();
        let mut c = container_creds;
        c.caps = CapabilitySet::full();
        let ns_ref = kernel.userns(ns).unwrap();
        let result = sys_setgroups(&mut c, ns_ref, &[Gid(0)]);
        if vulnerable {
            assert!(result.is_ok(), "vulnerable helper allows dropping groups");
            assert_eq!(c.supplementary, vec![Gid(100)], "managers group dropped");
        } else {
            assert_eq!(result.unwrap_err(), Errno::EPERM);
        }
    }
}

#[test]
fn misconfigured_subuid_ranges_are_detected() {
    // Paper §2.1.2: if host UID 1001 mapped into Alice's container, Alice
    // would gain access to Bob's files. The helper refuses such maps and the
    // validator flags overlapping ranges.
    let mut subuid = SubIdDb::new();
    subuid.add_range("alice", 200_000, 65_536);
    let mut kernel = Kernel::boot_modern();
    let pid = kernel.spawn_user_process(Uid(1000), Gid(1000), vec![Gid(1000)], "podman");
    let creds = kernel.process(pid).unwrap().creds.clone();
    let ns = kernel.unshare_userns(pid).unwrap();
    // Attempt to map Bob's UID 1001 as container UID 65537.
    let err = newuidmap(
        &mut kernel,
        ns,
        "alice",
        &creds,
        vec![
            IdMapEntry::new(0, 1000, 1),
            IdMapEntry::new(65_537, 1001, 1),
        ],
        &subuid,
        &HelperConfig::default(),
    )
    .unwrap_err();
    assert_eq!(err, Errno::EPERM);

    let mut overlapping = SubIdDb::new();
    overlapping.add_range("alice", 200_000, 65_536);
    overlapping.add_range("bob", 230_000, 65_536);
    assert!(overlapping.validate(100_000).is_err());
}

#[test]
fn kernel_gates_user_namespace_creation() {
    // RHEL < 7.6: user.max_user_namespaces = 0 (paper §3.1).
    let mut kernel = Kernel::boot(Sysctl::rhel_pre_76());
    let pid = kernel.spawn_user_process(Uid(1000), Gid(1000), vec![], "ch-run");
    assert_eq!(kernel.unshare_userns(pid).unwrap_err(), Errno::ENOSPC);
    // Pre-3.8 kernels: no user namespaces at all, only Type I possible.
    let mut kernel = Kernel::boot(Sysctl::pre_userns());
    let pid = kernel.spawn_user_process(Uid(1000), Gid(1000), vec![], "docker");
    assert_eq!(kernel.unshare_userns(pid).unwrap_err(), Errno::EINVAL);
}

#[test]
fn rootless_podman_storage_on_shared_filesystems_fails() {
    use hpcc_repro::image::{Image, ImageConfig};
    use hpcc_repro::kernel::UserNamespace;
    use hpcc_repro::runtime::{prepare_rootfs, IdPersistence};

    let mut fs = Filesystem::new_local();
    fs.install_file("/bin/sh", b"elf".to_vec(), Uid(0), Gid(0), Mode::EXEC_755)
        .unwrap();
    let root = Credentials::host_root();
    let host = UserNamespace::initial();
    let actor = Actor::new(&root, &host);
    let image = Image::from_fs_preserved("base", &fs, &actor, ImageConfig::default()).unwrap();

    // xattr-based ID mapping fails on default NFS and Lustre (§6.1), works on
    // local disk and tmpfs (§4.2).
    for (backend, ok) in [
        (FsBackend::default_nfs(), false),
        (FsBackend::default_lustre(), false),
        (FsBackend::Tmpfs, true),
        (FsBackend::LocalDisk, true),
    ] {
        let r = prepare_rootfs(
            &image,
            StorageDriver::FuseOverlayFs,
            backend,
            &Sysctl::modern(),
            1000,
            IdPersistence::UserXattrs,
        );
        assert_eq!(r.is_ok(), ok, "{:?}", backend);
    }
    // NFSv4.2 with RFC 8276 xattrs (Linux ≥ 5.9) lifts the xattr limitation
    // (§6.2.1), though subordinate-UID creation still needs local storage.
    let nfs_42 = FsBackend::Nfs {
        version: 4,
        xattr_support: true,
    };
    assert!(prepare_rootfs(
        &image,
        StorageDriver::FuseOverlayFs,
        nfs_42,
        &Sysctl::modern(),
        1000,
        IdPersistence::UserXattrs,
    )
    .is_ok());
    assert!(prepare_rootfs(
        &image,
        StorageDriver::Vfs,
        nfs_42,
        &Sysctl::modern(),
        1000,
        IdPersistence::SubordinateIds,
    )
    .is_err());
}

#[test]
fn containerized_root_has_no_host_privilege() {
    // The core claim of Type III: full capabilities inside the namespace
    // grant nothing over host-owned resources.
    let alice = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
    let ns = hpcc_repro::kernel::UserNamespace::type3(Uid(1000), Gid(1000));
    let container_root = alice.entered_own_namespace();
    assert!(container_root.caps.has(Capability::CapChown));
    assert!(container_root.appears_root_in(&ns));

    let mut host_fs = Filesystem::new_local();
    host_fs
        .install_file(
            "/etc/shadow",
            b"root:!::".to_vec(),
            Uid(0),
            Gid(0),
            Mode::new(0o000),
        )
        .unwrap();
    let actor = Actor::new(&container_root, &ns);
    assert_eq!(
        host_fs.read_file(&actor, "/etc/shadow").unwrap_err(),
        Errno::EACCES
    );
    assert_eq!(
        host_fs
            .chown(&actor, "/etc/shadow", Some(Uid(0)), None)
            .unwrap_err(),
        Errno::EPERM
    );
}
