//! Integration tests spanning crates: every figure and table of the paper is
//! reproduced end-to-end through the public API of the umbrella crate.

use hpcc_repro::core::{
    centos7_dockerfile, centos7_fr_dockerfile, debian10_dockerfile, debian10_fr_dockerfile,
    default_subuid_for, BuildOptions, Builder, PushOwnership,
};
use hpcc_repro::fakeroot::{FakerootSession, Flavor};
use hpcc_repro::image::Registry;
use hpcc_repro::kernel::{Credentials, Gid, IdMap, Uid, UserNamespace};
use hpcc_repro::runtime::Invoker;
use hpcc_repro::vfs::{Actor, FileType, Filesystem, Mode};

fn alice() -> Invoker {
    Invoker::user("alice", 1000, 1000)
}

#[test]
fn figure1_and_figure4_privileged_uid_map() {
    // /etc/subuid grants alice 65536 subordinate UIDs starting at 200000; the
    // resulting kernel map sends container root to alice and 1..65536 to the
    // subordinate range.
    let map = IdMap::privileged_build(1000, 200_000, 65_536);
    assert_eq!(map.to_host(0), Some(1000));
    assert_eq!(map.to_host(1), Some(200_000));
    assert_eq!(map.to_host(65_536), Some(265_535));
    assert_eq!(map.to_host(65_537), None);
    let rendered = map.render_procfs();
    assert!(rendered.lines().count() == 2);
    assert_eq!(IdMap::parse_procfs(&rendered).unwrap(), map);
}

#[test]
fn figure2_centos_build_fails_unprivileged_then_figure10_force_succeeds() {
    let mut builder = Builder::ch_image(alice());
    let plain = builder.build(centos7_dockerfile(), &BuildOptions::new("foo"), None);
    assert!(!plain.success);
    assert!(plain.transcript_text().contains("cpio: chown"));
    assert!(plain
        .transcript_text()
        .contains("error: build failed: RUN command exited with 1"));

    let mut builder = Builder::ch_image(alice());
    let forced = builder.build(
        centos7_dockerfile(),
        &BuildOptions::new("foo").with_force(),
        None,
    );
    assert!(forced.success, "{}", forced.transcript_text());
    assert_eq!(forced.force_config.as_deref(), Some("rhel7"));
    assert_eq!(forced.instructions_modified, 1);
    assert!(forced
        .transcript_text()
        .contains("--force: init OK & modified 1 RUN instructions"));
    // The built image really contains the openssh payload.
    let img = builder.image("foo").unwrap();
    let creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
    let ns = UserNamespace::initial();
    let actor = Actor::new(&creds, &ns);
    assert!(img.fs.exists(&actor, "/usr/libexec/openssh/ssh-keysign"));
    assert!(
        img.fs.exists(&actor, "/usr/bin/fakeroot"),
        "fakeroot installed into image (§6.1)"
    );
}

#[test]
fn figure3_debian_build_fails_unprivileged_then_figure11_force_succeeds() {
    let mut builder = Builder::ch_image(alice());
    let plain = builder.build(
        debian10_dockerfile(),
        &BuildOptions::new("foo").with_arch("amd64"),
        None,
    );
    assert!(!plain.success);
    let t = plain.transcript_text();
    assert!(t.contains("E: setgroups 65534 failed - setgroups (1: Operation not permitted)"));
    assert!(t.contains("E: setegid 65534 failed - setegid (22: Invalid argument)"));
    assert!(t.contains("E: seteuid 100 failed - seteuid (22: Invalid argument)"));
    assert!(t.contains("error: build failed: RUN command exited with 100"));

    let mut builder = Builder::ch_image(alice());
    let forced = builder.build(
        debian10_dockerfile(),
        &BuildOptions::new("foo").with_force().with_arch("amd64"),
        None,
    );
    assert!(forced.success, "{}", forced.transcript_text());
    assert_eq!(forced.force_config.as_deref(), Some("debderiv"));
    assert_eq!(forced.instructions_modified, 2);
}

#[test]
fn figure5_unprivileged_podman_single_map_and_nobody_proc() {
    use hpcc_repro::image::{Image, ImageConfig};
    use hpcc_repro::kernel::Sysctl;
    use hpcc_repro::runtime::{Container, StorageDriver};
    use hpcc_repro::vfs::FsBackend;

    let map = IdMap::single(0, 1234);
    assert_eq!(map.mapped_count(), 1);

    // Unprivileged Podman: /proc and /sys appear owned by nobody (§4.1.1).
    let mut fs = Filesystem::new_local();
    fs.install_file("/bin/sh", b"elf".to_vec(), Uid(0), Gid(0), Mode::EXEC_755)
        .unwrap();
    let root = Credentials::host_root();
    let host = UserNamespace::initial();
    let actor = Actor::new(&root, &host);
    let image = Image::from_fs_preserved("base", &fs, &actor, ImageConfig::default()).unwrap();
    let c = Container::launch_podman_unprivileged(
        &image,
        &alice(),
        StorageDriver::Vfs,
        FsBackend::Tmpfs,
        &Sysctl::modern(),
    )
    .unwrap();
    assert_eq!(c.proc_owner_view(), Uid::NOBODY);
}

#[test]
fn figure6_astra_workflow_and_lanl_pipeline() {
    use hpcc_repro::cluster::{astra_workflow, lanl_ci_pipeline, Cluster};
    let cluster = Cluster::astra(4);
    let mut registry = Registry::new("registry.sandia.example");
    let report = astra_workflow(&cluster, &mut registry, "ajyoung", 5432, 4);
    assert!(report.success, "{}", report.transcript_text());
    assert_eq!(report.launches.len(), 4);

    let cluster = Cluster::generic_x86(3);
    let mut registry = Registry::new("gitlab.lanl.example");
    let report = lanl_ci_pipeline(&cluster, &mut registry, "builder", 2000);
    assert!(report.success, "{}", report.transcript_text());
}

#[test]
fn figure7_fakeroot_lies_are_visible_inside_only() {
    let mut fs = Filesystem::new_local();
    fs.install_dir("/work", Uid(1000), Gid(1000), Mode::new(0o755))
        .unwrap();
    let creds = Credentials::unprivileged_user(Uid(1000), Gid(1000), vec![Gid(1000)]);
    let ns = UserNamespace::initial();
    let actor = Actor::new(&creds, &ns);
    let mut s = FakerootSession::new(Flavor::Fakeroot);
    fs.write_file(&actor, "/work/test.file", Vec::new(), Mode::new(0o640))
        .unwrap();
    s.chown(&mut fs, &actor, "/work/test.file", Some(Uid(65534)), None)
        .unwrap();
    s.mknod(
        &mut fs,
        &actor,
        "/work/test.dev",
        FileType::CharDevice,
        1,
        1,
        Mode::new(0o640),
    )
    .unwrap();
    // Inside: device + nobody-owned file.
    assert_eq!(
        s.stat(&fs, &actor, "/work/test.dev").unwrap().file_type,
        FileType::CharDevice
    );
    assert_eq!(
        s.stat(&fs, &actor, "/work/test.file").unwrap().uid_view,
        Uid(65534)
    );
    // Outside: both are plain files owned by alice.
    assert_eq!(
        fs.stat(&actor, "/work/test.dev").unwrap().file_type,
        FileType::Regular
    );
    assert_eq!(
        fs.stat(&actor, "/work/test.file").unwrap().uid_host,
        Uid(1000)
    );
}

#[test]
fn figures8_and_9_manually_modified_dockerfiles_build() {
    let mut builder = Builder::ch_image(alice());
    assert!(
        builder
            .build(centos7_fr_dockerfile(), &BuildOptions::new("foo"), None)
            .success
    );
    let mut builder = Builder::ch_image(alice());
    let r = builder.build(
        debian10_fr_dockerfile(),
        &BuildOptions::new("foo").with_arch("amd64"),
        None,
    );
    assert!(r.success, "{}", r.transcript_text());
    assert!(r.transcript_text().contains("grown in 6 instructions: foo"));
}

#[test]
fn table1_flavor_properties_and_coverage() {
    // Static properties.
    assert_eq!(Flavor::Fakeroot.info().initial_release, "1997-Jun");
    assert!(Flavor::FakerootNg.supports_static_binaries());
    assert!(!Flavor::Pseudo.supports_static_binaries());
    // Coverage: pseudo strictly covers fakeroot.
    for op in Flavor::Fakeroot.info().coverage {
        assert!(Flavor::Pseudo.intercepts(*op));
    }
}

#[test]
fn type2_rootless_podman_builds_unmodified_dockerfiles() {
    let mut podman = Builder::rootless_podman(alice(), default_subuid_for("alice"));
    let c = podman.build(centos7_dockerfile(), &BuildOptions::new("c7"), None);
    assert!(c.success, "{}", c.transcript_text());
    let d = podman.build(
        debian10_dockerfile(),
        &BuildOptions::new("d10").with_arch("amd64"),
        None,
    );
    assert!(d.success, "{}", d.transcript_text());
    // Image retains multi-UID ownership (the Type II advantage, §6.1).
    assert!(podman.image("c7").unwrap().fs.distinct_owner_uids().len() > 1);
}

#[test]
fn push_policies_affect_recorded_ownership() {
    let mut registry = Registry::new("r");
    let mut builder = Builder::ch_image(alice());
    assert!(
        builder
            .build(
                centos7_dockerfile(),
                &BuildOptions::new("c7").with_force(),
                None
            )
            .success
    );
    builder
        .push("c7", "a/flat:1", &mut registry, PushOwnership::Flatten)
        .unwrap();
    builder
        .push("c7", "a/db:1", &mut registry, PushOwnership::FromFakerootDb)
        .unwrap();
    let flat = registry.pull("a/flat:1").unwrap();
    assert_eq!(flat.distinct_recorded_uids(), 1);
    let db = registry.pull("a/db:1").unwrap();
    let entries = hpcc_repro::vfs::tar::list(&db.layers[0].tar).unwrap();
    let keysign = entries
        .iter()
        .find(|e| e.path == "usr/libexec/openssh/ssh-keysign")
        .unwrap();
    assert_eq!(
        keysign.gid, 999,
        "fakeroot-db push keeps the intended group"
    );
}
