//! Chaos suite for fault-tolerant wire serving: a built CentOS 7 image is
//! served through >1000 randomized, seed-replayable fault schedules, and
//! four invariants must hold on every one of them:
//!
//! 1. **No hangs** — every client call terminates, with the true reply or a
//!    typed timeout/disconnect error, inside its policy deadline.
//! 2. **Equivalence** — once retries succeed, reply frames are byte-identical
//!    to a fault-free run of the same script.
//! 3. **Exactly-once** — retransmitted mutations are never re-executed: the
//!    server's dispatch count stays at one per scripted operation, and its
//!    reply-cache hit counter proves the replays happened.
//! 4. **No leaks** — zero open handles after every exit path, including hard
//!    mid-handle disconnects.
//!
//! Every schedule derives from one `u64` seed; a failure prints the seed,
//! and `CHAOS_EXTRA_SEED=<n>` replays (or explores) a single extra schedule
//! — CI sets it from `$RANDOM` so every run probes one fresh point of the
//! space while staying reproducible from its log.

use std::time::Duration;

use hpcc_repro::core::{build_multistage, BuildOptions, Builder};
use hpcc_repro::fuseproto::{
    wire, CallError, ChannelTransport, Client, Fault, FaultPlan, FaultTransport, FsCreds,
    OpenFlags, Operation, Reply, Request, RetryPolicy, ServeConfig, Shutdown, FUSE_ROOT_ID,
};
use hpcc_repro::image::{Image, ImageConfig};
use hpcc_repro::runtime::{Container, Invoker};
use hpcc_repro::vfs::Mode;

const DOCKERFILE: &str = "\
FROM centos:7
RUN mkdir -p /opt/app && echo 'chaos payload' > /opt/app/data
RUN yum install -y openssh
";

/// Fixed seeds every run covers; the env seed explores beyond them.
const FIXED_SCHEDULES: u64 = 1000;

fn built_container() -> Container {
    let alice = Invoker::user("alice", 1000, 1000);
    let mut builder = Builder::ch_image(alice.clone());
    let report = build_multistage(
        &mut builder,
        DOCKERFILE,
        &BuildOptions::new("c7").with_force(),
        None,
    );
    assert!(report.success, "build failed: {:?}", report.error);
    let built = builder.image("c7").expect("tagged image");
    let creds = hpcc_repro::kernel::Credentials::host_root();
    let ns = hpcc_repro::kernel::UserNamespace::initial();
    let actor = hpcc_repro::vfs::Actor::new(&creds, &ns);
    let image = Image::from_fs_preserved(
        "c7:latest",
        &built.fs,
        &actor,
        ImageConfig {
            architecture: "x86_64".to_string(),
            ..Default::default()
        },
    )
    .expect("image");
    Container::launch_type3(&image, &alice).expect("launch")
}

/// The scripted session every schedule replays: reads interleaved with
/// mutations (mkdir, create, write) and handle traffic, so re-execution of a
/// retransmitted mutation is *detectable* — a second mkdir answers EEXIST, a
/// second create allocates a divergent handle — and a disconnect can land
/// while handles are open.
fn script(cred: &FsCreds) -> Vec<Request> {
    let mk = |op| Request::new(cred.clone(), op);
    vec![
        mk(Operation::Getattr { ino: FUSE_ROOT_ID }),
        mk(Operation::Mkdir {
            parent: FUSE_ROOT_ID,
            name: "chaos".into(),
            mode: Mode::DIR_755,
        }),
        mk(Operation::Lookup {
            parent: FUSE_ROOT_ID,
            name: "chaos".into(),
        }),
        mk(Operation::Create {
            parent: FUSE_ROOT_ID,
            name: "chaos.log".into(),
            mode: Mode::FILE_644,
            flags: OpenFlags::RDWR,
        }),
        mk(Operation::Write {
            fh: 1,
            offset: 0,
            data: b"at-least-once delivery, exactly-once execution".to_vec(),
        }),
        mk(Operation::Read {
            fh: 1,
            offset: 0,
            size: 64,
        }),
        mk(Operation::Opendir { ino: FUSE_ROOT_ID }),
        mk(Operation::Readdir {
            fh: 2,
            offset: 0,
            max: 64,
        }),
        mk(Operation::Releasedir { fh: 2 }),
        mk(Operation::Release { fh: 1 }),
        mk(Operation::Lookup {
            parent: FUSE_ROOT_ID,
            name: "missing".into(),
        }),
        mk(Operation::Statfs),
    ]
}

/// Re-encodes a reply under a fixed unique: the byte-comparison form.
fn frame(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::encode_reply(&mut buf, 0, reply);
    buf
}

/// The retry policy chaos clients run under: tight attempt waits (the suite
/// injects at most 4 faults + 1 disconnect per schedule, so 8 attempts
/// always reach a clean exchange), generous overall deadline.
fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_millis(2),
        deadline: Duration::from_secs(2),
        max_attempts: 8,
        backoff_base: Duration::from_micros(50),
        backoff_cap: Duration::from_micros(500),
        resend_mutations: true,
        jitter_seed: 0x5EED,
    }
}

/// The fault-free reference: reply frames the scripted session must produce
/// on any schedule once retries succeed.
fn reference_frames(c: &Container, cred: &FsCreds) -> Vec<Vec<u8>> {
    let (server_end, client_end) = ChannelTransport::pair();
    let mut server = c.serve(server_end);
    let daemon = std::thread::spawn(move || server.serve().map(|s| s.shutdown));
    let mut client = Client::new(client_end);
    let frames: Vec<Vec<u8>> = script(cred)
        .iter()
        .map(|req| frame(&client.call(req).expect("reference call")))
        .collect();
    client.destroy().expect("reference destroy");
    assert_eq!(daemon.join().unwrap().unwrap(), Shutdown::Destroyed);
    frames
}

/// Aggregates proving each fault class actually fired across the run.
#[derive(Default)]
struct Totals {
    faults: u64,
    replayed: u64,
    protocol_errors: u64,
    disconnect_schedules: u64,
    shed: u64,
}

/// Runs one seeded schedule and folds its evidence into `totals`.
fn run_schedule(c: &Container, reference: &[Vec<u8>], seed: u64, totals: &mut Totals) {
    // Schedule shape from the seed: 1–4 faults over the first 40 frame
    // indices, every 5th seed also severing the connection somewhere.
    let faults = 1 + (seed % 4) as usize;
    let disconnecting = seed.is_multiple_of(5);
    let plan = FaultPlan::random(seed, faults, 40, disconnecting);

    let cred = c.fs_creds();
    let (server_end, client_end) = ChannelTransport::pair();
    let mut server = c.serve_with(
        server_end,
        ServeConfig {
            reply_cache: 32,
            max_backlog: Some(8),
        },
    );
    let daemon = std::thread::spawn(move || {
        let summary = server.serve();
        (server, summary)
    });

    let policy = chaos_policy();
    let mut client = Client::new(FaultTransport::new(client_end, plan));
    let mut completed = 0usize;
    let mut severed = false;
    for (i, req) in script(&cred).iter().enumerate() {
        match client.call_with(req, &policy) {
            Ok(reply) => {
                assert_eq!(
                    frame(&reply),
                    reference[i],
                    "seed {seed}: call {i} ({:?}) diverged from the fault-free run",
                    req.op
                );
                completed += 1;
            }
            Err(e) => {
                // Invariant 1: a failure is always typed, and only a
                // schedule that severs the connection may produce one.
                assert!(
                    disconnecting,
                    "seed {seed}: call {i} failed ({e}) on a schedule with no disconnect"
                );
                assert!(
                    matches!(e, CallError::Disconnected | CallError::TimedOut { .. }),
                    "seed {seed}: call {i}: untyped failure {e}"
                );
                severed = true;
                break;
            }
        }
    }
    if !severed {
        // Destroy rides the same faulty tail; both outcomes are legal, but
        // never a hang.
        let _ = client.destroy_with(&policy);
    }
    totals.faults += client.transport().counters().total();
    if severed {
        totals.disconnect_schedules += 1;
    }

    drop(client);
    let (server, summary) = daemon.join().expect("server thread");
    let summary = summary.unwrap_or_else(|e| panic!("seed {seed}: serve loop error: {e}"));

    // Invariant 3: exactly-once execution. Every completed call dispatched
    // exactly one request — retransmissions were replayed, not re-executed —
    // and an interrupted script never dispatched more than it completed
    // (the tail call may have executed with its reply lost to the sever).
    if !severed {
        assert_eq!(
            summary.requests,
            script(&cred).len() as u64,
            "seed {seed}: dispatch count proves a duplicated or lost execution"
        );
    } else {
        assert!(
            summary.requests <= completed as u64 + 1,
            "seed {seed}: {} dispatches for {completed} completed calls",
            summary.requests
        );
    }

    // Invariant 4: no leaks on any exit path, destroy and sever alike.
    assert_eq!(
        server.dispatcher().open_handles(),
        0,
        "seed {seed}: handle leak (shutdown: {:?})",
        summary.shutdown
    );

    totals.replayed += summary.replayed;
    totals.protocol_errors += summary.protocol_errors;
    totals.shed += summary.shed;
}

#[test]
fn chaos_thousand_randomized_schedules_hold_the_invariants() {
    let c = built_container();
    let cred = c.fs_creds();
    let reference = reference_frames(&c, &cred);

    let mut totals = Totals::default();
    for seed in 1..=FIXED_SCHEDULES {
        run_schedule(&c, &reference, seed, &mut totals);
    }
    // One env-randomized probe per run: CI passes a fresh seed and the
    // failure message (above) carries it for replay.
    if let Ok(extra) = std::env::var("CHAOS_EXTRA_SEED") {
        let seed: u64 = extra.parse().expect("CHAOS_EXTRA_SEED must be a u64");
        eprintln!("chaos: extra schedule seed {seed}");
        run_schedule(&c, &reference, seed, &mut totals);
    }

    eprintln!(
        "chaos: {} schedules, {} faults injected, {} replays, {} protocol errors, {} sheds, {} severed",
        FIXED_SCHEDULES, totals.faults, totals.replayed, totals.protocol_errors, totals.shed,
        totals.disconnect_schedules,
    );
    // The run must actually have exercised what it claims to test.
    assert!(totals.faults > 500, "schedules barely injected anything");
    assert!(
        totals.replayed > 0,
        "no retransmission ever hit the reply cache — resends were re-executed or never happened"
    );
    assert!(
        totals.protocol_errors > 0,
        "no corrupt frame ever reached the server's EINVAL path"
    );
    assert!(
        totals.disconnect_schedules > 0,
        "no schedule ever severed the connection mid-script"
    );
}

/// Overload shedding under a duplicate storm: every request arrives twice at
/// a server that sheds whenever anything is queued behind the frame in
/// service. Typed EAGAIN answers drive the client's retry loop, and the
/// invariants still hold: byte-identical replies, exactly-once execution.
#[test]
fn chaos_shedding_under_duplicate_storm_stays_exactly_once() {
    let c = built_container();
    let cred = c.fs_creds();
    let reference = reference_frames(&c, &cred);

    let mut plan = FaultPlan::new();
    for i in 0..40 {
        plan = plan.on_send(i, Fault::Duplicate);
    }
    let (server_end, client_end) = ChannelTransport::pair();
    let mut server = c.serve_with(
        server_end,
        ServeConfig {
            reply_cache: 32,
            max_backlog: Some(0),
        },
    );
    let daemon = std::thread::spawn(move || {
        let summary = server.serve();
        (server, summary)
    });

    let policy = chaos_policy();
    let mut client = Client::new(FaultTransport::new(client_end, plan));
    for (i, req) in script(&cred).iter().enumerate() {
        let reply = client
            .call_with(req, &policy)
            .unwrap_or_else(|e| panic!("call {i} under duplicate storm: {e}"));
        assert_eq!(frame(&reply), reference[i], "call {i} diverged");
    }
    let _ = client.destroy_with(&policy);
    drop(client);

    let (server, summary) = daemon.join().expect("server thread");
    let summary = summary.expect("serve loop");
    assert_eq!(
        summary.requests,
        script(&cred).len() as u64,
        "duplicate storm caused a re-execution"
    );
    assert!(
        summary.shed > 0,
        "the backlog cap never tripped — the storm was not a storm"
    );
    assert!(
        summary.replayed > 0,
        "no duplicate was answered from the reply cache"
    );
    assert_eq!(server.dispatcher().open_handles(), 0, "handle leak");
}
