//! Snapshot-store scaling: with the build cache enabled, a cold build stores
//! a copy-on-write snapshot after every instruction, and the next
//! instruction's first mutation pays a detach against that snapshot.
//!
//! With the seed's flat `Arc<HashMap>` inode table, each such detach copied
//! the *entire* table — O(instructions × inodes) total work for many-tiny-RUN
//! Dockerfiles. The persistent structural-sharing `InodeTable` path-copies
//! only O(depth) trie nodes per mutated inode, making total snapshot-store
//! work linear in the instruction count. The instrumented detach counter
//! (`hpcc_vfs::cow_detach_nodes`) lets this test pin the asymptotics.

use hpcc_bench::many_tiny_run_dockerfile;
use hpcc_core::{BuildOptions, Builder};
use hpcc_runtime::Invoker;

/// Cold cached build of an n-instruction Dockerfile, returning the number of
/// trie-node copies forced by snapshot detaches plus the final inode count.
fn detach_work(instructions: usize) -> (u64, usize) {
    let mut builder = Builder::ch_image(Invoker::user("alice", 1000, 1000));
    let dockerfile = many_tiny_run_dockerfile(instructions);
    let before = hpcc_vfs::cow_detach_nodes();
    let report = builder.build(&dockerfile, &BuildOptions::new("tiny").with_cache(), None);
    assert!(report.success, "{}", report.transcript_text());
    assert_eq!(report.instructions_total, instructions);
    let work = hpcc_vfs::cow_detach_nodes() - before;
    let inodes = builder.image("tiny").unwrap().fs.inode_count();
    (work, inodes)
}

#[test]
fn snapshot_store_work_scales_subquadratically() {
    // Warm up distro catalogs etc. so both measurements see the same world.
    let _ = detach_work(4);

    let (work_16, _) = detach_work(16);
    let (work_64, inodes_64) = detach_work(64);

    // Sub-quadratic in instruction count: 4x the instructions must cost far
    // less than 16x the detach work (the flat-table behaviour, where every
    // per-instruction detach copies a table that also grows per instruction).
    // Linear scaling gives a ratio of ~4; leave headroom for trie splits.
    assert!(
        work_16 > 0,
        "instrumentation should observe snapshot detaches"
    );
    let ratio = work_64 as f64 / work_16 as f64;
    assert!(
        ratio < 8.0,
        "detach work grew {}x from 16 to 64 instructions ({} -> {}): \
         snapshot stores are no longer sub-quadratic",
        ratio,
        work_16,
        work_64
    );

    // And the per-instruction cost is bounded by trie depth, not table size:
    // a whole-table detach per instruction would copy >= inode_count nodes
    // (the image tree alone is >100 inodes here).
    let per_instruction = work_64 as f64 / 64.0;
    assert!(
        per_instruction < inodes_64 as f64 / 2.0,
        "avg {} node copies per instruction vs {} inodes — detaches are \
         copying the whole table again",
        per_instruction,
        inodes_64
    );
}
